"""ABL-LINK — ablation of the D2D link model parameters.

Sweeps the bump pitch (C4 vs. micro-bumps), the power-bump fraction and the
link frequency to show how the per-link bandwidth and the HexaMesh-vs-grid
full-global-bandwidth ratio react — the design choices Section V treats as
inputs.
"""

from conftest import run_once

from repro.evaluation.tables import format_table
from repro.linkmodel.bandwidth import D2DLinkModel
from repro.linkmodel.parameters import EvaluationParameters, LinkParameters


def _sweep():
    rows = []
    for pitch in (0.15, 0.10, 0.045):
        for power_fraction in (0.3, 0.4, 0.5):
            for frequency_ghz in (8.0, 16.0, 32.0):
                link = LinkParameters(
                    bump_pitch_mm=pitch,
                    non_data_wires=12,
                    frequency_hz=frequency_ghz * 1e9,
                    name="ablation",
                )
                parameters = EvaluationParameters(
                    power_bump_fraction=power_fraction, link=link
                )
                model = D2DLinkModel(parameters)
                grid = model.estimate("grid", 64)
                hexamesh = model.estimate("hexamesh", 64)
                grid_fgb = 64 * 2 * grid.bandwidth_bps / 1e12
                hexamesh_fgb = 64 * 2 * hexamesh.bandwidth_bps / 1e12
                rows.append(
                    [
                        pitch,
                        power_fraction,
                        frequency_ghz,
                        grid.bandwidth_gbps,
                        hexamesh.bandwidth_gbps,
                        hexamesh_fgb / grid_fgb,
                    ]
                )
    return rows


def test_bench_ablation_linkmodel(benchmark):
    rows = run_once(benchmark, _sweep)

    # Finer pitch always increases per-link bandwidth; a larger power
    # fraction always decreases it; the HexaMesh-to-grid bandwidth ratio
    # stays at roughly 4/6 (the sector-count ratio) across the sweep.
    for row in rows:
        assert row[3] > 0 and row[4] > 0
        assert 0.45 < row[5] < 0.75
    baseline = next(r for r in rows if r[0] == 0.15 and r[1] == 0.4 and r[2] == 16.0)
    micro = next(r for r in rows if r[0] == 0.045 and r[1] == 0.4 and r[2] == 16.0)
    assert micro[3] > baseline[3]

    print()
    print("Link-model ablation at N=64 chiplets")
    print(
        format_table(
            [
                "pitch [mm]",
                "p_p",
                "f [GHz]",
                "grid B [Gb/s]",
                "HM B [Gb/s]",
                "HM/grid FGB ratio",
            ],
            rows,
        )
    )
