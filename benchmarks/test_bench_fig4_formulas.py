"""FIG4 — the arrangement annotations of Figure 4.

Regenerates, for every regular arrangement up to the configured chiplet
count, the minimum / maximum neighbour counts and checks the measured
diameters against the closed-form formulas annotated in the figure.
"""

from conftest import bench_max_chiplets, run_once

from repro.evaluation.proxies import figure4_annotations
from repro.evaluation.tables import render_series_summary


def test_bench_fig4_formulas(benchmark):
    max_n = bench_max_chiplets()

    result = run_once(benchmark, figure4_annotations, range(4, max_n + 1))

    # The generated arrangements must match the annotated formulas exactly.
    for kind in ("grid", "brickwall", "honeycomb", "hexamesh"):
        measured = result.get_series(f"{kind}:diameter")
        formula = result.get_series(f"{kind}:diameter_formula")
        assert measured.ys == formula.ys, f"{kind} diameters deviate from Figure 4"

    print()
    print(render_series_summary(result))
