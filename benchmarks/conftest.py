"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
rows / series it reports (use ``pytest benchmarks/ --benchmark-only -s`` to
see the output).  The sweep ranges follow the paper (chiplet counts up to
100); set ``HEXAMESH_BENCH_MAX_N`` to a smaller value for quicker runs or
``HEXAMESH_FULL_SIM=1`` to extend the cycle-accurate spot checks.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.evaluation.performance import run_figure7


def bench_max_chiplets(default: int = 100) -> int:
    """Upper end of the chiplet-count sweeps used by the benchmarks."""
    value = os.environ.get("HEXAMESH_BENCH_MAX_N", "")
    if value.strip():
        return max(2, int(value))
    return default


def full_simulation_requested() -> bool:
    """Whether the expensive cycle-accurate sweeps should run at full size."""
    return os.environ.get("HEXAMESH_FULL_SIM", "") == "1"


def run_once(benchmark, function, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def max_chiplets() -> int:
    """Fixture exposing the configured sweep limit."""
    return bench_max_chiplets()


@functools.lru_cache(maxsize=4)
def get_figure7_result(max_chiplet_count: int):
    """Compute (once per session) the analytical Figure 7 sweep.

    The four Figure 7 benchmark modules share this result so the expensive
    2..N sweep is paid for only once; whichever module runs first does the
    work inside its benchmark timer.
    """
    return run_figure7(range(2, max_chiplet_count + 1), mode="analytical")
