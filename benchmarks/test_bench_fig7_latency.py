"""FIG7a — zero-load latency of the grid, brickwall and HexaMesh.

Regenerates the latency panel of Figure 7: for every chiplet count from 2
to the configured maximum, the zero-load latency in cycles of the best
arrangement of each family under the paper's parameters (27-cycle links,
3-cycle routers, two endpoints per chiplet).
"""

from conftest import bench_max_chiplets, get_figure7_result, run_once

from repro.evaluation.tables import format_table


def test_bench_fig7_latency(benchmark):
    max_n = bench_max_chiplets()

    figure7 = run_once(benchmark, get_figure7_result, max_n)

    counts = figure7.chiplet_counts()
    # Who wins: for every count from 10 upwards the HexaMesh latency is below
    # the grid's, and the brickwall sits in between or close to the HexaMesh.
    for count in counts:
        if count < 10:
            continue
        grid = figure7.point("grid", count).zero_load_latency_cycles
        hexamesh = figure7.point("hexamesh", count).zero_load_latency_cycles
        assert hexamesh < grid

    sample_counts = [c for c in (2, 10, 25, 37, 50, 64, 75, 91, 100) if c in counts]
    rows = []
    for count in sample_counts:
        rows.append(
            [
                count,
                figure7.point("grid", count).zero_load_latency_cycles,
                figure7.point("brickwall", count).zero_load_latency_cycles,
                figure7.point("hexamesh", count).zero_load_latency_cycles,
            ]
        )

    print()
    print("Figure 7a: zero-load latency [cycles]")
    print(format_table(["N", "grid", "brickwall", "hexamesh"], rows))
