"""FIG6b — bisection bandwidth of every arrangement and regularity class.

Regular arrangements use the paper's closed-form values; semi-regular and
irregular arrangements are estimated with the partitioning portfolio (the
library's METIS substitute), exactly as the paper estimates them with
METIS.  Prints the series summaries and the HexaMesh-vs-grid factor at the
largest evaluated count (annotated as "x2.3" in the figure).
"""

from conftest import bench_max_chiplets, run_once

from repro.evaluation.proxies import run_figure6_bisection
from repro.evaluation.tables import render_series_summary


def test_bench_fig6_bisection(benchmark):
    max_n = bench_max_chiplets()

    result = run_once(benchmark, run_figure6_bisection, range(1, max_n + 1))

    grid_regular = result.get_series("grid (regular)")
    hexamesh_series = [
        series for series in result.series if series.name.startswith("hexamesh")
    ]

    # Who wins: HexaMesh bisection bandwidth is at least the grid's.
    for x in grid_regular.xs:
        if x < 4:
            continue
        hexamesh_values = [
            series.y_at(x) for series in hexamesh_series if x in series.xs
        ]
        if hexamesh_values:
            assert max(hexamesh_values) >= grid_regular.y_at(x)

    largest = max(grid_regular.xs)
    hexamesh_at_largest = max(
        series.y_at(largest) for series in hexamesh_series if largest in series.xs
    )
    factor = hexamesh_at_largest / grid_regular.y_at(largest)

    print()
    print(render_series_summary(result))
    print(
        f"HexaMesh / grid bisection factor at N={int(largest)}: x{factor:.2f} (paper: x2.3)"
    )
