"""FIG6a — network diameter of every arrangement and regularity class.

Regenerates the diameter panel of Figure 6 for chiplet counts from 1 to the
configured maximum and prints one row per series (the paper's legend:
grid / brickwall / HexaMesh x regular / semi-regular / irregular), together
with the HexaMesh-vs-grid factor at the largest evaluated count (annotated
as "x0.6" in the figure).
"""

from conftest import bench_max_chiplets, run_once

from repro.evaluation.proxies import run_figure6_diameter
from repro.evaluation.tables import render_series_summary


def test_bench_fig6_diameter(benchmark):
    max_n = bench_max_chiplets()

    result = run_once(benchmark, run_figure6_diameter, range(1, max_n + 1))

    grid_regular = result.get_series("grid (regular)")
    hexamesh_series = [
        series for series in result.series if series.name.startswith("hexamesh")
    ]
    assert hexamesh_series, "HexaMesh series missing from Figure 6a"

    # Who wins: the HexaMesh diameter never exceeds the grid diameter at the
    # same chiplet count (checked on the regular grid points).
    for x in grid_regular.xs:
        hexamesh_values = [
            series.y_at(x)
            for series in hexamesh_series
            if x in series.xs
        ]
        if hexamesh_values:
            assert min(hexamesh_values) <= grid_regular.y_at(x)

    # The "x0.6" annotation of the paper at N = 100 (or the configured max).
    largest = max(grid_regular.xs)
    hexamesh_at_largest = min(
        series.y_at(largest) for series in hexamesh_series if largest in series.xs
    )
    factor = hexamesh_at_largest / grid_regular.y_at(largest)

    print()
    print(render_series_summary(result))
    print(f"HexaMesh / grid diameter factor at N={int(largest)}: x{factor:.2f} (paper: x0.6)")
