"""FIG7b — saturation throughput in Tb/s of the grid, brickwall and HexaMesh.

Regenerates the throughput panel of Figure 7: the relative saturation
throughput (bisection-limited analytical model by default) multiplied by
the full global bandwidth obtained from the D2D link model.
"""

from conftest import bench_max_chiplets, get_figure7_result, run_once

from repro.evaluation.tables import format_table


def test_bench_fig7_throughput(benchmark):
    max_n = bench_max_chiplets()

    figure7 = run_once(benchmark, get_figure7_result, max_n)

    counts = figure7.chiplet_counts()
    # Shape check: on average over the sweep the HexaMesh sustains more
    # traffic than the grid (the paper reports +34 % on average).
    ratios = [
        figure7.point("hexamesh", count).saturation_throughput_tbps
        / figure7.point("grid", count).saturation_throughput_tbps
        for count in counts
    ]
    assert sum(ratios) / len(ratios) > 1.0

    sample_counts = [c for c in (2, 10, 25, 37, 50, 64, 75, 91, 100) if c in counts]
    rows = []
    for count in sample_counts:
        grid = figure7.point("grid", count)
        brickwall = figure7.point("brickwall", count)
        hexamesh = figure7.point("hexamesh", count)
        rows.append(
            [
                count,
                grid.saturation_throughput_tbps,
                brickwall.saturation_throughput_tbps,
                hexamesh.saturation_throughput_tbps,
                grid.link_bandwidth_gbps,
                hexamesh.link_bandwidth_gbps,
            ]
        )

    print()
    print("Figure 7b: saturation throughput [Tb/s] (bisection-limited model)")
    print(
        format_table(
            ["N", "grid", "brickwall", "hexamesh", "grid link [Gb/s]", "HM link [Gb/s]"],
            rows,
        )
    )
