"""FIG7c / FIG7d — latency and throughput relative to the grid baseline.

Regenerates the two normalised panels of Figure 7 and the averages the
paper quotes (latency reduced by ~19 %, throughput improved by ~34 % for
the HexaMesh; ~12 % throughput improvement for the brickwall).
"""

from conftest import bench_max_chiplets, get_figure7_result, run_once

from repro.evaluation.headline import average_improvements
from repro.evaluation.tables import format_table


def test_bench_fig7_normalized(benchmark):
    max_n = bench_max_chiplets()

    figure7 = run_once(benchmark, get_figure7_result, max_n)

    counts = figure7.chiplet_counts()
    hexamesh_latency, hexamesh_throughput = average_improvements(figure7, kind="hexamesh")
    brickwall_latency, brickwall_throughput = average_improvements(figure7, kind="brickwall")

    # Shape checks: HexaMesh reduces latency by roughly the paper's 19 % and
    # improves throughput on average; the brickwall improves less than the
    # HexaMesh, as in the paper.
    assert 10.0 < hexamesh_latency < 30.0
    assert hexamesh_throughput > 0.0
    assert hexamesh_throughput > brickwall_throughput

    sample_counts = [c for c in (10, 25, 37, 50, 64, 75, 91, 100) if c in counts]
    rows = []
    for count in sample_counts:
        rows.append(
            [
                count,
                figure7.normalized_latency_percent("brickwall", count),
                figure7.normalized_latency_percent("hexamesh", count),
                figure7.normalized_throughput_percent("brickwall", count),
                figure7.normalized_throughput_percent("hexamesh", count),
            ]
        )

    print()
    print("Figures 7c/7d: latency and throughput relative to the grid [%]")
    print(
        format_table(
            ["N", "BW latency %", "HM latency %", "BW throughput %", "HM throughput %"],
            rows,
        )
    )
    print(
        f"Averages over N=2..{max_n}: HM latency -{hexamesh_latency:.1f} % "
        f"(paper: -19 %), HM throughput +{hexamesh_throughput:.1f} % (paper: +34 %), "
        f"BW throughput +{brickwall_throughput:.1f} % (paper: +12 %)"
    )
