"""EXT-COST — manufacturing cost versus chiplet count (extension).

The paper motivates 2.5D integration economically and cites Chiplet Actuary
as an orthogonal cost model; this benchmark combines the cost extension
with the arrangements: per-unit cost of realising the 800 mm² design as a
monolithic die versus N chiplets arranged as a HexaMesh (whose average
degree sets the PHY overhead per chiplet).
"""

from conftest import run_once

from repro.arrangements.factory import make_arrangement
from repro.cost.manufacturing import (
    CostModelParameters,
    chiplet_cost,
    monolithic_cost,
)
from repro.evaluation.tables import format_table


def _cost_sweep():
    parameters = CostModelParameters(defect_density_per_cm2=0.2)
    mono = monolithic_cost(parameters)
    rows = [["monolithic", 1, mono.die_yield, mono.total_cost, 1.0]]
    for count in (4, 9, 16, 25, 37, 61, 91):
        arrangement = make_arrangement("hexamesh", count)
        links_per_chiplet = arrangement.degree_statistics().average
        breakdown = chiplet_cost(parameters, count, links_per_chiplet)
        rows.append(
            [
                f"hexamesh-{count}",
                count,
                breakdown.chiplet_yield,
                breakdown.total_cost,
                breakdown.total_cost / mono.total_cost,
            ]
        )
    return rows


def test_bench_cost_model(benchmark):
    rows = run_once(benchmark, _cost_sweep)

    monolithic_row = rows[0]
    chiplet_rows = rows[1:]
    # Yield always improves with disaggregation, and at this defect density
    # at least one chiplet design is cheaper than the monolithic die.
    assert all(row[2] > monolithic_row[2] for row in chiplet_rows)
    assert any(row[4] < 1.0 for row in chiplet_rows)

    print()
    print("Manufacturing cost extension (defect density 0.2 /cm², 800 mm² of logic)")
    print(
        format_table(
            ["design", "chiplets", "die yield", "cost / unit", "vs monolithic"],
            rows,
        )
    )
