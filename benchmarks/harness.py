#!/usr/bin/env python
"""Standalone entry point for the engine benchmark harness.

Equivalent to ``python -m repro bench`` (the logic lives in
:mod:`repro.bench` so the installed CLI and this in-repo script cannot
drift apart).  Run from the repository root:

    PYTHONPATH=src python benchmarks/harness.py --quick
    PYTHONPATH=src python benchmarks/harness.py --quick \
        --check-against benchmarks/baseline.json

The report lands in ``BENCH_<rev>.json`` unless ``--output`` says
otherwise; ``benchmarks/baseline.json`` is the committed perf baseline the
CI ``perf-regression`` job gates against.  Refresh it deliberately with
``--quick --write-baseline benchmarks/baseline.json`` (the gate runs in
quick mode, so the baseline must be recorded in quick mode too — see
README "Benchmarking & perf tracking").
"""

from __future__ import annotations

import os
import sys

# Make the in-repo package importable when PYTHONPATH is not set.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cli import main  # noqa: E402  (sys.path setup must come first)

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
