"""FIG5/EX1 — the chiplet-shape solver and the Section IV-B worked example.

Regenerates the chiplet dimensions, per-link bump-sector area and maximum
bump-to-edge distance for both bump layouts over a sweep of chiplet areas,
and pins the paper's worked example (A_C = 16 mm², p_p = 0.4 ->
W_C = 4.38 mm, H_C = 3.65 mm, D_B = 0.73 mm).
"""

import pytest

from repro.evaluation.tables import format_table
from repro.linkmodel.shape import solve_grid_shape, solve_hex_shape


def _shape_table():
    rows = []
    for area in (4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 200.0, 400.0, 800.0):
        grid = solve_grid_shape(area, 0.4)
        hexagonal = solve_hex_shape(area, 0.4)
        rows.append(
            [
                area,
                grid.width_mm,
                grid.link_sector_area_mm2,
                grid.bump_distance_mm,
                hexagonal.width_mm,
                hexagonal.height_mm,
                hexagonal.link_sector_area_mm2,
                hexagonal.bump_distance_mm,
            ]
        )
    return rows


def test_bench_shape_model(benchmark):
    rows = benchmark(_shape_table)

    example = solve_hex_shape(16.0, 0.4)
    assert example.width_mm == pytest.approx(4.38, abs=0.005)
    assert example.height_mm == pytest.approx(3.65, abs=0.005)
    assert example.bump_distance_mm == pytest.approx(0.73, abs=0.005)

    print()
    print("Chiplet shape solver (p_p = 0.4); paper example is the A_C = 16 row")
    print(
        format_table(
            [
                "A_C [mm2]",
                "grid W_C",
                "grid A_B",
                "grid D_B",
                "hex W_C",
                "hex H_C",
                "hex A_B",
                "hex D_B",
            ],
            rows,
        )
    )
