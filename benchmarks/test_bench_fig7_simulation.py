"""FIG7 (cycle-accurate spot checks) — the BookSim2-substitute methodology.

The analytical sweeps of the other FIG7 benchmarks cover every chiplet
count; this benchmark validates a subset of design points with the
cycle-accurate simulator, exactly as one would use BookSim2 for spot
checks: zero-load latency at a low injection rate and sustained accepted
throughput at full offered load, converted to Tb/s with the link model.

Set ``HEXAMESH_FULL_SIM=1`` to extend the subset to larger chiplet counts.
"""

from conftest import full_simulation_requested, run_once

from repro.arrangements.factory import make_arrangement
from repro.evaluation.tables import format_table
from repro.linkmodel.bandwidth import D2DLinkModel
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator
from repro.perfmodel.latency import zero_load_latency_cycles

#: Default cycle-accurate spot checks: (kind, chiplet count).
DEFAULT_POINTS = [
    ("grid", 16),
    ("brickwall", 16),
    ("hexamesh", 19),
    ("grid", 36),
    ("hexamesh", 37),
]

#: Additional, slower points enabled with HEXAMESH_FULL_SIM=1.
FULL_POINTS = [
    ("brickwall", 36),
    ("grid", 64),
    ("hexamesh", 61),
    ("grid", 100),
    ("hexamesh", 91),
]


def _simulate_points(points):
    config = SimulationConfig(
        warmup_cycles=300, measurement_cycles=800, drain_cycles=1500
    )
    overload_config = SimulationConfig(
        warmup_cycles=300, measurement_cycles=800, drain_cycles=0
    )
    link_model = D2DLinkModel()
    rows = []
    for kind, count in points:
        arrangement = make_arrangement(kind, count)
        graph = arrangement.graph
        latency = (
            NocSimulator(graph, config, injection_rate=0.03)
            .run()
            .packet_latency.mean
        )
        accepted = (
            NocSimulator(graph, overload_config, injection_rate=1.0)
            .run()
            .accepted_flit_rate
        )
        estimate = link_model.estimate_for_arrangement(arrangement)
        full_global_tbps = count * 2 * estimate.bandwidth_bps / 1e12
        rows.append(
            [
                f"{kind}-{count}",
                latency,
                zero_load_latency_cycles(graph, config),
                accepted,
                accepted * full_global_tbps,
            ]
        )
    return rows


def test_bench_fig7_simulation(benchmark):
    points = list(DEFAULT_POINTS)
    if full_simulation_requested():
        points += FULL_POINTS

    rows = run_once(benchmark, _simulate_points, points)

    # The simulated zero-load latency must agree with the analytical model.
    for row in rows:
        simulated, analytical = row[1], row[2]
        assert abs(simulated - analytical) / analytical < 0.10

    # Who wins (simulated): HexaMesh-37 beats grid-36 in both metrics.
    by_label = {row[0]: row for row in rows}
    if "grid-36" in by_label and "hexamesh-37" in by_label:
        assert by_label["hexamesh-37"][1] < by_label["grid-36"][1]
        assert by_label["hexamesh-37"][4] > by_label["grid-36"][4]

    print()
    print("Figure 7 cycle-accurate spot checks (uniform random traffic)")
    print(
        format_table(
            [
                "design",
                "sim latency [cyc]",
                "model latency [cyc]",
                "accepted [flit/cyc/EP]",
                "throughput [Tb/s]",
            ],
            rows,
        )
    )
