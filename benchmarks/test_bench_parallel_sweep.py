"""Benchmark of the sweep engine: active-set fast path and parallel fan-out.

The default (smoke) benchmark runs a small HexaMesh sweep through both
cycle-loop engines, checks they agree bit-for-bit and reports the
wall-clock ratio.  The ``slow``-marked benchmark reproduces the Fig. 7
sweep scenario at scale — a 61-chiplet HexaMesh grid fanned over 8
workers — and is meant for multi-core machines (it skips when fewer than
four CPUs are available).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from conftest import run_once

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import ParallelSweepRunner
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator

SMOKE_CONFIG = SimulationConfig(
    warmup_cycles=200, measurement_cycles=400, drain_cycles=1200
)


def _engine_comparison(kind: str, count: int, rates: tuple[float, ...]):
    rows = []
    for rate in rates:
        graph = make_arrangement(kind, count).graph
        start = time.perf_counter()
        legacy = NocSimulator(graph, SMOKE_CONFIG, injection_rate=rate).run(
            engine="legacy"
        )
        legacy_s = time.perf_counter() - start

        simulator = NocSimulator(graph, SMOKE_CONFIG, injection_rate=rate)
        start = time.perf_counter()
        active = simulator.run(engine="active")
        active_s = time.perf_counter() - start

        assert legacy == active, f"engines diverged at rate {rate}"
        stats = simulator.last_engine_stats
        rows.append(
            [
                f"{kind}-{count} @{rate:g}",
                round(legacy_s, 3),
                round(active_s, 3),
                round(legacy_s / active_s, 2) if active_s > 0 else float("inf"),
                f"{stats.cycles_executed}/{legacy.cycles_simulated}",
            ]
        )
    return rows


def test_bench_active_set_engine(benchmark):
    """Smoke comparison: both engines agree; the fast path skips idle cycles."""
    rows = run_once(
        benchmark, _engine_comparison, "hexamesh", 19, (0.02, 0.05, 0.3)
    )
    print()
    print(format_table(
        ["sweep point", "legacy [s]", "active [s]", "speedup", "cycles run"], rows
    ))
    # The deterministic fast-path guarantee: at low load the drain phase is
    # mostly idle, so the active engine must have exited early.
    low_load_cycles = int(rows[0][4].split("/")[0])
    horizon = int(rows[0][4].split("/")[1])
    assert low_load_cycles < horizon


@pytest.mark.slow
def test_bench_fig7_sweep_parallel_speedup(benchmark):
    """The Fig. 7 sweep scenario: 60-chiplet-class HexaMesh grid, 8 workers.

    Requires a multi-core machine; the acceptance target is >= 3x at 8
    workers, asserted loosely at 2.5x to absorb scheduler noise.
    """
    if multiprocessing.cpu_count() < 4:
        pytest.skip("parallel speedup benchmark needs >= 4 CPUs")

    config = SimulationConfig(
        warmup_cycles=300, measurement_cycles=600, drain_cycles=1200
    )
    grid = ParallelSweepRunner.grid(
        ["hexamesh"], [61], (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0),
        ("uniform", "tornado"),
    )

    def _run_both():
        start = time.perf_counter()
        serial = ParallelSweepRunner(config, jobs=1).run(grid)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = ParallelSweepRunner(config, jobs=8).run(grid)
        parallel_s = time.perf_counter() - start
        assert serial == parallel
        return serial_s, parallel_s

    serial_s, parallel_s = run_once(benchmark, _run_both)
    speedup = serial_s / parallel_s
    print(f"\nserial {serial_s:.1f}s, 8 workers {parallel_s:.1f}s, speedup {speedup:.2f}x")
    assert speedup >= 2.5
