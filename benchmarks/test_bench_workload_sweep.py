"""Benchmark of the workload subsystem: mapping cost and trace-driven sweeps.

The smoke benchmark maps every workload kind onto a HexaMesh with every
mapper and reports the static cost table plus the wall-clock of a small
trace-driven sweep through both cycle-loop engines (asserting they agree
bit-for-bit).  The ``slow``-marked benchmark fans a full application grid
over 8 workers and checks the parallel records match the serial ones.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from conftest import run_once

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import ParallelSweepRunner
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig
from repro.workloads import (
    available_mappers,
    available_workloads,
    evaluate_mapping,
    make_workload,
    map_workload,
)

SMOKE_CONFIG = SimulationConfig(
    warmup_cycles=200, measurement_cycles=400, drain_cycles=1200
)


def _mapping_cost_table(count: int):
    graph = make_arrangement("hexamesh", count).graph
    rows = []
    for kind in available_workloads():
        workload = make_workload(kind, num_tasks=count)
        for mapper in available_mappers():
            start = time.perf_counter()
            mapping = map_workload(mapper, workload, graph)
            cost = evaluate_mapping(workload, mapping, graph)
            elapsed = time.perf_counter() - start
            rows.append([
                f"{kind}/{mapper}",
                round(cost.weighted_hop_count, 1),
                round(cost.max_link_load, 1),
                round(elapsed * 1000, 2),
            ])
    return rows


def _trace_sweep_comparison():
    grid = ParallelSweepRunner.workload_grid(
        ["hexamesh"], [19], ["dnn-pipeline", "client-server"],
        ["partition", "round-robin"],
    )
    start = time.perf_counter()
    active = ParallelSweepRunner(SMOKE_CONFIG, engine="active").run(grid)
    active_s = time.perf_counter() - start
    start = time.perf_counter()
    legacy = ParallelSweepRunner(SMOKE_CONFIG, engine="legacy").run(grid)
    legacy_s = time.perf_counter() - start
    assert [r.result for r in active] == [r.result for r in legacy]
    return active_s, legacy_s, len(grid)


def test_bench_workload_mapping_and_trace(benchmark):
    """Smoke: cost of every (workload, mapper) pair + a trace sweep."""

    def _run():
        rows = _mapping_cost_table(19)
        timings = _trace_sweep_comparison()
        return rows, timings

    rows, (active_s, legacy_s, points) = run_once(benchmark, _run)
    print()
    print(format_table(
        ["workload/mapper", "weighted hops", "max link load", "map time [ms]"], rows
    ))
    print(f"\ntrace sweep ({points} points): active {active_s:.2f}s, "
          f"legacy {legacy_s:.2f}s (bit-identical)")


@pytest.mark.slow
def test_bench_workload_sweep_parallel_speedup(benchmark):
    """Full application grid fanned over 8 workers; records must match serial."""
    if multiprocessing.cpu_count() < 4:
        pytest.skip("parallel speedup benchmark needs >= 4 CPUs")

    grid = ParallelSweepRunner.workload_grid(
        ["grid", "hexamesh"], [37], list(available_workloads()),
        list(available_mappers()),
    )

    def _run_both():
        start = time.perf_counter()
        serial = ParallelSweepRunner(SMOKE_CONFIG, jobs=1).run(grid)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = ParallelSweepRunner(SMOKE_CONFIG, jobs=8).run(grid)
        parallel_s = time.perf_counter() - start
        assert serial == parallel
        return serial_s, parallel_s

    serial_s, parallel_s = run_once(benchmark, _run_both)
    speedup = serial_s / parallel_s
    print(f"\n{len(grid)} points: serial {serial_s:.1f}s, 8 workers "
          f"{parallel_s:.1f}s, speedup {speedup:.2f}x")
    assert speedup >= 2.0
