"""ABL-VC — ablation of the NoC simulator's router parameters.

The paper fixes the router microarchitecture (8 VCs, 8-flit buffers,
3-cycle routers, 27-cycle links).  This ablation varies virtual-channel
count, buffer depth and link latency on a fixed HexaMesh design to show how
sensitive the reported latency and sustained throughput are to those
choices — the kind of robustness check DESIGN.md calls out.
"""

from conftest import run_once

from repro.arrangements.factory import make_arrangement
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator

#: (label, configuration overrides) of each ablation point.
ABLATION_CONFIGS = [
    ("paper (8 VC, 8 buf, 27 link)", {}),
    ("2 VCs", {"num_virtual_channels": 2}),
    ("4 VCs", {"num_virtual_channels": 4}),
    ("buffer depth 2", {"buffer_depth_flits": 2}),
    ("buffer depth 16", {"buffer_depth_flits": 16}),
    ("link latency 9", {"link_latency_cycles": 9}),
    ("link latency 54", {"link_latency_cycles": 54}),
]


def _run_ablation():
    graph = make_arrangement("hexamesh", 19).graph
    rows = []
    for label, overrides in ABLATION_CONFIGS:
        base = dict(warmup_cycles=300, measurement_cycles=600, drain_cycles=1200)
        base.update(overrides)
        config = SimulationConfig(**base)
        latency = (
            NocSimulator(graph, config, injection_rate=0.03).run().packet_latency.mean
        )
        overload = SimulationConfig(**{**base, "drain_cycles": 0})
        accepted = (
            NocSimulator(graph, overload, injection_rate=1.0).run().accepted_flit_rate
        )
        rows.append([label, latency, accepted])
    return rows


def test_bench_ablation_noc(benchmark):
    rows = run_once(benchmark, _run_ablation)
    by_label = {row[0]: row for row in rows}

    paper = by_label["paper (8 VC, 8 buf, 27 link)"]
    # Link latency dominates zero-load latency; halving / doubling it moves
    # the latency in the expected direction.
    assert by_label["link latency 9"][1] < paper[1] < by_label["link latency 54"][1]
    # Starving the routers of buffers reduces sustained throughput.
    assert by_label["buffer depth 2"][2] <= paper[2] + 0.02
    # Fewer VCs never helps throughput.
    assert by_label["2 VCs"][2] <= paper[2] + 0.02

    print()
    print("NoC ablation on HexaMesh-19 (uniform random traffic)")
    print(
        format_table(
            ["configuration", "zero-load latency [cyc]", "accepted @ overload [flit/cyc/EP]"],
            rows,
        )
    )
