"""TAB1 — the D2D link-bandwidth model with the Section VI-B parameters.

Regenerates the per-link bandwidth (and the underlying wire counts) for the
three arrangement families over a set of chiplet counts, using the paper's
parameters: A_all = 800 mm², p_p = 0.4, P_B = 0.15 mm, N_ndw = 12,
f = 16 GHz.
"""

import pytest

from conftest import run_once

from repro.evaluation.performance import run_link_bandwidth_table
from repro.evaluation.tables import format_table


def test_bench_table1_linkmodel(benchmark):
    result = run_once(benchmark, run_link_bandwidth_table)

    grid = result.get_series("grid")
    hexamesh = result.get_series("hexamesh")

    # Reference point of the paper's setting: grid at N = 100 -> 53 wires,
    # 41 data wires, 656 Gb/s per link.
    assert grid.y_at(100) == pytest.approx(656.0)
    # The six-sector layouts always have less area and bandwidth per link.
    for count in grid.xs:
        assert hexamesh.y_at(count) <= grid.y_at(count)

    rows = []
    for point in grid.points:
        count = int(point.x)
        hexamesh_point = next(p for p in hexamesh.points if p.x == point.x)
        rows.append(
            [
                count,
                point.annotations["chiplet_area_mm2"],
                point.annotations["num_data_wires"],
                point.y,
                hexamesh_point.annotations["num_data_wires"],
                hexamesh_point.y,
                point.annotations["full_global_bandwidth_tbps"],
                hexamesh_point.annotations["full_global_bandwidth_tbps"],
            ]
        )

    print()
    print("D2D link model (Table I inputs, Section VI-B values)")
    print(
        format_table(
            [
                "N",
                "A_C [mm2]",
                "grid N_dw",
                "grid B [Gb/s]",
                "HM N_dw",
                "HM B [Gb/s]",
                "grid FGB [Tb/s]",
                "HM FGB [Tb/s]",
            ],
            rows,
        )
    )
