"""HEADLINE — the four numbers of the paper's abstract.

* network diameter reduced by 42 % (asymptotically),
* bisection bandwidth improved by 130 % (asymptotically),
* latency reduced by 19 % on average,
* throughput improved by 34 % on average.

The first two are exact consequences of the closed-form formulas; the last
two are recomputed from the Figure 7 sweep (analytical engine).
"""

from conftest import bench_max_chiplets, get_figure7_result, run_once

from repro.evaluation.headline import compute_headline_claims
from repro.evaluation.tables import format_table


def _claims(max_n):
    return compute_headline_claims(get_figure7_result(max_n))


def test_bench_headline_claims(benchmark):
    max_n = bench_max_chiplets()

    claims = run_once(benchmark, _claims, max_n)

    assert abs(claims.diameter_reduction_percent - 42.0) < 1.0
    assert abs(claims.bisection_improvement_percent - 130.0) < 2.0
    assert 10.0 < claims.latency_reduction_percent < 30.0
    assert claims.throughput_improvement_percent > 5.0

    rows = [
        ["diameter reduction [%]", claims.PAPER_DIAMETER_REDUCTION, claims.diameter_reduction_percent],
        ["bisection improvement [%]", claims.PAPER_BISECTION_IMPROVEMENT, claims.bisection_improvement_percent],
        ["latency reduction [%]", claims.PAPER_LATENCY_REDUCTION, claims.latency_reduction_percent],
        ["throughput improvement [%]", claims.PAPER_THROUGHPUT_IMPROVEMENT, claims.throughput_improvement_percent],
    ]
    print()
    print("Headline claims: HexaMesh vs. grid")
    print(format_table(["claim", "paper", "reproduced"], rows))
