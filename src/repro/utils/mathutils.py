"""Integer and floating-point helpers shared by the arrangement generators.

The helpers here encode the small pieces of number theory the paper relies
on: perfect squares (regular grids and brickwalls), balanced factor pairs
(semi-regular grids) and the centred-hexagonal numbers ``1 + 3 r (r + 1)``
that admit a *regular* HexaMesh.
"""

from __future__ import annotations

import hashlib
import math

from repro.utils.validation import check_positive_int


def mix_seed(base_seed: int, identity: bytes) -> int:
    """Deterministic, strictly positive seed mixed from an identity digest.

    The canonical seed-derivation primitive of the code base: a SHA-256
    digest of ``identity`` is folded into ``base_seed`` (golden-ratio
    multiply, 63-bit wrap), so derived seeds are reproducible across
    processes and machines (``PYTHONHASHSEED`` does not affect them) and
    never collapse to 0.  Both the parallel sweep engine
    (:func:`repro.core.parallel.derive_candidate_seed`) and the fault
    samplers (:func:`repro.resilience.sampler.derive_fault_seed`) derive
    their per-item seeds through this single implementation.
    """
    digest = hashlib.sha256(identity).digest()
    mixed = (base_seed * 0x9E3779B1 + int.from_bytes(digest[:8], "big")) % (2**63)
    return mixed or 1


def isqrt_floor(n: int) -> int:
    """Return ``floor(sqrt(n))`` for a non-negative integer ``n``."""
    if n < 0:
        raise ValueError(f"isqrt_floor requires n >= 0, got {n}")
    return math.isqrt(n)


def is_perfect_square(n: int) -> bool:
    """Return ``True`` if ``n`` is a perfect square (``n >= 0``)."""
    if n < 0:
        return False
    root = math.isqrt(n)
    return root * root == n


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def almost_equal(a: float, b: float, *, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Floating-point comparison with both relative and absolute tolerance."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def balanced_factor_pair(n: int) -> tuple[int, int] | None:
    """Return the most balanced non-trivial factorisation ``(rows, cols)`` of ``n``.

    The pair satisfies ``rows * cols == n`` with ``2 <= rows <= cols`` and
    minimises ``cols - rows``.  Returns ``None`` when no such factorisation
    exists (``n`` is prime or smaller than 4).  A pair with ``rows == cols``
    (perfect square) is returned as well; callers that want a strictly
    *semi-regular* layout must check for inequality themselves.
    """
    check_positive_int("n", n)
    if n < 4:
        return None
    best: tuple[int, int] | None = None
    for rows in range(isqrt_floor(n), 1, -1):
        if n % rows == 0:
            cols = n // rows
            best = (rows, cols)
            break
    return best


def hexamesh_chiplet_count(rings: int) -> int:
    """Number of chiplets in a regular HexaMesh with ``rings`` rings.

    A regular HexaMesh consists of one central chiplet surrounded by
    ``rings`` concentric rings where ring ``i`` holds ``6 i`` chiplets,
    i.e. ``N = 1 + 3 r (r + 1)`` (the centred hexagonal numbers).
    ``rings = 0`` denotes the single central chiplet.
    """
    if rings < 0:
        raise ValueError(f"rings must be >= 0, got {rings}")
    return 1 + 3 * rings * (rings + 1)


def hexamesh_rings_for_count(n: int) -> int:
    """Largest ring count ``r`` such that ``1 + 3 r (r + 1) <= n``."""
    check_positive_int("n", n)
    rings = 0
    while hexamesh_chiplet_count(rings + 1) <= n:
        rings += 1
    return rings


def is_hexamesh_count(n: int) -> bool:
    """Return ``True`` if ``n`` is a centred hexagonal number ``1 + 3 r (r + 1)``."""
    if n < 1:
        return False
    return hexamesh_chiplet_count(hexamesh_rings_for_count(n)) == n
