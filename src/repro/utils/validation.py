"""Argument-validation helpers.

All public entry points of the library validate their inputs eagerly and
raise :class:`ValueError` / :class:`TypeError` with messages that name the
offending parameter.  Centralising the checks keeps the error messages
consistent and the call sites short.
"""

from __future__ import annotations

from typing import Any, Iterable


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``.

    Returns the value unchanged so the helper can be used inline.
    """
    if isinstance(expected, tuple):
        expected_names = " or ".join(t.__name__ for t in expected)
    else:
        expected_names = expected.__name__
    # ``bool`` is a subclass of ``int``; reject it when an int is expected so
    # accidental flags do not silently become counts.
    if isinstance(value, bool) and expected in (int, float, (int, float), (float, int)):
        raise TypeError(f"{name} must be {expected_names}, got bool")
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a strictly positive real number."""
    check_type(name, value, (int, float))
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a real number greater than or equal to zero."""
    check_type(name, value, (int, float))
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer greater than or equal to ``minimum``."""
    check_type(name, value, int)
    if value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")
    return int(value)


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    check_type(name, value, (int, float))
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be within (0, 1), got {value!r}")
    return float(value)


def check_in_choices(name: str, value: Any, choices: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``choices``."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value
