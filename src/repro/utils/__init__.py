"""Small shared helpers used across the library."""

from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_type,
)
from repro.utils.mathutils import (
    almost_equal,
    balanced_factor_pair,
    ceil_div,
    hexamesh_chiplet_count,
    hexamesh_rings_for_count,
    is_hexamesh_count,
    is_perfect_square,
    isqrt_floor,
)

__all__ = [
    "almost_equal",
    "balanced_factor_pair",
    "ceil_div",
    "check_fraction",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_type",
    "hexamesh_chiplet_count",
    "hexamesh_rings_for_count",
    "is_hexamesh_count",
    "is_perfect_square",
    "isqrt_floor",
]
