"""Benchmark harness: wall-clock tracking of the cycle-loop engines.

The harness runs a fixed, deterministic list of scenarios — the Figure 7
simulation point the paper spot-checks (61-chiplet HexaMesh), a small
design-space sweep, a trace-driven application workload, a
fault-injection resilience curve, a batched-vs-per-point multi-rate
resilience *surface* and a 16-point batched-vs-per-point
injection sweep — once per
cycle-loop engine, and emits a machine-readable ``BENCH_<rev>.json``
report with wall-clock seconds, simulated cycles per second and the
speedup of every engine over the legacy reference (plus, for the batched
sweep scenario, the batched-vs-per-point speedup, gated with its own
hard floor).

Because all engines are bit-identical, the harness also *asserts* result
equality across them on every scenario, so a benchmark run doubles as an
end-to-end equivalence check.

Perf-regression gating (the CI ``perf-regression`` job) compares a fresh
report against the committed ``benchmarks/baseline.json``:

* the **speedup over legacy** of each engine must not fall more than
  ``tolerance`` (default 25%) below the baseline's recorded speedup —
  speedups are ratios of two runs on the same machine, so the gate is
  robust against runner-to-runner hardware variance, unlike raw wall
  clock;
* a scenario/engine may additionally carry a hard ``min_speedup`` floor
  (the committed baseline pins the vectorized engine to >= 2x on the
  61-chiplet HexaMesh zero-load point, the PR's headline target).

Run it via the CLI (``python -m repro bench [--quick]``) or the thin
wrapper ``benchmarks/harness.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import ParallelSweepRunner
from repro.noc.config import SimulationConfig
from repro.noc.engine import ENGINE_NAMES
from repro.noc.simulator import BatchPoint, NocSimulator
from repro.resilience.sweep import run_resilience_sweep
from repro.telemetry import (
    FlitTracer,
    MetricsCollector,
    StageProfiler,
    TelemetrySession,
    build_manifest,
)
from repro.telemetry.provenance import git_revision as _provenance_git_revision
from repro.workloads import make_workload, map_workload
from repro.workloads.trace import simulate_workload

#: Schema version of the emitted report; bump on layout changes.
BENCH_SCHEMA = 1

#: Relative speedup loss (vs. the committed baseline) that fails the gate.
DEFAULT_TOLERANCE = 0.25

#: The engine every speedup is measured against.
REFERENCE_ENGINE = "legacy"

#: Hard speedup floors recorded in the committed baseline: the vectorized
#: engine must stay >= 2x over legacy on the 61-chiplet HexaMesh zero-load
#: point, and >= 3x at the overload point — the saturated regime where
#: the pre-kernel engine collapsed to 1.4x (the perf cliff this floor
#: permanently guards against).
HEADLINE_FLOORS: dict[tuple[str, str], float] = {
    ("fig7-hexamesh61-zero-load", "vectorized"): 2.0,
    ("fig7-hexamesh61-overload", "vectorized"): 3.0,
    # Guards the zero-overhead disabled-telemetry path: the scenario's
    # gated wall includes a telemetry-disabled run, so probe cost on the
    # no-op path would erode this speedup and trip the gate.
    ("telemetry-overhead-hexamesh61", "vectorized"): 1.8,
}

#: Hard floors on the batched-vs-per-point speedup (the headline target of
#: the batched sweep engine): evaluating the 16-point HexaMesh-61 sweep
#: through ``NocSimulator.run_batch`` must stay >= 2x faster than the
#: per-point vectorized loop, with bit-identical per-point results
#: (asserted in-harness on every run).
BATCHED_FLOORS: dict[tuple[str, str], float] = {
    ("sweep-batched-hexamesh61", "vectorized"): 2.0,
    # The multi-rate resilience surface: every injection rate of one
    # sampled fault arrangement shares a single degraded-topology /
    # routing / flat-state build, so the 3x16-point surface must stay
    # >= 2x faster batched than per-point (bit-identical records
    # asserted in-harness on every run).
    ("resilience-multirate-hexamesh19", "vectorized"): 2.0,
}


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark scenario.

    ``build`` returns a zero-argument callable per engine invocation:
    calling it runs the scenario once with the given engine and returns
    ``(comparable_result, cycles_simulated)``.  The comparable result is
    used for the cross-engine equality assertion.
    """

    name: str
    description: str
    quick: bool  # part of the --quick subset
    build: Callable[[bool], Callable[[str], tuple]]
    # ``run(engine)`` returns ``(comparable_result, cycles)`` or
    # ``(comparable_result, cycles, extra_metrics)`` — extra metrics are
    # merged into the engine's report row (the batched sweep scenario
    # reports its batched-vs-per-point speedup this way).


def _phase_config(quick: bool, **overrides) -> SimulationConfig:
    """Paper-length phases for full runs, reduced phases for --quick."""
    if quick:
        return SimulationConfig(
            warmup_cycles=200, measurement_cycles=400, drain_cycles=600, **overrides
        )
    return SimulationConfig(**overrides)


def _fig7_point(rate: float):
    def build(quick: bool):
        graph = make_arrangement("hexamesh", 61).graph
        config = _phase_config(quick)

        def run(engine: str):
            simulator = NocSimulator(graph, config, injection_rate=rate)
            result = simulator.run(engine=engine)
            return result, result.cycles_simulated

        return run

    return build


def _sweep_grid(quick: bool):
    config = _phase_config(quick)
    counts = (16, 19) if quick else (16, 37)
    candidates = ParallelSweepRunner.grid(
        ("grid", "hexamesh"), counts, (0.05, 0.3), ("uniform",)
    )

    def run(engine: str):
        runner = ParallelSweepRunner(config, jobs=1, engine=engine)
        records = runner.run(candidates)
        cycles = sum(record.result.cycles_simulated for record in records)
        return [record.result for record in records], cycles

    return run


def _workload_trace(quick: bool):
    config = _phase_config(quick)
    graph = make_arrangement("hexamesh", 37).graph
    workload = make_workload("dnn-pipeline", num_tasks=37)
    mapping = map_workload("partition", workload, graph)

    def run(engine: str):
        result = simulate_workload(
            graph, workload, mapping, config=config, engine=engine
        )
        return result.simulation, result.simulation.cycles_simulated

    return run


def _resilience_curve(quick: bool):
    config = _phase_config(quick)
    counts = (0, 2) if quick else (0, 2, 4)

    def run(engine: str):
        sweep = run_resilience_sweep(
            ("hexamesh",),
            19,
            counts,
            samples=1,
            fault_type="link",
            config=config,
            injection_rate=0.05,
            jobs=1,
            engine=engine,
        )
        cycles = sum(record.result.cycles_simulated for record in sweep.records)
        return [record.result for record in sweep.records], cycles

    return run


#: Phase lengths of the batched-sweep scenario.  Deliberately *not*
#: derived from ``--quick``: the batched engine targets high-throughput
#: screening sweeps (many points, short phases), so the scenario measures
#: that workload in both modes and the gated batched-vs-per-point ratio is
#: mode-independent.
_SWEEP_BATCHED_CONFIG = dict(
    warmup_cycles=100, measurement_cycles=150, drain_cycles=250
)

#: The 16 offered loads of the batched-sweep scenario: a fine-grained
#: scan of the zero-load latency plateau of the 61-chiplet HexaMesh (the
#: paper's Fig. 7 zero-load operating region; saturation sits more than
#: an order of magnitude higher) — the regime where screening sweeps
#: actually run and where per-point rebuild overhead dominates.
SWEEP_BATCHED_RATES: tuple[float, ...] = tuple(
    round(0.001 * step, 3) for step in range(1, 17)
)


def _sweep_batched(quick: bool):
    graph = make_arrangement("hexamesh", 61).graph
    config = SimulationConfig(**_SWEEP_BATCHED_CONFIG)
    rates = SWEEP_BATCHED_RATES

    def run(engine: str):
        start = time.perf_counter()
        per_point = [
            NocSimulator(graph, config, injection_rate=rate).run(engine=engine)
            for rate in rates
        ]
        per_point_wall = time.perf_counter() - start
        start = time.perf_counter()
        batched = NocSimulator.run_batch(
            graph,
            [BatchPoint(rate) for rate in rates],
            config=config,
            engine=engine,
        )
        batched_wall = time.perf_counter() - start
        if batched != per_point:
            raise RuntimeError(
                "sweep-batched-hexamesh61: batched results differ from "
                f"per-point results under engine {engine!r} — the "
                "bit-identical contract is broken"
            )
        cycles = 2 * sum(result.cycles_simulated for result in per_point)
        extra = {
            "per_point_wall_seconds": round(per_point_wall, 6),
            "batched_wall_seconds": round(batched_wall, 6),
            "batched_speedup_vs_per_point": round(
                per_point_wall / batched_wall, 3
            ) if batched_wall > 0 else 0.0,
        }
        return per_point, cycles, extra

    return run


#: Grid of the multi-rate resilience scenario: every fault arrangement
#: (healthy, one failed link, two failed links — three distinct degraded
#: topologies) is evaluated at sixteen zero-load-region offered loads.
#: Phase lengths are deliberately mode-independent, like the batched
#: sweep above, and short: degradation *surfaces* are a screening
#: workload (many short points per topology), which is exactly the
#: regime where the per-point arrangement/routing/flat-state rebuild
#: used to dominate.  The drain is long enough that every point still
#: delivers all measured packets.
_RESILIENCE_MULTIRATE_CONFIG = dict(
    warmup_cycles=40, measurement_cycles=60, drain_cycles=160
)

RESILIENCE_MULTIRATE_RATES: tuple[float, ...] = tuple(
    round(0.001 * step, 3) for step in range(1, 17)
)
RESILIENCE_MULTIRATE_FAILURES: tuple[int, ...] = (0, 1, 2)


def _resilience_multirate(quick: bool):
    config = SimulationConfig(**_RESILIENCE_MULTIRATE_CONFIG)

    def sweep(engine: str, batch: bool):
        return run_resilience_sweep(
            ("hexamesh",),
            19,
            RESILIENCE_MULTIRATE_FAILURES,
            samples=1,
            fault_type="link",
            config=config,
            injection_rates=RESILIENCE_MULTIRATE_RATES,
            jobs=1,
            engine=engine,
            batch=batch,
        )

    def run(engine: str):
        start = time.perf_counter()
        per_point = sweep(engine, batch=False)
        per_point_wall = time.perf_counter() - start
        start = time.perf_counter()
        batched = sweep(engine, batch=True)
        batched_wall = time.perf_counter() - start
        if batched.records != per_point.records:
            raise RuntimeError(
                "resilience-multirate-hexamesh19: batched surface differs "
                f"from per-point results under engine {engine!r} — the "
                "bit-identical contract is broken"
            )
        cycles = 2 * sum(
            record.result.cycles_simulated for record in per_point.records
        )
        extra = {
            "per_point_wall_seconds": round(per_point_wall, 6),
            "batched_wall_seconds": round(batched_wall, 6),
            "batched_speedup_vs_per_point": round(
                per_point_wall / batched_wall, 3
            ) if batched_wall > 0 else 0.0,
        }
        return [record.result for record in per_point.records], cycles, extra

    return run


def _telemetry_overhead(quick: bool):
    graph = make_arrangement("hexamesh", 61).graph
    config = _phase_config(quick)
    rate = 0.02

    def run(engine: str):
        # The harness-timed portion is the telemetry-DISABLED run: the
        # scenario's speedup floors therefore gate the zero-overhead
        # claim — if the disabled-path probes ever grow real cost, this
        # scenario slows down and the perf gate trips.
        simulator = NocSimulator(graph, config, injection_rate=rate)
        start = time.perf_counter()
        result = simulator.run(engine=engine)
        plain_wall = time.perf_counter() - start
        # One fully observed run per repeat, self-timed into extras so
        # the enabled-path cost is visible in reports without polluting
        # the gated headline number.
        session = TelemetrySession(
            metrics=MetricsCollector(),
            tracer=FlitTracer(),
            profiler=StageProfiler() if engine == "vectorized" else None,
        )
        observed = NocSimulator(graph, config, injection_rate=rate)
        start = time.perf_counter()
        observed_result = observed.run(engine=engine, telemetry=session)
        telemetry_wall = time.perf_counter() - start
        if observed_result != result:
            raise RuntimeError(
                "telemetry-overhead-hexamesh61: results with telemetry "
                f"enabled differ from plain results under engine {engine!r} "
                "— observation changed the simulation"
            )
        extra = {
            "plain_wall_seconds": round(plain_wall, 6),
            "telemetry_on_wall_seconds": round(telemetry_wall, 6),
            "trace_events": float(len(session.tracer.events)),
        }
        if session.profiler is not None:
            for stage, seconds in session.profiler.as_dict().items():
                extra[f"stage_{stage}_wall_seconds"] = round(seconds, 6)
        return result, result.cycles_simulated, extra

    return run


#: The deterministic scenario list (order is part of the report contract).
SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="fig7-hexamesh61-zero-load",
        description="61-chiplet HexaMesh at the Fig. 7 zero-load point (rate 0.02)",
        quick=True,
        build=_fig7_point(0.02),
    ),
    BenchScenario(
        name="fig7-hexamesh61-overload",
        description="61-chiplet HexaMesh at the Fig. 7 overload point (rate 1.0)",
        quick=True,
        build=_fig7_point(1.0),
    ),
    BenchScenario(
        name="sweep-grid-hexamesh",
        description="serial design-space sweep (grid+hexamesh x rates, uniform)",
        quick=True,
        build=_sweep_grid,
    ),
    BenchScenario(
        name="workload-dnn-hexamesh37",
        description="trace-driven dnn-pipeline on the 37-chiplet HexaMesh",
        quick=True,
        build=_workload_trace,
    ),
    BenchScenario(
        name="resilience-hexamesh19",
        description="fault-injection degradation curve on the 19-chiplet HexaMesh",
        quick=True,
        build=_resilience_curve,
    ),
    BenchScenario(
        name="resilience-multirate-hexamesh19",
        description=(
            "multi-rate degradation surface on the 19-chiplet HexaMesh "
            "(3 fault arrangements x 16 rates): batched surface vs "
            "per-point runs (bit-identical records asserted)"
        ),
        quick=True,
        build=_resilience_multirate,
    ),
    BenchScenario(
        name="sweep-batched-hexamesh61",
        description=(
            "16-point zero-load-region injection sweep on the 61-chiplet "
            "HexaMesh: batched multi-point run vs per-point runs "
            "(bit-identical results asserted)"
        ),
        quick=True,
        build=_sweep_batched,
    ),
    BenchScenario(
        name="telemetry-overhead-hexamesh61",
        description=(
            "61-chiplet HexaMesh zero-load point with telemetry disabled "
            "(gated timing; guards the zero-overhead no-op path) plus one "
            "fully observed run self-timed into extras"
        ),
        quick=True,
        build=_telemetry_overhead,
    ),
)


def available_scenarios(*, quick: bool = False) -> tuple[str, ...]:
    """Scenario names, in run order (the ``--quick`` subset when asked)."""
    return tuple(s.name for s in SCENARIOS if s.quick or not quick)


def git_revision(default: str = "local") -> str:
    """Short git revision of the working tree (``default`` when unavailable).

    Thin wrapper over :func:`repro.telemetry.provenance.git_revision`,
    kept for the existing callers (CLI, harness wrapper).
    """
    return _provenance_git_revision(
        default, cwd=os.path.dirname(os.path.abspath(__file__))
    )


def default_output_path(revision: str) -> str:
    """The conventional report filename for one revision."""
    return f"BENCH_{revision}.json"


def _merge_extras(extras: Sequence[dict[str, float]]) -> dict[str, float]:
    """Noise-suppress extra metrics across repeats.

    Wall-clock extras keep the fastest repeat (the same best-of-N
    convention as the scenario wall itself — each repeat measures the same
    deterministic work, so the minimum is the best noise-floor estimate);
    derived speedup ratios are then recomputed from the merged walls so
    the reported ratio is consistent with the reported wall clocks.
    """
    merged: dict[str, float] = {}
    for extra in extras:
        for key, value in extra.items():
            if key.endswith("_wall_seconds"):
                merged[key] = min(merged.get(key, value), value)
            else:
                merged.setdefault(key, value)
    per_point = merged.get("per_point_wall_seconds")
    batched = merged.get("batched_wall_seconds")
    if per_point is not None and batched is not None and batched > 0:
        merged["batched_speedup_vs_per_point"] = round(per_point / batched, 3)
    plain = merged.get("plain_wall_seconds")
    observed = merged.get("telemetry_on_wall_seconds")
    if plain is not None and observed is not None and plain > 0:
        merged["telemetry_overhead_ratio"] = round(observed / plain, 3)
    return merged


def run_bench(
    scenario_names: Sequence[str] | None = None,
    *,
    quick: bool = False,
    repeat: int = 1,
    engines: Sequence[str] = ENGINE_NAMES,
    revision: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the benchmark scenarios and build the report dictionary.

    ``repeat`` runs every (scenario, engine) pair N times and keeps the
    fastest wall clock (noise suppression); the per-run results must all
    be bit-identical, which is asserted.  ``scenario_names`` defaults to
    :func:`available_scenarios` for the chosen mode.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if scenario_names is None:
        selected = available_scenarios(quick=quick)
    else:
        selected = tuple(scenario_names)
    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    unknown = [name for name in selected if name not in by_name]
    if unknown:
        raise ValueError(
            f"unknown bench scenarios {unknown}; available: {', '.join(by_name)}"
        )
    for engine in engines:
        if engine not in ENGINE_NAMES:
            raise ValueError(f"unknown engine {engine!r}; available: {ENGINE_NAMES}")

    scenario_reports = []
    for name in selected:
        scenario = by_name[name]
        if progress is not None:
            progress(f"bench: {name} ({scenario.description})")
        run_once = scenario.build(quick)
        reference_result = None
        cycles = 0
        engine_rows: dict[str, dict[str, float]] = {}
        for engine in engines:
            best_wall = None
            extras: list[dict[str, float]] = []
            result = None
            for iteration in range(repeat):
                start = time.perf_counter()
                outcome = run_once(engine)
                wall = time.perf_counter() - start
                if len(outcome) == 3:
                    result, cycles, extra = outcome
                    extras.append(extra)
                else:
                    result, cycles = outcome
                if best_wall is None or wall < best_wall:
                    best_wall = wall
                if reference_result is None:
                    reference_result = result
                elif result != reference_result:
                    raise RuntimeError(
                        f"bench scenario {name!r}: engine {engine!r} "
                        f"(repeat {iteration + 1}/{repeat}) produced a "
                        "different result than the reference run — the "
                        "bit-identical contract is broken"
                    )
            engine_rows[engine] = {
                "wall_seconds": round(best_wall, 6),
                "cycles_per_second": round(cycles / best_wall, 1) if best_wall > 0 else 0.0,
            }
            if extras:
                engine_rows[engine].update(_merge_extras(extras))
        if REFERENCE_ENGINE in engine_rows:
            reference_wall = engine_rows[REFERENCE_ENGINE]["wall_seconds"]
            for engine, row in engine_rows.items():
                if row["wall_seconds"] > 0:
                    row["speedup_vs_legacy"] = round(
                        reference_wall / row["wall_seconds"], 3
                    )
        scenario_reports.append(
            {
                "name": name,
                "description": scenario.description,
                "cycles": cycles,
                "engines": engine_rows,
            }
        )

    return {
        "schema": BENCH_SCHEMA,
        "rev": revision if revision is not None else git_revision(),
        "quick": quick,
        "repeat": repeat,
        "created_unix": int(time.time()),
        "engines": list(engines),
        "provenance": build_manifest(
            extra={"quick": quick, "repeat": repeat, "scenarios": list(selected)}
        ),
        "scenarios": scenario_reports,
    }


def write_report(report: dict[str, Any], path: str) -> None:
    """Write the report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


class BaselineError(RuntimeError):
    """A report / baseline file could not be read or is not valid."""


def load_report(path: str) -> dict[str, Any]:
    """Load a report / baseline JSON file.

    Raises :class:`BaselineError` with a clear message when the file is
    missing, unreadable or not a JSON object — the CLI turns that into a
    fail-fast non-zero exit instead of a traceback (or, worse, a silent
    pass of the regression gate).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(report, dict):
        raise BaselineError(
            f"baseline {path!r} must be a JSON object, got {type(report).__name__}"
        )
    return report


def format_report_table(report: dict[str, Any]) -> str:
    """The report as a GitHub-flavoured markdown table (for step summaries)."""
    lines = [
        f"| scenario | engine | wall [s] | cycles/s | speedup vs {REFERENCE_ENGINE} |",
        "|---|---|---:|---:|---:|",
    ]
    for scenario in report["scenarios"]:
        for engine, row in scenario["engines"].items():
            speedup = row.get("speedup_vs_legacy")
            lines.append(
                f"| {scenario['name']} | {engine} "
                f"| {row['wall_seconds']:.3f} "
                f"| {row['cycles_per_second']:,.0f} "
                f"| {speedup if speedup is not None else '-'} |"
            )
    batched_rows = [
        (scenario["name"], engine, row)
        for scenario in report["scenarios"]
        for engine, row in scenario["engines"].items()
        if row.get("batched_speedup_vs_per_point") is not None
    ]
    if batched_rows:
        lines.append("| scenario | engine | per-point [s] | batched [s] | batched speedup |")
        lines.append("|---|---|---:|---:|---:|")
        for name, engine, row in batched_rows:
            lines.append(
                f"| {name} | {engine} "
                f"| {row['per_point_wall_seconds']:.3f} "
                f"| {row['batched_wall_seconds']:.3f} "
                f"| {row['batched_speedup_vs_per_point']}x |"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Regression gating against the committed baseline
# ---------------------------------------------------------------------------


def make_baseline(
    report: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_speedups: dict[tuple[str, str], float] | None = None,
    min_batched_speedups: dict[tuple[str, str], float] | None = None,
) -> dict[str, Any]:
    """Distil a report into the committed-baseline shape.

    Only the machine-independent speedups are kept: ``speedup_vs_legacy``
    and, for engines with an entry in ``min_batched_speedups``,
    ``batched_speedup_vs_per_point``.  The batched ratio is recorded (and
    therefore gated by :func:`check_report`) **only** where a floor names
    it on purpose: engines whose batched path shares just the topology
    build hover around 1x, and gating a noise-bound ratio would make the
    CI gate fail on machine jitter rather than regressions.
    ``min_speedups`` / ``min_batched_speedups`` map ``(scenario, engine)``
    to hard floors recorded alongside the respective ratio.
    """
    floors = min_speedups or {}
    batched_floors = min_batched_speedups or {}
    scenarios: dict[str, Any] = {}
    for scenario in report["scenarios"]:
        rows = {}
        for engine, row in scenario["engines"].items():
            if engine == REFERENCE_ENGINE:
                continue
            speedup = row.get("speedup_vs_legacy")
            if speedup is None:
                continue
            entry: dict[str, Any] = {"speedup_vs_legacy": speedup}
            floor = floors.get((scenario["name"], engine))
            if floor is not None:
                entry["min_speedup"] = floor
            batched = row.get("batched_speedup_vs_per_point")
            batched_floor = batched_floors.get((scenario["name"], engine))
            if batched is not None and batched_floor is not None:
                entry["batched_speedup_vs_per_point"] = batched
                entry["min_batched_speedup"] = batched_floor
            rows[engine] = entry
        scenarios[scenario["name"]] = rows
    return {
        "schema": BENCH_SCHEMA,
        "source_rev": report.get("rev", "unknown"),
        "quick": bool(report.get("quick")),
        "tolerance": tolerance,
        "scenarios": scenarios,
    }


def check_report(report: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Compare a fresh report against a baseline; return regression messages.

    An empty list means the gate passes.  The two scenario-set mismatches
    are deliberately asymmetric, and both are surfaced rather than
    silently swallowed:

    * scenarios present in the **baseline but missing from the report**
      are regressions (returned here) — a silently dropped scenario must
      not green-light the gate;
    * scenarios present in the **report but absent from the baseline**
      are *not* failures (a fresh scenario cannot regress before a
      baseline records it) but they are not silently ignored either:
      :func:`check_report_warnings` lists them so an ungated scenario is
      always visible in the gate output.

    A baseline recorded in a different mode (``--quick`` vs. full phases)
    fails immediately: speedup ratios differ systematically between the
    modes.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        return [
            f"baseline schema {baseline.get('schema')!r} does not match "
            f"harness schema {BENCH_SCHEMA}"
        ]
    baseline_scenarios = baseline.get("scenarios", {})
    if not isinstance(baseline_scenarios, dict):
        return [
            "baseline 'scenarios' is not an object — was a full BENCH report "
            "committed instead of a --write-baseline file?"
        ]
    if "quick" in baseline and bool(report.get("quick")) != bool(baseline["quick"]):
        mode = "--quick" if baseline["quick"] else "full"
        return [
            f"baseline was recorded in {mode} mode but the report was not; "
            "speedup ratios differ systematically between modes, so compare "
            "like with like (re-run with the matching mode)"
        ]
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    measured = {scenario["name"]: scenario for scenario in report["scenarios"]}
    problems: list[str] = []
    for name, engines in baseline_scenarios.items():
        scenario = measured.get(name)
        if scenario is None:
            problems.append(f"scenario {name!r} is in the baseline but was not run")
            continue
        for engine, expected in engines.items():
            row = scenario["engines"].get(engine)
            speedup = None if row is None else row.get("speedup_vs_legacy")
            if speedup is None:
                problems.append(
                    f"{name}/{engine}: no measured speedup (engine not run?)"
                )
                continue
            reference = float(expected["speedup_vs_legacy"])
            allowed = reference * (1.0 - tolerance)
            if speedup < allowed:
                problems.append(
                    f"{name}/{engine}: speedup {speedup:.2f}x regressed more than "
                    f"{tolerance:.0%} below the baseline {reference:.2f}x "
                    f"(allowed >= {allowed:.2f}x)"
                )
            floor = expected.get("min_speedup")
            if floor is not None and speedup < float(floor):
                problems.append(
                    f"{name}/{engine}: speedup {speedup:.2f}x is below the hard "
                    f"floor of {float(floor):.2f}x"
                )
            batched_reference = expected.get("batched_speedup_vs_per_point")
            if batched_reference is None:
                continue
            batched = row.get("batched_speedup_vs_per_point")
            if batched is None:
                problems.append(
                    f"{name}/{engine}: baseline records a batched-vs-per-point "
                    "speedup but the report measured none"
                )
                continue
            batched_allowed = float(batched_reference) * (1.0 - tolerance)
            if batched < batched_allowed:
                problems.append(
                    f"{name}/{engine}: batched-vs-per-point speedup "
                    f"{batched:.2f}x regressed more than {tolerance:.0%} below "
                    f"the baseline {float(batched_reference):.2f}x "
                    f"(allowed >= {batched_allowed:.2f}x)"
                )
            batched_floor = expected.get("min_batched_speedup")
            if batched_floor is not None and batched < float(batched_floor):
                problems.append(
                    f"{name}/{engine}: batched-vs-per-point speedup "
                    f"{batched:.2f}x is below the hard floor of "
                    f"{float(batched_floor):.2f}x"
                )
    return problems


def check_report_warnings(report: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Non-fatal gate findings: report scenarios the baseline does not gate.

    The counterpart of :func:`check_report`'s missing-scenario failures
    (see its docstring for the documented asymmetry): a scenario that was
    run but has no baseline entry passes the gate, but the gate says so
    explicitly instead of silently ignoring it — the fix is to re-run
    ``repro bench --write-baseline`` and commit the refreshed baseline.
    """
    baseline_scenarios = baseline.get("scenarios", {})
    if not isinstance(baseline_scenarios, dict):
        return []
    return [
        f"scenario {scenario['name']!r} has no baseline entry and is not gated"
        for scenario in report.get("scenarios", [])
        if scenario["name"] not in baseline_scenarios
    ]


def iter_scenarios() -> Iterable[BenchScenario]:
    """All registered scenarios, in run order (read-only view)."""
    return iter(SCENARIOS)
