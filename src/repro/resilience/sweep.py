"""Resilience sweeps: latency / throughput degradation versus failures.

The sweep simulates every (arrangement kind, failure count, sample,
injection rate) candidate on its degraded topology and aggregates
per-arrangement **degradation curves** — and, with several
``injection_rates``, degradation *surfaces* over (failure count x
offered load): mean latency, accepted throughput and delivery ratio,
normalised against the healthy (zero-failure) baseline of the same
arrangement *at the same rate*.  Comparing how gracefully a HexaMesh
degrades versus a grid or a brickwall across the whole load range is a
result the source paper does not report.

Multi-rate grids are the workload the batched runner was built for: all
rates of one (kind, fault set) share a
:meth:`~repro.core.parallel.SweepCandidate.batch_key`, so
``run_resilience_sweep(..., batch=True)`` evaluates them over one shared
``DegradedTopology`` / routing / flat-state build (bit-identical to the
per-point path, just faster — the ``resilience-multirate-hexamesh19``
bench scenario gates the speedup).

Candidates ride the ordinary :class:`~repro.core.parallel.SweepCandidate`
/ :class:`~repro.core.parallel.ParallelSweepRunner` machinery: fault
fields join the candidate identity (and hence the SHA-256 seeds and the
on-disk cache keys) only when present, fault sets are drawn
deterministically per grid point via
:func:`repro.resilience.sampler.sample_survivable_faults`, and every
cycle-loop engine produces bit-identical curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import (
    BatchedSweepRunner,
    InFlightRegistry,
    ParallelSweepRunner,
    ProgressCallback,
    SweepCandidate,
    SweepRecord,
)
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE
from repro.resilience.sampler import derive_fault_seed, sample_survivable_faults
from repro.utils.validation import check_fraction, check_in_choices, check_positive_int

#: How a failure count is split into component failures:
#: ``"link"`` fails only links, ``"router"`` only routers, ``"mixed"``
#: alternates (links get the odd one out).
FAULT_TYPES: tuple[str, ...] = ("link", "router", "mixed")

#: The fault-type label of sweeps whose fault set was given explicitly
#: (``hexamesh faults --fail-links/--fail-routers``) rather than sampled:
#: no failure-count split applies, so it is not a member of
#: :data:`FAULT_TYPES` — but it is a first-class *summary* label.
EXPLICIT_FAULT_TYPE = "explicit"

#: Every fault-type label a :class:`ResilienceSummary` may carry:
#: the sampled :data:`FAULT_TYPES` plus :data:`EXPLICIT_FAULT_TYPE`.
SUMMARY_FAULT_TYPES: tuple[str, ...] = FAULT_TYPES + (EXPLICIT_FAULT_TYPE,)


def split_failure_count(num_failures: int, fault_type: str) -> tuple[int, int]:
    """Split a total failure count into ``(link_faults, router_faults)``."""
    check_positive_int("num_failures", num_failures, minimum=0)
    check_in_choices("fault_type", fault_type, FAULT_TYPES)
    if fault_type == "link":
        return num_failures, 0
    if fault_type == "router":
        return 0, num_failures
    return (num_failures + 1) // 2, num_failures // 2


def normalize_injection_rates(
    injection_rate: float, injection_rates: Sequence[float] | None
) -> tuple[float, ...]:
    """The validated, ascending, de-duplicated rate axis of a sweep.

    ``injection_rates=None`` keeps the single-rate behaviour (the axis is
    ``(injection_rate,)``); otherwise ``injection_rates`` *replaces* the
    scalar knob entirely.
    """
    if injection_rates is None:
        rates: tuple[float, ...] = (injection_rate,)
    else:
        rates = tuple(sorted(set(float(rate) for rate in injection_rates)))
        if not rates:
            raise ValueError("injection_rates must name at least one rate")
    for rate in rates:
        check_fraction("injection_rate", rate)
    return rates


def resilience_grid(
    kinds: Sequence[str],
    num_chiplets: int,
    failure_counts: Iterable[int],
    *,
    samples: int = 1,
    fault_type: str = "link",
    injection_rate: float = 0.1,
    injection_rates: Sequence[float] | None = None,
    traffic: str = "uniform",
    seed: int = 1,
    regularity: str | None = None,
) -> list[SweepCandidate]:
    """Build the resilience candidate grid, fault sets sampled per point.

    For every arrangement kind and every failure count, ``samples``
    independent survivable fault sets are drawn (deterministically — the
    draw seed mixes the kind, chiplet count, failure count and sample
    index into ``seed`` via SHA-256).  The zero-failure baseline is
    emitted exactly once per kind regardless of ``samples``, since every
    healthy draw is identical.

    ``injection_rates`` evaluates each sampled fault arrangement at
    *every* rate (``None`` keeps the single ``injection_rate``).  The
    fault draw depends only on (kind, failure count, sample), never on
    the rate, and the rate loop is innermost: all rates of one fault
    arrangement are adjacent in the returned grid and share a
    :meth:`~repro.core.parallel.SweepCandidate.batch_key`, which is what
    lets the batched runner evaluate them over one topology build.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive_int("samples", samples)
    rates = normalize_injection_rates(injection_rate, injection_rates)
    check_in_choices("fault_type", fault_type, FAULT_TYPES)
    counts = sorted(set(failure_counts))
    if not counts:
        raise ValueError("failure_counts must name at least one failure count")
    candidates: list[SweepCandidate] = []
    for kind in kinds:
        base_graph = make_arrangement(kind, num_chiplets, regularity).graph
        for num_failures in counts:
            effective_samples = 1 if num_failures == 0 else samples
            for sample in range(effective_samples):
                link_faults, router_faults = split_failure_count(num_failures, fault_type)
                faults = sample_survivable_faults(
                    base_graph,
                    num_link_faults=link_faults,
                    num_router_faults=router_faults,
                    seed=derive_fault_seed(
                        seed, "resilience", kind, num_chiplets, num_failures, sample
                    ),
                )
                for rate in rates:
                    candidates.append(
                        SweepCandidate(
                            kind=kind,
                            num_chiplets=num_chiplets,
                            injection_rate=rate,
                            traffic=traffic,
                            regularity=regularity,
                            failed_links=faults.failed_links,
                            failed_routers=faults.failed_routers,
                        )
                    )
    return candidates


@dataclass(frozen=True)
class ResilienceSummary:
    """One point of a degradation surface: a (kind, failures, rate) aggregate.

    ``fault_type`` is one of :data:`SUMMARY_FAULT_TYPES` — the sampled
    :data:`FAULT_TYPES` or :data:`EXPLICIT_FAULT_TYPE` for sweeps whose
    fault set was given explicitly.  The ``*_vs_baseline`` ratios are
    relative to the zero-failure summary of the same arrangement kind *at
    the same injection rate* (``NaN`` when the sweep did not include the
    zero-failure baseline or the baseline statistic is undefined).
    ``throughput_vs_baseline`` compares *aggregate* accepted throughput
    (per-endpoint rate scaled by the surviving endpoint count), so losing
    whole routers counts as lost capacity even though the per-endpoint
    ``accepted_flit_rate`` of the survivors may hold steady.
    """

    kind: str
    num_chiplets: int
    num_failures: int
    injection_rate: float
    fault_type: str
    samples: int
    mean_latency_cycles: float
    p99_latency_cycles: float
    accepted_flit_rate: float
    delivery_ratio: float
    latency_vs_baseline: float
    throughput_vs_baseline: float


@dataclass(frozen=True)
class SaturationPoint:
    """One point of a saturation-rate-vs-faults curve.

    ``saturation_rate`` is the largest swept offered load at which the
    arrangement still *accepts* at least ``threshold`` of what is offered
    (per endpoint); ``NaN`` when even the lowest swept rate saturates.
    """

    kind: str
    num_failures: int
    saturation_rate: float
    threshold: float


@dataclass(frozen=True)
class ResilienceSweepResult:
    """All simulated records of a resilience sweep plus the aggregated surfaces."""

    records: tuple[SweepRecord, ...]
    summaries: tuple[ResilienceSummary, ...]
    fault_type: str
    failure_counts: tuple[int, ...]
    injection_rates: tuple[float, ...] = ()

    def kinds(self) -> list[str]:
        """Arrangement kinds covered, in first-appearance order."""
        seen: list[str] = []
        for summary in self.summaries:
            if summary.kind not in seen:
                seen.append(summary.kind)
        return seen

    def rates(self) -> tuple[float, ...]:
        """Injection rates covered, ascending (derived from the summaries)."""
        if self.injection_rates:
            return self.injection_rates
        return tuple(sorted({s.injection_rate for s in self.summaries}))

    def curve(
        self, kind: str, injection_rate: float | None = None
    ) -> tuple[ResilienceSummary, ...]:
        """One arrangement's degradation curve, by ascending failures.

        Multi-rate sweeps carry one curve per rate, so ``injection_rate``
        selects which one; it may be omitted only when the sweep covered
        a single rate (the pre-surface call shape keeps working).
        """
        points = tuple(s for s in self.summaries if s.kind == kind)
        if not points:
            raise ValueError(f"no resilience summaries for kind {kind!r}")
        rates = tuple(sorted({s.injection_rate for s in points}))
        if injection_rate is None:
            if len(rates) > 1:
                raise ValueError(
                    f"kind {kind!r} was swept at {len(rates)} injection rates "
                    f"{rates}; pass curve(kind, injection_rate=...) to select one"
                )
            return points
        selected = tuple(s for s in points if s.injection_rate == injection_rate)
        if not selected:
            raise ValueError(
                f"kind {kind!r} has no summaries at injection rate "
                f"{injection_rate!r}; swept rates: {rates}"
            )
        return selected

    def surface(self, kind: str) -> tuple[ResilienceSummary, ...]:
        """One arrangement's full (failures x rate) degradation surface."""
        points = tuple(s for s in self.summaries if s.kind == kind)
        if not points:
            raise ValueError(f"no resilience summaries for kind {kind!r}")
        return points

    def saturation_curve(
        self, kind: str, *, threshold: float = 0.95
    ) -> tuple[SaturationPoint, ...]:
        """Saturation rate versus fault count — the surface's derived metric.

        For each failure count, the largest swept rate whose accepted
        per-endpoint throughput is still at least ``threshold`` of the
        offered load.  A fault arrangement that saturates earlier than
        the healthy baseline shows up directly as a dropping curve.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        by_failures: dict[int, list[ResilienceSummary]] = {}
        for summary in self.surface(kind):
            by_failures.setdefault(summary.num_failures, []).append(summary)
        curve: list[SaturationPoint] = []
        for num_failures in sorted(by_failures):
            sustained = [
                s.injection_rate
                for s in by_failures[num_failures]
                if s.injection_rate > 0
                and s.accepted_flit_rate >= threshold * s.injection_rate
            ]
            curve.append(
                SaturationPoint(
                    kind=kind,
                    num_failures=num_failures,
                    saturation_rate=max(sustained) if sustained else math.nan,
                    threshold=threshold,
                )
            )
        return tuple(curve)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else math.nan


def _ratio(value: float, baseline: float) -> float:
    if baseline and not math.isnan(baseline) and not math.isnan(value):
        return value / baseline
    return math.nan


def summarize_records(
    records: Sequence[SweepRecord], *, fault_type: str
) -> tuple[ResilienceSummary, ...]:
    """Aggregate sweep records into (kind, failure count, rate) summaries.

    ``fault_type`` labels the summaries and must be one of
    :data:`SUMMARY_FAULT_TYPES` (a sampled fault type or
    :data:`EXPLICIT_FAULT_TYPE`).  Samples of one fault arrangement are
    averaged within each (kind, failures, rate) cell; the ``*_vs_baseline``
    ratios anchor on the zero-failure cell of the same kind *and rate*.
    """
    check_in_choices("fault_type", fault_type, SUMMARY_FAULT_TYPES)
    grouped: dict[tuple[str, int, float], list[SweepRecord]] = {}
    order: list[tuple[str, int, float]] = []
    for record in records:
        key = (
            record.candidate.kind,
            record.candidate.fault_set.num_faults,
            record.candidate.injection_rate,
        )
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(record)
    # Stable order: kinds in first-appearance order, failures ascending,
    # rates ascending within one failure count (surface row order).
    kinds_in_order: list[str] = []
    for kind, _, _ in order:
        if kind not in kinds_in_order:
            kinds_in_order.append(kind)
    ordered_keys = sorted(
        grouped, key=lambda key: (kinds_in_order.index(key[0]), key[1], key[2])
    )
    # The throughput ratio compares *aggregate* accepted throughput
    # (per-endpoint rate x surviving endpoints): router faults remove
    # endpoints, so a per-endpoint ratio would hide the lost capacity
    # and could report >1.0 retention while total throughput fell.
    baselines: dict[tuple[str, float], tuple[float, float]] = {}
    for kind, failures, rate in ordered_keys:
        if failures == 0:
            group = grouped[(kind, 0, rate)]
            baselines[(kind, rate)] = (
                _mean([r.result.packet_latency.mean for r in group]),
                _mean(
                    [r.result.accepted_flit_rate * r.result.num_endpoints for r in group]
                ),
            )
    summaries: list[ResilienceSummary] = []
    for kind, failures, rate in ordered_keys:
        group = grouped[(kind, failures, rate)]
        mean_latency = _mean([r.result.packet_latency.mean for r in group])
        accepted = _mean([r.result.accepted_flit_rate for r in group])
        aggregate_accepted = _mean(
            [r.result.accepted_flit_rate * r.result.num_endpoints for r in group]
        )
        baseline_latency, baseline_accepted = baselines.get(
            (kind, rate), (math.nan, math.nan)
        )
        summaries.append(
            ResilienceSummary(
                kind=kind,
                num_chiplets=group[0].candidate.num_chiplets,
                num_failures=failures,
                injection_rate=rate,
                fault_type=fault_type,
                samples=len(group),
                mean_latency_cycles=mean_latency,
                p99_latency_cycles=_mean(
                    [r.result.packet_latency.p99 for r in group]
                ),
                accepted_flit_rate=accepted,
                delivery_ratio=_mean(
                    [r.result.measured_delivery_ratio for r in group]
                ),
                latency_vs_baseline=_ratio(mean_latency, baseline_latency),
                throughput_vs_baseline=_ratio(aggregate_accepted, baseline_accepted),
            )
        )
    return tuple(summaries)


def run_resilience_sweep(
    kinds: Sequence[str],
    num_chiplets: int,
    failure_counts: Iterable[int] = (0, 1, 2, 4),
    *,
    samples: int = 2,
    fault_type: str = "link",
    config: SimulationConfig | None = None,
    injection_rate: float = 0.1,
    injection_rates: Sequence[float] | None = None,
    traffic: str = "uniform",
    jobs: int = 1,
    cache_dir: str | None = None,
    engine: str = DEFAULT_ENGINE,
    regularity: str | None = None,
    batch: bool = False,
    progress: ProgressCallback | None = None,
    in_flight: InFlightRegistry | None = None,
) -> ResilienceSweepResult:
    """Simulate the degradation curves / surfaces of several arrangements.

    Fault sampling is seeded from ``config.seed``, so re-running the
    sweep (any engine, any ``jobs``) reproduces identical curves; with a
    ``cache_dir`` only new (candidate, config) points are simulated.
    Include ``0`` in ``failure_counts`` to anchor the ``*_vs_baseline``
    ratios of the summaries.

    ``injection_rates`` evaluates every sampled fault arrangement at
    every rate, turning the per-kind curves into degradation *surfaces*
    (``None`` keeps the single ``injection_rate``).  ``batch=True``
    routes the grid through
    :class:`~repro.core.parallel.BatchedSweepRunner`: all rates of one
    fault arrangement share its
    :class:`~repro.noc.faults.DegradedTopology`, routing tables and
    flat-state build, which is where multi-rate sweeps recover the
    batching win.  Results are bit-identical either way — and across
    engines and ``jobs`` — because every candidate keeps its own
    SHA-256-derived seed.
    """
    if config is None:
        config = SimulationConfig()
    counts = tuple(sorted(set(failure_counts)))
    rates = normalize_injection_rates(injection_rate, injection_rates)
    candidates = resilience_grid(
        kinds,
        num_chiplets,
        counts,
        samples=samples,
        fault_type=fault_type,
        injection_rates=rates,
        traffic=traffic,
        seed=config.seed,
        regularity=regularity,
    )
    runner_cls = BatchedSweepRunner if batch else ParallelSweepRunner
    runner = runner_cls(
        config, jobs=jobs, cache_dir=cache_dir, engine=engine, in_flight=in_flight
    )
    records = tuple(runner.run(candidates, progress=progress))
    return ResilienceSweepResult(
        records=records,
        summaries=summarize_records(records, fault_type=fault_type),
        fault_type=fault_type,
        failure_counts=counts,
        injection_rates=rates,
    )
