"""Resilience sweeps: latency / throughput degradation versus failures.

The sweep simulates every (arrangement kind, failure count, sample)
candidate on its degraded topology and aggregates per-arrangement
**degradation curves**: mean latency, accepted throughput and delivery
ratio as a function of the number of failed components, normalised
against the healthy (zero-failure) baseline of the same arrangement.
Comparing those curves across arrangements — how gracefully does a
HexaMesh degrade versus a grid or a brickwall? — is a result the source
paper does not report.

Candidates ride the ordinary :class:`~repro.core.parallel.SweepCandidate`
/ :class:`~repro.core.parallel.ParallelSweepRunner` machinery: fault
fields join the candidate identity (and hence the SHA-256 seeds and the
on-disk cache keys) only when present, fault sets are drawn
deterministically per grid point via
:func:`repro.resilience.sampler.sample_survivable_faults`, and every
cycle-loop engine produces bit-identical curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import (
    BatchedSweepRunner,
    ParallelSweepRunner,
    ProgressCallback,
    SweepCandidate,
    SweepRecord,
)
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE
from repro.resilience.sampler import derive_fault_seed, sample_survivable_faults
from repro.utils.validation import check_fraction, check_in_choices, check_positive_int

#: How a failure count is split into component failures:
#: ``"link"`` fails only links, ``"router"`` only routers, ``"mixed"``
#: alternates (links get the odd one out).
FAULT_TYPES: tuple[str, ...] = ("link", "router", "mixed")


def split_failure_count(num_failures: int, fault_type: str) -> tuple[int, int]:
    """Split a total failure count into ``(link_faults, router_faults)``."""
    check_positive_int("num_failures", num_failures, minimum=0)
    check_in_choices("fault_type", fault_type, FAULT_TYPES)
    if fault_type == "link":
        return num_failures, 0
    if fault_type == "router":
        return 0, num_failures
    return (num_failures + 1) // 2, num_failures // 2


def resilience_grid(
    kinds: Sequence[str],
    num_chiplets: int,
    failure_counts: Iterable[int],
    *,
    samples: int = 1,
    fault_type: str = "link",
    injection_rate: float = 0.1,
    traffic: str = "uniform",
    seed: int = 1,
    regularity: str | None = None,
) -> list[SweepCandidate]:
    """Build the resilience candidate grid, fault sets sampled per point.

    For every arrangement kind and every failure count, ``samples``
    independent survivable fault sets are drawn (deterministically — the
    draw seed mixes the kind, chiplet count, failure count and sample
    index into ``seed`` via SHA-256).  The zero-failure baseline is
    emitted exactly once per kind regardless of ``samples``, since every
    healthy draw is identical.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive_int("samples", samples)
    check_fraction("injection_rate", injection_rate)
    check_in_choices("fault_type", fault_type, FAULT_TYPES)
    counts = sorted(set(failure_counts))
    if not counts:
        raise ValueError("failure_counts must name at least one failure count")
    candidates: list[SweepCandidate] = []
    for kind in kinds:
        base_graph = make_arrangement(kind, num_chiplets, regularity).graph
        for num_failures in counts:
            effective_samples = 1 if num_failures == 0 else samples
            for sample in range(effective_samples):
                link_faults, router_faults = split_failure_count(num_failures, fault_type)
                faults = sample_survivable_faults(
                    base_graph,
                    num_link_faults=link_faults,
                    num_router_faults=router_faults,
                    seed=derive_fault_seed(
                        seed, "resilience", kind, num_chiplets, num_failures, sample
                    ),
                )
                candidates.append(
                    SweepCandidate(
                        kind=kind,
                        num_chiplets=num_chiplets,
                        injection_rate=injection_rate,
                        traffic=traffic,
                        regularity=regularity,
                        failed_links=faults.failed_links,
                        failed_routers=faults.failed_routers,
                    )
                )
    return candidates


@dataclass(frozen=True)
class ResilienceSummary:
    """One point of a degradation curve: a (kind, failure count) aggregate.

    The ``*_vs_baseline`` ratios are relative to the zero-failure summary
    of the same arrangement kind (``NaN`` when the sweep did not include
    the zero-failure baseline or the baseline statistic is undefined).
    ``throughput_vs_baseline`` compares *aggregate* accepted throughput
    (per-endpoint rate scaled by the surviving endpoint count), so losing
    whole routers counts as lost capacity even though the per-endpoint
    ``accepted_flit_rate`` of the survivors may hold steady.
    """

    kind: str
    num_chiplets: int
    num_failures: int
    fault_type: str
    samples: int
    mean_latency_cycles: float
    p99_latency_cycles: float
    accepted_flit_rate: float
    delivery_ratio: float
    latency_vs_baseline: float
    throughput_vs_baseline: float


@dataclass(frozen=True)
class ResilienceSweepResult:
    """All simulated records of a resilience sweep plus the aggregated curves."""

    records: tuple[SweepRecord, ...]
    summaries: tuple[ResilienceSummary, ...]
    fault_type: str
    failure_counts: tuple[int, ...]

    def kinds(self) -> list[str]:
        """Arrangement kinds covered, in first-appearance order."""
        seen: list[str] = []
        for summary in self.summaries:
            if summary.kind not in seen:
                seen.append(summary.kind)
        return seen

    def curve(self, kind: str) -> tuple[ResilienceSummary, ...]:
        """The degradation curve of one arrangement, by ascending failures."""
        points = tuple(s for s in self.summaries if s.kind == kind)
        if not points:
            raise ValueError(f"no resilience summaries for kind {kind!r}")
        return points


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else math.nan


def _ratio(value: float, baseline: float) -> float:
    if baseline and not math.isnan(baseline) and not math.isnan(value):
        return value / baseline
    return math.nan


def summarize_records(
    records: Sequence[SweepRecord], *, fault_type: str
) -> tuple[ResilienceSummary, ...]:
    """Aggregate sweep records into per-(kind, failure count) summaries."""
    grouped: dict[tuple[str, int], list[SweepRecord]] = {}
    order: list[tuple[str, int]] = []
    for record in records:
        key = (record.candidate.kind, record.candidate.fault_set.num_faults)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(record)
    # Stable order: kinds in first-appearance order, failures ascending.
    kinds_in_order: list[str] = []
    for kind, _ in order:
        if kind not in kinds_in_order:
            kinds_in_order.append(kind)
    ordered_keys = sorted(
        grouped, key=lambda key: (kinds_in_order.index(key[0]), key[1])
    )
    # The throughput ratio compares *aggregate* accepted throughput
    # (per-endpoint rate x surviving endpoints): router faults remove
    # endpoints, so a per-endpoint ratio would hide the lost capacity
    # and could report >1.0 retention while total throughput fell.
    baselines: dict[str, tuple[float, float]] = {}
    for kind, failures in ordered_keys:
        if failures == 0:
            group = grouped[(kind, 0)]
            baselines[kind] = (
                _mean([r.result.packet_latency.mean for r in group]),
                _mean(
                    [r.result.accepted_flit_rate * r.result.num_endpoints for r in group]
                ),
            )
    summaries: list[ResilienceSummary] = []
    for kind, failures in ordered_keys:
        group = grouped[(kind, failures)]
        mean_latency = _mean([r.result.packet_latency.mean for r in group])
        accepted = _mean([r.result.accepted_flit_rate for r in group])
        aggregate_accepted = _mean(
            [r.result.accepted_flit_rate * r.result.num_endpoints for r in group]
        )
        baseline_latency, baseline_accepted = baselines.get(kind, (math.nan, math.nan))
        summaries.append(
            ResilienceSummary(
                kind=kind,
                num_chiplets=group[0].candidate.num_chiplets,
                num_failures=failures,
                fault_type=fault_type,
                samples=len(group),
                mean_latency_cycles=mean_latency,
                p99_latency_cycles=_mean(
                    [r.result.packet_latency.p99 for r in group]
                ),
                accepted_flit_rate=accepted,
                delivery_ratio=_mean(
                    [r.result.measured_delivery_ratio for r in group]
                ),
                latency_vs_baseline=_ratio(mean_latency, baseline_latency),
                throughput_vs_baseline=_ratio(aggregate_accepted, baseline_accepted),
            )
        )
    return tuple(summaries)


def run_resilience_sweep(
    kinds: Sequence[str],
    num_chiplets: int,
    failure_counts: Iterable[int] = (0, 1, 2, 4),
    *,
    samples: int = 2,
    fault_type: str = "link",
    config: SimulationConfig | None = None,
    injection_rate: float = 0.1,
    traffic: str = "uniform",
    jobs: int = 1,
    cache_dir: str | None = None,
    engine: str = DEFAULT_ENGINE,
    regularity: str | None = None,
    batch: bool = False,
    progress: ProgressCallback | None = None,
) -> ResilienceSweepResult:
    """Simulate the degradation curves of several arrangements.

    Fault sampling is seeded from ``config.seed``, so re-running the
    sweep (any engine, any ``jobs``) reproduces identical curves; with a
    ``cache_dir`` only new (candidate, config) points are simulated.
    Include ``0`` in ``failure_counts`` to anchor the ``*_vs_baseline``
    ratios of the summaries.

    ``batch=True`` routes the grid through
    :class:`~repro.core.parallel.BatchedSweepRunner`: every candidate
    sharing one fault arrangement shares its
    :class:`~repro.noc.faults.DegradedTopology`, routing tables and
    flat-state build — most valuable when sweeping several injection
    rates per arrangement.  Curves are bit-identical either way.
    """
    if config is None:
        config = SimulationConfig()
    counts = tuple(sorted(set(failure_counts)))
    candidates = resilience_grid(
        kinds,
        num_chiplets,
        counts,
        samples=samples,
        fault_type=fault_type,
        injection_rate=injection_rate,
        traffic=traffic,
        seed=config.seed,
        regularity=regularity,
    )
    runner_cls = BatchedSweepRunner if batch else ParallelSweepRunner
    runner = runner_cls(
        config, jobs=jobs, cache_dir=cache_dir, engine=engine
    )
    records = tuple(runner.run(candidates, progress=progress))
    return ResilienceSweepResult(
        records=records,
        summaries=summarize_records(records, fault_type=fault_type),
        fault_type=fault_type,
        failure_counts=counts,
    )
