"""Resilience analysis: yield-coupled fault sampling and degradation sweeps.

The package answers the question the arrangement papers leave open: how
gracefully does each chiplet arrangement degrade when links and routers
fail?  It builds on :mod:`repro.noc.faults` (fault sets and degraded
topologies) and couples the sampling probabilities to the manufacturing
yield models of :mod:`repro.cost.yield_model`:

* :mod:`repro.resilience.sampler` — deterministic (SHA-256 seeded)
  samplers for survivable fault sets, either with exact failure counts
  (degradation curves) or with per-component probabilities derived from
  die yield, test coverage and bond yield,
* :mod:`repro.resilience.sweep` — the resilience sweep proper: simulate
  every (arrangement, failure count, sample, injection rate) candidate
  through :class:`~repro.core.parallel.ParallelSweepRunner` (or, batched
  across the rates of one fault arrangement,
  :class:`~repro.core.parallel.BatchedSweepRunner`) and aggregate
  latency / throughput / delivery degradation curves — or, with several
  rates, full degradation surfaces — per arrangement.
"""

from repro.resilience.sampler import (
    FaultProbabilities,
    derive_fault_seed,
    fault_probabilities_from_yield,
    sample_fault_set,
    sample_survivable_faults,
)
from repro.resilience.sweep import (
    EXPLICIT_FAULT_TYPE,
    FAULT_TYPES,
    SUMMARY_FAULT_TYPES,
    ResilienceSummary,
    ResilienceSweepResult,
    SaturationPoint,
    normalize_injection_rates,
    resilience_grid,
    run_resilience_sweep,
    summarize_records,
)

__all__ = [
    "EXPLICIT_FAULT_TYPE",
    "FAULT_TYPES",
    "SUMMARY_FAULT_TYPES",
    "FaultProbabilities",
    "ResilienceSummary",
    "ResilienceSweepResult",
    "SaturationPoint",
    "derive_fault_seed",
    "fault_probabilities_from_yield",
    "normalize_injection_rates",
    "resilience_grid",
    "run_resilience_sweep",
    "sample_fault_set",
    "sample_survivable_faults",
    "summarize_records",
]
