"""Resilience analysis: yield-coupled fault sampling and degradation sweeps.

The package answers the question the arrangement papers leave open: how
gracefully does each chiplet arrangement degrade when links and routers
fail?  It builds on :mod:`repro.noc.faults` (fault sets and degraded
topologies) and couples the sampling probabilities to the manufacturing
yield models of :mod:`repro.cost.yield_model`:

* :mod:`repro.resilience.sampler` — deterministic (SHA-256 seeded)
  samplers for survivable fault sets, either with exact failure counts
  (degradation curves) or with per-component probabilities derived from
  die yield, test coverage and bond yield,
* :mod:`repro.resilience.sweep` — the resilience sweep proper: simulate
  every (arrangement, failure count, sample) candidate through
  :class:`~repro.core.parallel.ParallelSweepRunner` and aggregate
  latency / throughput / delivery degradation curves per arrangement.
"""

from repro.resilience.sampler import (
    FaultProbabilities,
    derive_fault_seed,
    fault_probabilities_from_yield,
    sample_fault_set,
    sample_survivable_faults,
)
from repro.resilience.sweep import (
    FAULT_TYPES,
    ResilienceSummary,
    ResilienceSweepResult,
    resilience_grid,
    run_resilience_sweep,
)

__all__ = [
    "FAULT_TYPES",
    "FaultProbabilities",
    "ResilienceSummary",
    "ResilienceSweepResult",
    "derive_fault_seed",
    "fault_probabilities_from_yield",
    "resilience_grid",
    "run_resilience_sweep",
    "sample_fault_set",
    "sample_survivable_faults",
]
