"""Deterministic samplers for survivable fault sets.

Two sampling modes cover the two questions a resilience study asks:

* :func:`sample_survivable_faults` draws a fault set with **exact**
  failure counts — the x-axis of a degradation curve ("how bad is the
  network with exactly k failed links?"),
* :func:`sample_fault_set` draws per-component Bernoulli failures from a
  :class:`FaultProbabilities`, which
  :func:`fault_probabilities_from_yield` derives from the manufacturing
  yield models of :mod:`repro.cost.yield_model` (test escapes become
  failed routers, failed bonds become failed links).

Both samplers are rejection samplers over survivable fault sets (see
:meth:`FaultSet.apply <repro.noc.faults.FaultSet.apply>`), and both are
seeded through the same SHA-256 derivation scheme as the parallel sweep
engine (:func:`repro.core.parallel.derive_candidate_seed`): the drawn
fault set depends only on the seed and the sampling parameters, never on
``PYTHONHASHSEED``, process or machine.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.cost.yield_model import known_good_die_yield, negative_binomial_yield
from repro.graphs.model import ChipGraph
from repro.noc.faults import FaultedTopologyError, FaultSet
from repro.utils.mathutils import mix_seed
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class FaultProbabilities:
    """Per-component failure probabilities of one package.

    Attributes
    ----------
    link_failure_probability:
        Probability that one inter-chiplet link is dead (its D2D bond
        array failed or degraded past the point of use).
    router_failure_probability:
        Probability that one chiplet (and with it its router and its
        endpoints) is dead — a defective die that escaped wafer-level
        test into the assembled package.
    """

    link_failure_probability: float
    router_failure_probability: float

    def __post_init__(self) -> None:
        check_fraction("link_failure_probability", self.link_failure_probability)
        check_fraction("router_failure_probability", self.router_failure_probability)

    def expected_faults(self, graph: ChipGraph) -> float:
        """Expected number of failed components on one topology."""
        return (
            graph.num_edges * self.link_failure_probability
            + graph.num_nodes * self.router_failure_probability
        )


def fault_probabilities_from_yield(
    chiplet_area_mm2: float,
    *,
    defect_density_per_cm2: float = 0.1,
    clustering_alpha: float = 3.0,
    test_coverage: float = 0.98,
    per_bond_yield: float = 0.99,
) -> FaultProbabilities:
    """Derive fault probabilities from the manufacturing yield models.

    A chiplet in the assembled package is dead when a defective die
    escaped wafer-level test: the negative-binomial die yield at
    ``chiplet_area_mm2`` feeds the known-good-die model, and the
    complement of the KGD probability is the router failure probability.
    A link is dead when its D2D bond failed, so the link failure
    probability is the complement of the per-bond yield — the same
    parameter :func:`repro.cost.yield_model.assembly_yield` raises to the
    chiplet count.  Smaller chiplets therefore fail less often (the
    paper's yield argument), while adding links adds failure sites.
    """
    die_yield = negative_binomial_yield(
        chiplet_area_mm2, defect_density_per_cm2, clustering_alpha
    )
    kgd = known_good_die_yield(die_yield, test_coverage)
    check_fraction("per_bond_yield", per_bond_yield)
    return FaultProbabilities(
        link_failure_probability=1.0 - per_bond_yield,
        router_failure_probability=1.0 - kgd,
    )


def derive_fault_seed(base_seed: int, *identity: object) -> int:
    """Deterministic seed for one fault draw.

    Mirrors :func:`repro.core.parallel.derive_candidate_seed`: a SHA-256
    digest of the JSON-encoded identity is mixed into the base seed, so
    every (arrangement, failure count, sample index) point of a
    resilience sweep draws an independent, reproducible fault set.
    """
    key = json.dumps(list(identity), sort_keys=True, default=str).encode("utf-8")
    return mix_seed(base_seed, key)


def _attempt_rng(seed: int, attempt: int) -> random.Random:
    return random.Random(derive_fault_seed(seed, "attempt", attempt))


def _is_survivable(graph: ChipGraph, faults: FaultSet) -> bool:
    try:
        faults.apply(graph)
    except FaultedTopologyError:
        return False
    return True


def sample_survivable_faults(
    graph: ChipGraph,
    *,
    num_link_faults: int = 0,
    num_router_faults: int = 0,
    seed: int = 1,
    max_attempts: int = 200,
) -> FaultSet:
    """Draw a survivable fault set with exact failure counts.

    Links and routers are drawn uniformly (without replacement) from the
    topology; draws that would disconnect the surviving network are
    rejected and redrawn with a fresh derived seed.  Raises
    :class:`FaultedTopologyError` when no survivable set was found within
    ``max_attempts`` (e.g. asking a path graph to lose a link).
    """
    check_positive_int("num_link_faults", num_link_faults, minimum=0)
    check_positive_int("num_router_faults", num_router_faults, minimum=0)
    check_positive_int("max_attempts", max_attempts)
    if num_link_faults > graph.num_edges:
        raise ValueError(
            f"cannot fail {num_link_faults} links: the topology has only "
            f"{graph.num_edges}"
        )
    if num_router_faults > graph.num_nodes:
        raise ValueError(
            f"cannot fail {num_router_faults} routers: the topology has only "
            f"{graph.num_nodes}"
        )
    if num_link_faults == 0 and num_router_faults == 0:
        return FaultSet()
    edges = graph.edges()
    nodes = sorted(graph.nodes())
    for attempt in range(max_attempts):
        rng = _attempt_rng(seed, attempt)
        candidate = FaultSet(
            failed_links=tuple(rng.sample(edges, num_link_faults)),
            failed_routers=tuple(rng.sample(nodes, num_router_faults)),
        )
        if _is_survivable(graph, candidate):
            return candidate
    raise FaultedTopologyError(
        f"no survivable fault set with {num_link_faults} failed link(s) and "
        f"{num_router_faults} failed router(s) found in {max_attempts} attempts; "
        "the topology cannot absorb that many failures"
    )


def sample_fault_set(
    graph: ChipGraph,
    probabilities: FaultProbabilities,
    *,
    seed: int = 1,
    max_attempts: int = 200,
) -> FaultSet:
    """Draw a survivable fault set from per-component failure probabilities.

    Every link and every router fails independently with its configured
    probability (one Bernoulli draw per component, in deterministic
    component order); non-survivable draws are rejected and redrawn.  The
    returned set may well be empty — at realistic yields most packages
    are healthy.
    """
    check_positive_int("max_attempts", max_attempts)
    edges = graph.edges()
    nodes = sorted(graph.nodes())
    for attempt in range(max_attempts):
        rng = _attempt_rng(seed, attempt)
        failed_links = tuple(
            edge for edge in edges if rng.random() < probabilities.link_failure_probability
        )
        failed_routers = tuple(
            node for node in nodes if rng.random() < probabilities.router_failure_probability
        )
        candidate = FaultSet(failed_links=failed_links, failed_routers=failed_routers)
        if _is_survivable(graph, candidate):
            return candidate
    raise FaultedTopologyError(
        f"no survivable yield-sampled fault set found in {max_attempts} attempts; "
        "the failure probabilities are too high for this topology"
    )
