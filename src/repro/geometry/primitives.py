"""Axis-aligned geometric primitives.

Everything in the library lives in a 2D plane whose unit is millimetres
(the natural unit of the paper: chiplet areas are quoted in mm² and bump
pitches in mm).  Only axis-aligned rectangles are needed because the paper
restricts chiplets to rectangles (Section III-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

#: Geometric tolerance (in mm) below which coordinates are considered equal.
GEOMETRY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Point:
    """A point in the package plane, in millimetres."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle described by its lower-left corner and size.

    Parameters
    ----------
    x, y:
        Coordinates of the lower-left corner in millimetres.
    width, height:
        Extent of the rectangle in millimetres; both must be positive.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)

    # -- derived coordinates ------------------------------------------------

    @property
    def x_max(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y_max(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def area(self) -> float:
        """Area of the rectangle in mm²."""
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        """Ratio of the longer side to the shorter side (always >= 1)."""
        longer = max(self.width, self.height)
        shorter = min(self.width, self.height)
        return longer / shorter

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Create a rectangle from its centre point and size."""
        return cls(center.x - width / 2.0, center.y - height / 2.0, width, height)

    @classmethod
    def from_corners(cls, corner_a: Point, corner_b: Point) -> "Rect":
        """Create a rectangle spanning two opposite corners."""
        x_min = min(corner_a.x, corner_b.x)
        y_min = min(corner_a.y, corner_b.y)
        width = abs(corner_a.x - corner_b.x)
        height = abs(corner_a.y - corner_b.y)
        return cls(x_min, y_min, width, height)

    # -- geometric queries ----------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy of the rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def contains_point(self, point: Point, *, tolerance: float = GEOMETRY_TOLERANCE) -> bool:
        """Return ``True`` if ``point`` lies inside or on the boundary."""
        return (
            self.x - tolerance <= point.x <= self.x_max + tolerance
            and self.y - tolerance <= point.y <= self.y_max + tolerance
        )

    def contains_rect(self, other: "Rect", *, tolerance: float = GEOMETRY_TOLERANCE) -> bool:
        """Return ``True`` if ``other`` lies entirely inside this rectangle."""
        return (
            other.x >= self.x - tolerance
            and other.y >= self.y - tolerance
            and other.x_max <= self.x_max + tolerance
            and other.y_max <= self.y_max + tolerance
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection of the two rectangles (0 if disjoint)."""
        overlap_w = min(self.x_max, other.x_max) - max(self.x, other.x)
        overlap_h = min(self.y_max, other.y_max) - max(self.y, other.y)
        if overlap_w <= 0.0 or overlap_h <= 0.0:
            return 0.0
        return overlap_w * overlap_h

    def overlaps(self, other: "Rect", *, tolerance: float = GEOMETRY_TOLERANCE) -> bool:
        """Return ``True`` if the interiors of the rectangles intersect.

        Touching edges (zero-area contact) does not count as an overlap —
        adjacent chiplets share an edge but never overlap.
        """
        overlap_w = min(self.x_max, other.x_max) - max(self.x, other.x)
        overlap_h = min(self.y_max, other.y_max) - max(self.y, other.y)
        return overlap_w > tolerance and overlap_h > tolerance

    def union_bounds(self, other: "Rect") -> "Rect":
        """The smallest axis-aligned rectangle containing both rectangles."""
        x_min = min(self.x, other.x)
        y_min = min(self.y, other.y)
        x_max = max(self.x_max, other.x_max)
        y_max = max(self.y_max, other.y_max)
        return Rect(x_min, y_min, x_max - x_min, y_max - y_min)

    def distance_to_edge(self, point: Point) -> float:
        """Shortest distance from ``point`` (inside the rectangle) to its boundary.

        This is the quantity the paper calls the bump-to-edge distance: the
        D2D link attached to a bump has to reach the chiplet edge, so the
        relevant measure is the distance to the *nearest* edge.
        """
        if not self.contains_point(point):
            raise ValueError(f"point {point} lies outside rectangle {self}")
        return min(
            point.x - self.x,
            self.x_max - point.x,
            point.y - self.y,
            self.y_max - point.y,
        )

    def corner_points(self) -> tuple[Point, Point, Point, Point]:
        """The four corners in counter-clockwise order starting at lower-left."""
        return (
            Point(self.x, self.y),
            Point(self.x_max, self.y),
            Point(self.x_max, self.y_max),
            Point(self.x, self.y_max),
        )
