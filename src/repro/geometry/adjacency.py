"""Shared-edge adjacency between placed chiplets.

Section III-C of the paper defines connectivity strictly geometrically:
*"only chiplets sharing a common edge can be connected; we do not allow
links between chiplets that only share a common corner."*  This module
turns a :class:`~repro.geometry.placement.ChipletPlacement` into the edge
list of the corresponding planar graph by measuring the length of the
boundary segment two chiplets share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.placement import ChipletPlacement
from repro.geometry.primitives import GEOMETRY_TOLERANCE, Rect
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class AdjacencyPolicy:
    """Controls when two chiplets count as adjacent.

    Parameters
    ----------
    min_shared_edge:
        Minimum length (mm) of the shared boundary segment for the chiplets
        to be considered adjacent.  The default of ``0`` (plus the geometric
        tolerance) excludes pure corner contact, exactly as the paper
        requires, while accepting arbitrarily short shared edges such as the
        half-chiplet-width overlaps of the brickwall.
    tolerance:
        Geometric tolerance used for the floating-point comparisons.
    """

    min_shared_edge: float = 0.0
    tolerance: float = GEOMETRY_TOLERANCE

    def __post_init__(self) -> None:
        check_non_negative("min_shared_edge", self.min_shared_edge)
        check_non_negative("tolerance", self.tolerance)


def shared_edge_length(
    first: Rect, second: Rect, *, tolerance: float = GEOMETRY_TOLERANCE
) -> float:
    """Length of the boundary segment shared by two non-overlapping rectangles.

    Returns ``0.0`` when the rectangles are not in edge contact.  Corner
    contact (a single shared point) also returns ``0.0``.
    """
    # Vertical contact: the right edge of one touches the left edge of the other.
    horizontal_gap_left = abs(first.x_max - second.x)
    horizontal_gap_right = abs(second.x_max - first.x)
    vertical_overlap = min(first.y_max, second.y_max) - max(first.y, second.y)
    if (
        horizontal_gap_left <= tolerance or horizontal_gap_right <= tolerance
    ) and vertical_overlap > tolerance:
        return vertical_overlap

    # Horizontal contact: the top edge of one touches the bottom edge of the other.
    vertical_gap_bottom = abs(first.y_max - second.y)
    vertical_gap_top = abs(second.y_max - first.y)
    horizontal_overlap = min(first.x_max, second.x_max) - max(first.x, second.x)
    if (
        vertical_gap_bottom <= tolerance or vertical_gap_top <= tolerance
    ) and horizontal_overlap > tolerance:
        return horizontal_overlap

    return 0.0


def shared_edges(
    placement: ChipletPlacement, policy: AdjacencyPolicy | None = None
) -> list[tuple[int, int, float]]:
    """Extract all adjacency relations of a placement.

    Returns a list of ``(chiplet_id_a, chiplet_id_b, shared_length)`` tuples
    with ``chiplet_id_a < chiplet_id_b``, sorted lexicographically.  The
    complexity is quadratic in the number of chiplets, which is perfectly
    adequate for the paper's scale (hundreds of chiplets).
    """
    if policy is None:
        policy = AdjacencyPolicy()
    edges: list[tuple[int, int, float]] = []
    chiplets = placement.chiplets
    for i, first in enumerate(chiplets):
        for second in chiplets[i + 1 :]:
            length = shared_edge_length(
                first.rect, second.rect, tolerance=policy.tolerance
            )
            if length > max(policy.min_shared_edge, policy.tolerance):
                low, high = sorted((first.chiplet_id, second.chiplet_id))
                edges.append((low, high, length))
    edges.sort(key=lambda edge: (edge[0], edge[1]))
    return edges
