"""Bump-sector partition of a chiplet (Figure 5 of the paper).

The area of a chiplet is divided into *sectors*.  Each sector holds either
the C4 bumps / micro-bumps of the power supply or the bumps of exactly one
D2D link.  The paper defines two layouts:

* the **grid layout** (Figure 5a): a square power sector in the centre of a
  square chiplet, surrounded by four trapezoidal link sectors (north, east,
  south, west);
* the **brickwall / HexaMesh layout** (Figure 5b): a rectangular power
  sector in the centre band of a rectangular chiplet, flanked by west/east
  link sectors, with the top and bottom bands split into north-west /
  north-east and south-west / south-east link sectors.  All six link
  sectors are rectangles of identical area.

The construction functions below take the already-solved chiplet dimensions
(see :mod:`repro.linkmodel.shape`) and return a :class:`SectorLayout` whose
sector areas and bump-to-edge distances reproduce the closed-form values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry.primitives import GEOMETRY_TOLERANCE, Point, Rect
from repro.utils.validation import check_positive


class SectorRole(enum.Enum):
    """What the bumps inside a sector are used for."""

    POWER = "power"
    LINK = "link"


@dataclass(frozen=True)
class BumpSector:
    """A convex polygonal region of the chiplet holding bumps of one purpose.

    Parameters
    ----------
    role:
        Whether the sector carries power bumps or the bumps of one D2D link.
    vertices:
        Corners of the convex polygon in counter-clockwise order, in chiplet
        coordinates (the chiplet's lower-left corner is the origin).
    link_direction:
        For link sectors, a human-readable direction label (``"north"``,
        ``"south_west"``, ...).  ``None`` for the power sector.
    """

    role: SectorRole
    vertices: tuple[Point, ...]
    link_direction: str | None = None

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a sector needs at least three vertices")
        if self.role is SectorRole.LINK and not self.link_direction:
            raise ValueError("link sectors must carry a link_direction label")
        if self.role is SectorRole.POWER and self.link_direction is not None:
            raise ValueError("the power sector must not carry a link_direction")

    @property
    def area(self) -> float:
        """Polygon area via the shoelace formula (mm²)."""
        total = 0.0
        points = self.vertices
        for index, current in enumerate(points):
            following = points[(index + 1) % len(points)]
            total += current.x * following.y - following.x * current.y
        return abs(total) / 2.0

    def contains_point(self, point: Point, *, tolerance: float = GEOMETRY_TOLERANCE) -> bool:
        """Point-in-convex-polygon test (boundary counts as inside).

        The sector polygons are convex by construction, so it suffices to
        check that the point is on a consistent side of every edge.
        """
        sign = 0
        points = self.vertices
        for index, current in enumerate(points):
            following = points[(index + 1) % len(points)]
            cross = (following.x - current.x) * (point.y - current.y) - (
                following.y - current.y
            ) * (point.x - current.x)
            if abs(cross) <= tolerance:
                continue
            current_sign = 1 if cross > 0 else -1
            if sign == 0:
                sign = current_sign
            elif sign != current_sign:
                return False
        return True

    def max_distance_to_chiplet_edge(self, chiplet: Rect) -> float:
        """Maximum over the sector's vertices of the distance to the chiplet edge.

        This is the quantity ``D_B`` of the paper: the worst-case distance a
        wire has to travel from a bump in this sector to the chiplet
        boundary.  For the convex sectors used here the maximum over the
        polygon is attained at a vertex.
        """
        return max(chiplet.distance_to_edge(vertex) for vertex in self.vertices)


@dataclass(frozen=True)
class SectorLayout:
    """The complete bump-sector partition of one chiplet."""

    chiplet: Rect
    sectors: tuple[BumpSector, ...]

    def link_sectors(self) -> list[BumpSector]:
        """All sectors that carry D2D-link bumps."""
        return [s for s in self.sectors if s.role is SectorRole.LINK]

    def power_sector(self) -> BumpSector:
        """The unique power sector of the layout."""
        power = [s for s in self.sectors if s.role is SectorRole.POWER]
        if len(power) != 1:
            raise ValueError(f"expected exactly one power sector, found {len(power)}")
        return power[0]

    @property
    def link_count(self) -> int:
        """Number of D2D links the layout provides bumps for."""
        return len(self.link_sectors())

    def link_sector_area(self) -> float:
        """Area ``A_B`` of one link sector (all link sectors are equal-area)."""
        areas = [s.area for s in self.link_sectors()]
        if not areas:
            raise ValueError("layout has no link sectors")
        return areas[0]

    def max_bump_distance(self) -> float:
        """The paper's ``D_B``: worst-case link-bump-to-edge distance."""
        return max(s.max_distance_to_chiplet_edge(self.chiplet) for s in self.link_sectors())

    def total_sector_area(self) -> float:
        """Sum of all sector areas; equals the chiplet area for valid layouts."""
        return sum(s.area for s in self.sectors)

    def validate(self, *, rel_tol: float = 1e-6) -> None:
        """Check the layout's internal consistency.

        Raises :class:`ValueError` if the sectors do not tile the chiplet
        area or if the link sectors do not all have the same area.
        """
        chiplet_area = self.chiplet.area
        covered = self.total_sector_area()
        if abs(covered - chiplet_area) > rel_tol * chiplet_area:
            raise ValueError(
                f"sectors cover {covered:.6f} mm² but the chiplet area is "
                f"{chiplet_area:.6f} mm²"
            )
        link_areas = [s.area for s in self.link_sectors()]
        if link_areas:
            reference = link_areas[0]
            for area in link_areas[1:]:
                if abs(area - reference) > rel_tol * max(reference, 1e-30):
                    raise ValueError("link sectors do not all have the same area")


def grid_sector_layout(chiplet: Rect, power_width: float) -> SectorLayout:
    """Build the grid bump layout of Figure 5a.

    The chiplet must be square (the paper requires ``W_C = H_C`` for the
    grid).  The power sector is a ``power_width``-sided square in the
    centre; the four link sectors are the trapezoids between the power
    square and the four chiplet edges.
    """
    check_positive("power_width", power_width)
    if abs(chiplet.width - chiplet.height) > GEOMETRY_TOLERANCE:
        raise ValueError("the grid layout requires a square chiplet")
    if power_width >= chiplet.width:
        raise ValueError("the power sector must be smaller than the chiplet")

    outer = chiplet
    margin = (chiplet.width - power_width) / 2.0
    inner = Rect(outer.x + margin, outer.y + margin, power_width, power_width)

    outer_ll, outer_lr, outer_ur, outer_ul = outer.corner_points()
    inner_ll, inner_lr, inner_ur, inner_ul = inner.corner_points()

    power = BumpSector(SectorRole.POWER, inner.corner_points())
    south = BumpSector(SectorRole.LINK, (outer_ll, outer_lr, inner_lr, inner_ll), "south")
    east = BumpSector(SectorRole.LINK, (outer_lr, outer_ur, inner_ur, inner_lr), "east")
    north = BumpSector(SectorRole.LINK, (outer_ur, outer_ul, inner_ul, inner_ur), "north")
    west = BumpSector(SectorRole.LINK, (outer_ul, outer_ll, inner_ll, inner_ul), "west")

    layout = SectorLayout(chiplet=chiplet, sectors=(power, north, east, south, west))
    layout.validate()
    return layout


def hex_sector_layout(chiplet: Rect, bump_distance: float, band_height: float) -> SectorLayout:
    """Build the brickwall / HexaMesh bump layout of Figure 5b.

    Parameters
    ----------
    chiplet:
        Footprint of the chiplet; its dimensions must satisfy the paper's
        equation system, i.e. ``H_C = 2 D_B + L_B`` and ``W_C = 2 L_B``.
    bump_distance:
        The solved maximum bump-to-edge distance ``D_B``.
    band_height:
        The solved centre-band height ``L_B``.
    """
    check_positive("bump_distance", bump_distance)
    check_positive("band_height", band_height)
    expected_height = 2.0 * bump_distance + band_height
    expected_width = 2.0 * band_height
    if abs(chiplet.height - expected_height) > 1e-6 * expected_height:
        raise ValueError(
            f"chiplet height {chiplet.height} does not match 2*D_B + L_B = {expected_height}"
        )
    if abs(chiplet.width - expected_width) > 1e-6 * expected_width:
        raise ValueError(
            f"chiplet width {chiplet.width} does not match 2*L_B = {expected_width}"
        )

    x0, y0 = chiplet.x, chiplet.y
    width, height = chiplet.width, chiplet.height
    power_width = width - 2.0 * bump_distance
    if power_width <= 0:
        raise ValueError("the power sector width W_C - 2*D_B must be positive")

    def rect_sector(role: SectorRole, rect: Rect, direction: str | None = None) -> BumpSector:
        return BumpSector(role, rect.corner_points(), direction)

    half_width = width / 2.0
    # Centre band (height L_B): west link, power, east link.
    band_y = y0 + bump_distance
    west = rect_sector(SectorRole.LINK, Rect(x0, band_y, bump_distance, band_height), "west")
    power = rect_sector(
        SectorRole.POWER, Rect(x0 + bump_distance, band_y, power_width, band_height)
    )
    east = rect_sector(
        SectorRole.LINK,
        Rect(x0 + width - bump_distance, band_y, bump_distance, band_height),
        "east",
    )
    # Bottom band (height D_B): south-west and south-east links.
    south_west = rect_sector(
        SectorRole.LINK, Rect(x0, y0, half_width, bump_distance), "south_west"
    )
    south_east = rect_sector(
        SectorRole.LINK, Rect(x0 + half_width, y0, half_width, bump_distance), "south_east"
    )
    # Top band (height D_B): north-west and north-east links.
    top_y = y0 + height - bump_distance
    north_west = rect_sector(
        SectorRole.LINK, Rect(x0, top_y, half_width, bump_distance), "north_west"
    )
    north_east = rect_sector(
        SectorRole.LINK, Rect(x0 + half_width, top_y, half_width, bump_distance), "north_east"
    )

    layout = SectorLayout(
        chiplet=chiplet,
        sectors=(power, west, east, south_west, south_east, north_west, north_east),
    )
    layout.validate()
    return layout
