"""C4-bump and micro-bump grids.

The paper's link model (Section V) counts the number of bumps that fit into
a sector by dividing the sector area by the squared bump pitch, assuming a
regular (non-staggered) layout.  This module provides both that counting
formula and an explicit bump-coordinate generator, so the geometric layout
can be rendered and cross-checked against the closed-form count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.primitives import Point, Rect
from repro.geometry.sectors import BumpSector
from repro.utils.validation import check_non_negative, check_positive


def max_bump_count(area: float, pitch: float) -> int:
    """Closed-form bump count of the paper: ``floor(area / pitch²)``.

    This is the estimate used by the D2D link model (``N_w = A_B / P_B²``),
    assuming a regular bump layout.
    """
    check_non_negative("area", area)
    check_positive("pitch", pitch)
    # The tiny epsilon keeps exact ratios (e.g. 1.0 / 0.1²) from being
    # truncated one short because of binary floating-point representation.
    return int(math.floor(area / (pitch * pitch) + 1e-9))


def bump_positions_in_rect(rect: Rect, pitch: float) -> list[Point]:
    """Place bumps on a regular grid inside a rectangle.

    Bumps are centred in cells of size ``pitch × pitch``; only complete
    cells are used, so the number of generated bumps is
    ``floor(width / pitch) * floor(height / pitch)`` which is never larger
    than the closed-form estimate :func:`max_bump_count`.
    """
    check_positive("pitch", pitch)
    columns = int(math.floor(rect.width / pitch + 1e-12))
    rows = int(math.floor(rect.height / pitch + 1e-12))
    positions: list[Point] = []
    for row in range(rows):
        for column in range(columns):
            positions.append(
                Point(
                    rect.x + (column + 0.5) * pitch,
                    rect.y + (row + 0.5) * pitch,
                )
            )
    return positions


def bump_positions_in_sector(sector: BumpSector, pitch: float) -> list[Point]:
    """Place bumps on a regular grid clipped to a (convex) sector polygon."""
    check_positive("pitch", pitch)
    xs = [vertex.x for vertex in sector.vertices]
    ys = [vertex.y for vertex in sector.vertices]
    bounding = Rect(
        min(xs), min(ys), max(max(xs) - min(xs), pitch), max(max(ys) - min(ys), pitch)
    )
    candidates = bump_positions_in_rect(bounding, pitch)
    return [point for point in candidates if sector.contains_point(point)]


@dataclass(frozen=True)
class BumpGrid:
    """A concrete set of bump positions together with their pitch."""

    positions: tuple[Point, ...]
    pitch: float

    def __post_init__(self) -> None:
        check_positive("pitch", self.pitch)

    @classmethod
    def for_rect(cls, rect: Rect, pitch: float) -> "BumpGrid":
        """Generate the regular bump grid of a rectangular sector."""
        return cls(tuple(bump_positions_in_rect(rect, pitch)), pitch)

    @classmethod
    def for_sector(cls, sector: BumpSector, pitch: float) -> "BumpGrid":
        """Generate the regular bump grid of an arbitrary convex sector."""
        return cls(tuple(bump_positions_in_sector(sector, pitch)), pitch)

    @property
    def count(self) -> int:
        """Number of bumps in the grid."""
        return len(self.positions)

    def max_distance_to_edge(self, chiplet: Rect) -> float:
        """Worst-case distance from any bump in the grid to the chiplet edge."""
        if not self.positions:
            raise ValueError("cannot compute distances of an empty bump grid")
        return max(chiplet.distance_to_edge(point) for point in self.positions)
