"""Planar geometry substrate.

The paper reasons about chiplets as axis-aligned rectangles placed on a
package substrate or silicon interposer.  This package provides the
geometric primitives used by the arrangement generators and by the bump /
sector model of Section IV-B:

* :mod:`repro.geometry.primitives` — points and rectangles,
* :mod:`repro.geometry.placement` — a collection of placed chiplets,
* :mod:`repro.geometry.adjacency` — shared-edge adjacency detection,
* :mod:`repro.geometry.sectors` — the bump-sector partition of a chiplet
  (Figure 5 of the paper),
* :mod:`repro.geometry.bumps` — C4 / micro-bump grids inside a sector.
"""

from repro.geometry.adjacency import AdjacencyPolicy, shared_edge_length, shared_edges
from repro.geometry.bumps import BumpGrid, bump_positions_in_rect, max_bump_count
from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Point, Rect
from repro.geometry.sectors import BumpSector, SectorLayout, SectorRole

__all__ = [
    "AdjacencyPolicy",
    "BumpGrid",
    "BumpSector",
    "ChipletPlacement",
    "PlacedChiplet",
    "Point",
    "Rect",
    "SectorLayout",
    "SectorRole",
    "bump_positions_in_rect",
    "max_bump_count",
    "shared_edge_length",
    "shared_edges",
]
