"""A placement is a collection of chiplets positioned on the package.

The arrangement generators of :mod:`repro.arrangements` produce
:class:`ChipletPlacement` objects; they can also be constructed by hand to
analyse custom floorplans with the same tooling (adjacency extraction,
performance proxies, link model, simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.geometry.primitives import GEOMETRY_TOLERANCE, Point, Rect


@dataclass(frozen=True)
class PlacedChiplet:
    """One chiplet instance placed on the package.

    Parameters
    ----------
    chiplet_id:
        Dense integer identifier; doubles as the graph vertex id.
    rect:
        Footprint of the chiplet in package coordinates (mm).
    role:
        Free-form role tag; the paper distinguishes ``"compute"`` chiplets
        (the subject of the arrangement problem) from ``"io"`` chiplets
        placed on the perimeter.
    lattice_position:
        Optional integer lattice coordinates used by the generator
        (row/column for grids and brickwalls, axial hex coordinates for
        HexaMesh).  Useful for debugging and for lattice-exact adjacency.
    """

    chiplet_id: int
    rect: Rect
    role: str = "compute"
    lattice_position: tuple[int, int] | None = None

    @property
    def center(self) -> Point:
        """Centre of the chiplet footprint."""
        return self.rect.center

    @property
    def area(self) -> float:
        """Footprint area in mm²."""
        return self.rect.area


@dataclass
class ChipletPlacement:
    """An ordered collection of placed chiplets.

    Chiplet ids must be unique; they do not have to be contiguous, although
    the generators always produce ids ``0 .. n-1``.
    """

    chiplets: list[PlacedChiplet] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [c.chiplet_id for c in self.chiplets]
        if len(ids) != len(set(ids)):
            raise ValueError("chiplet ids in a placement must be unique")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.chiplets)

    def __iter__(self) -> Iterator[PlacedChiplet]:
        return iter(self.chiplets)

    def __getitem__(self, chiplet_id: int) -> PlacedChiplet:
        for chiplet in self.chiplets:
            if chiplet.chiplet_id == chiplet_id:
                return chiplet
        raise KeyError(f"no chiplet with id {chiplet_id}")

    # -- construction ---------------------------------------------------------

    def add(self, chiplet: PlacedChiplet) -> None:
        """Append a chiplet, enforcing id uniqueness and non-overlap."""
        if any(c.chiplet_id == chiplet.chiplet_id for c in self.chiplets):
            raise ValueError(f"duplicate chiplet id {chiplet.chiplet_id}")
        for existing in self.chiplets:
            if existing.rect.overlaps(chiplet.rect):
                raise ValueError(
                    f"chiplet {chiplet.chiplet_id} overlaps chiplet "
                    f"{existing.chiplet_id}"
                )
        self.chiplets.append(chiplet)

    @classmethod
    def from_rects(
        cls, rects: Iterable[Rect], *, role: str = "compute"
    ) -> "ChipletPlacement":
        """Build a placement from rectangles, assigning ids ``0 .. n-1``."""
        placement = cls()
        for index, rect in enumerate(rects):
            placement.add(PlacedChiplet(chiplet_id=index, rect=rect, role=role))
        return placement

    # -- queries --------------------------------------------------------------

    @property
    def chiplet_ids(self) -> list[int]:
        """All chiplet ids in insertion order."""
        return [c.chiplet_id for c in self.chiplets]

    def compute_chiplets(self) -> list[PlacedChiplet]:
        """Only the compute chiplets (the subject of the arrangement problem)."""
        return [c for c in self.chiplets if c.role == "compute"]

    def bounding_box(self) -> Rect:
        """The smallest axis-aligned rectangle containing every chiplet."""
        if not self.chiplets:
            raise ValueError("cannot compute the bounding box of an empty placement")
        bounds = self.chiplets[0].rect
        for chiplet in self.chiplets[1:]:
            bounds = bounds.union_bounds(chiplet.rect)
        return bounds

    def total_chiplet_area(self) -> float:
        """Sum of all chiplet footprint areas in mm²."""
        return sum(c.area for c in self.chiplets)

    def utilization(self) -> float:
        """Fraction of the bounding box covered by chiplets (0..1]."""
        return self.total_chiplet_area() / self.bounding_box().area

    def has_overlaps(self, *, tolerance: float = GEOMETRY_TOLERANCE) -> bool:
        """Return ``True`` if any two chiplets overlap (which is invalid)."""
        chiplets = self.chiplets
        for i, first in enumerate(chiplets):
            for second in chiplets[i + 1 :]:
                if first.rect.overlaps(second.rect, tolerance=tolerance):
                    return True
        return False

    def translated(self, dx: float, dy: float) -> "ChipletPlacement":
        """Return a copy of the placement shifted by ``(dx, dy)``."""
        moved = [
            PlacedChiplet(
                chiplet_id=c.chiplet_id,
                rect=c.rect.translated(dx, dy),
                role=c.role,
                lattice_position=c.lattice_position,
            )
            for c in self.chiplets
        ]
        return ChipletPlacement(moved)

    def normalized(self) -> "ChipletPlacement":
        """Return a copy translated so the bounding box starts at the origin."""
        bounds = self.bounding_box()
        return self.translated(-bounds.x, -bounds.y)
