"""Content-addressed persistent result store (see :mod:`repro.store.store`).

The durable, shareable successor of the per-run flat JSON cache: sharded
content-addressed entries under ``objects/``, atomic lock-free writes, a
versioned on-disk schema with an explicit migrate/reject path, embedded
provenance manifests, generation-guarded temp-file hygiene and
recompute-and-compare verification.  Both sweep runners read and write
through it, so every execution path — sweeps, figure 7, resilience,
workloads — shares one store.
"""

from repro.store.store import (
    KEY_SCHEMA,
    LEGACY_FLAT_SCHEMA,
    STORE_SCHEMA,
    ResultStore,
    StoreCounters,
    StoreEntry,
    StoreGCResult,
    StoreSchemaError,
    StoreStats,
    is_result_key,
    result_key,
)
from repro.store.verify import (
    VerifyOutcome,
    candidate_from_key_dict,
    canonical_result_json,
    sample_keys,
    verify_entry,
    verify_store,
)

__all__ = [
    "KEY_SCHEMA",
    "LEGACY_FLAT_SCHEMA",
    "STORE_SCHEMA",
    "ResultStore",
    "StoreCounters",
    "StoreEntry",
    "StoreGCResult",
    "StoreSchemaError",
    "StoreStats",
    "VerifyOutcome",
    "candidate_from_key_dict",
    "canonical_result_json",
    "is_result_key",
    "result_key",
    "sample_keys",
    "verify_entry",
    "verify_store",
]
