"""Content-addressed persistent result store.

The store promotes the per-run JSON cache of :mod:`repro.core.parallel`
into a durable, shareable artifact: one directory that any number of
sweep processes — across runs, machines and CI workflows — can read and
write concurrently, so repeated sweep/resilience/workload queries become
O(1) lookups and only novel candidates ever hit the simulator.

Layout (``STORE_SCHEMA`` 2)::

    <root>/
        store.json                  # {"schema": 2, "generation": N}
        objects/<key[:2]>/<key>.json
        quarantine/<name>           # corrupt entries moved aside, never lost

* **Content-addressed.**  Keys are the existing SHA-256 candidate
  identity (:func:`result_key` hashes the candidate ``key_dict`` plus the
  full simulation configuration under ``KEY_SCHEMA``), unchanged from the
  flat cache of earlier versions, so previously computed results keep
  their addresses.
* **Sharded.**  Entries fan out into 256 two-hex-character
  subdirectories, keeping directory listings small at millions of
  entries.
* **Atomic and lock-free.**  Entries are written to a temp file and
  published with :func:`os.replace`; readers only ever open complete
  entries.  Concurrent writers of the same key converge because the key
  determines the result bit-for-bit (deterministic seeds), so whichever
  replace lands last changes nothing observable.
* **Versioned.**  ``store.json`` carries the layout schema.  Older
  layouts are migrated in place exactly once (the flat per-run layout of
  earlier versions is schema 1, see :meth:`ResultStore.migrated`);
  layouts newer than this code are rejected with
  :class:`StoreSchemaError` instead of being misread.
* **Generation-guarded hygiene.**  Every open bumps a persistent
  generation counter and temp files embed ``(generation, pid)``.  The
  orphan sweep removes only temp files from *older* generations whose
  writer pid is dead: a recycled pid can never alias a live writer's
  temp file, because any live writer opened the store later and
  therefore writes under a strictly newer generation — the filename
  differs even when the pid matches.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Version of the key-identity payload hashed into entry keys.  This is
#: the ``schema`` field the flat cache always hashed, kept at 1 so every
#: previously computed cache key stays valid.
KEY_SCHEMA = 1

#: Version of the on-disk layout and entry format.  Bump when either
#: changes, and register a migration (or let old stores be rejected).
STORE_SCHEMA = 2

#: The flat one-directory layout of earlier versions (``<key>.json``
#: entries with ``<key>.manifest.json`` sidecars, no meta file).
LEGACY_FLAT_SCHEMA = 1

_META_NAME = "store.json"
_OBJECTS_DIR = "objects"
_QUARANTINE_DIR = "quarantine"
_SHARD_WIDTH = 2

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
_TMP_RE = re.compile(r"^(?P<stem>.+\.json)\.tmp\.g(?P<gen>\d+)\.p(?P<pid>\d+)$")
_LEGACY_TMP_RE = re.compile(r"^(?P<stem>.+\.json)\.tmp\.(?P<pid>\d+)$")


class StoreSchemaError(RuntimeError):
    """The store's on-disk schema cannot be used by this code."""


def result_key(candidate: dict[str, Any], config: dict[str, Any]) -> str:
    """Stable SHA-256 key of one (candidate identity, configuration) result.

    This is the exact computation the flat cache used (sorted-key JSON of
    ``{"schema": KEY_SCHEMA, "candidate": ..., "config": ...}``), so keys
    are unchanged across the layout migration.
    """
    payload = {"schema": KEY_SCHEMA, "candidate": candidate, "config": config}
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def is_result_key(text: str) -> bool:
    """Whether ``text`` is a well-formed entry key (64 lowercase hex chars)."""
    return bool(_KEY_RE.match(text))


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the process exists but is not ours.
        return True
    return True


@dataclass(frozen=True)
class StoreEntry:
    """One complete store entry: key, candidate identity, result, manifest."""

    key: str
    candidate: dict[str, Any]
    result: dict[str, Any]
    manifest: dict[str, Any] | None = None


@dataclass
class StoreCounters:
    """Per-:class:`ResultStore`-instance runtime counters.

    ``hits``/``misses`` count :meth:`ResultStore.load` outcomes in this
    process (the cross-run hit ratio is what the sweep progress tracker
    reports); ``writes`` counts published entries and ``quarantined``
    counts corrupt entries moved aside.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0

    @property
    def hit_ratio(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0


@dataclass(frozen=True)
class StoreStats:
    """A disk-level snapshot of the store (see :meth:`ResultStore.stats`)."""

    schema: int
    generation: int
    entries: int
    total_bytes: int
    shards: int
    quarantined: int
    orphan_tmp: int


@dataclass(frozen=True)
class StoreGCResult:
    """What one :meth:`ResultStore.gc` pass removed."""

    removed_tmp: int
    removed_quarantined: int
    pruned_shards: int
    freed_bytes: int


@dataclass
class ResultStore:
    """A content-addressed, sharded, cross-process-safe result store.

    Opening a store creates or validates the root (rejecting
    newer-schema stores, migrating older layouts exactly once), bumps
    the persistent generation counter and sweeps orphaned temp files of
    dead writers from older generations.
    """

    root: str
    _generation: int = field(init=False, default=0)
    _migrated: int = field(init=False, default=0)
    _preexisting: bool = field(init=False, default=False)
    counters: StoreCounters = field(init=False, default_factory=StoreCounters)

    def __post_init__(self) -> None:
        self.root = os.fspath(self.root)
        os.makedirs(self.root, exist_ok=True)
        self._open_meta()
        os.makedirs(self._objects_root(), exist_ok=True)
        self.sweep_orphans()

    # -- layout --------------------------------------------------------------

    def _objects_root(self) -> str:
        return os.path.join(self.root, _OBJECTS_DIR)

    def _quarantine_root(self) -> str:
        return os.path.join(self.root, _QUARANTINE_DIR)

    def _meta_path(self) -> str:
        return os.path.join(self.root, _META_NAME)

    def entry_path(self, key: str) -> str:
        """Absolute path of the (existing or future) entry for ``key``."""
        return os.path.join(self._objects_root(), key[:_SHARD_WIDTH], f"{key}.json")

    @property
    def generation(self) -> int:
        """The generation this store instance opened at (monotonic per root)."""
        return self._generation

    @property
    def migrated(self) -> int:
        """Number of legacy entries migrated into the store when it opened."""
        return self._migrated

    @property
    def preexisting(self) -> bool:
        """Whether the root already held a (possibly legacy) store when opened."""
        return self._preexisting

    # -- meta / schema -------------------------------------------------------

    def _open_meta(self) -> None:
        meta_path = self._meta_path()
        schema = None
        generation = 0
        if os.path.exists(meta_path):
            self._preexisting = True
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                schema = meta["schema"]
                generation = int(meta.get("generation", 0))
            except (OSError, ValueError, KeyError, TypeError) as error:
                raise StoreSchemaError(
                    f"unreadable store meta {meta_path!r}: {error}"
                ) from error
        elif self._has_flat_entries():
            # A populated directory without a meta file is the legacy
            # flat layout (schema 1) of earlier versions.
            self._preexisting = True
            schema = LEGACY_FLAT_SCHEMA
        if schema is not None:
            if not isinstance(schema, int) or schema > STORE_SCHEMA:
                raise StoreSchemaError(
                    f"store at {self.root!r} has schema {schema!r}, newer than "
                    f"the supported schema {STORE_SCHEMA}; upgrade this "
                    "installation (or point --cache-dir at a fresh directory)"
                )
            if schema < STORE_SCHEMA:
                migrate = _MIGRATIONS.get(schema)
                if migrate is None:
                    raise StoreSchemaError(
                        f"store at {self.root!r} has schema {schema} and no "
                        f"migration path to schema {STORE_SCHEMA}; run "
                        "'hexamesh store migrate' with a version that supports "
                        "it, or start a fresh directory"
                    )
                self._migrated = migrate(self)
        self._generation = generation + 1
        self._write_meta()

    def _write_meta(self) -> None:
        payload = {"schema": STORE_SCHEMA, "generation": self._generation}
        tmp_path = f"{self._meta_path()}.tmp.g{self._generation}.p{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._meta_path())
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def _has_flat_entries(self) -> bool:
        try:
            names = os.listdir(self.root)
        except OSError:
            return False
        return any(
            name.endswith(".json") and is_result_key(name[: -len(".json")])
            for name in names
        )

    # -- entry I/O -----------------------------------------------------------

    def load(self, key: str) -> StoreEntry | None:
        """Return the complete entry for ``key``, or ``None`` on a miss.

        Corrupt entries (unparseable, wrong key, missing fields) are
        quarantined and reported as misses; entries written under a
        different entry schema are rejected as misses so callers
        recompute and overwrite them.  Hits and misses update
        :attr:`counters`.
        """
        entry = self._read_entry(key)
        if entry is None:
            self.counters.misses += 1
        else:
            self.counters.hits += 1
        return entry

    def get(self, key: str) -> StoreEntry | None:
        """Like :meth:`load` but without touching the hit/miss counters."""
        return self._read_entry(key)

    def _read_entry(self, key: str) -> StoreEntry | None:
        path = self.entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._quarantine(path)
            return None
        entry = self._entry_from_payload(key, payload)
        if entry is None and isinstance(payload, dict) and (
            payload.get("schema") == STORE_SCHEMA or "schema" not in payload
        ):
            # Structurally broken under the current schema: quarantine.
            # (A clean version mismatch is left in place — the caller
            # recomputes and atomically overwrites it.)
            self._quarantine(path)
        return entry

    def _entry_from_payload(self, key: str, payload: Any) -> StoreEntry | None:
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != STORE_SCHEMA:
            return None
        if payload.get("key") != key:
            return None
        candidate = payload.get("candidate")
        result = payload.get("result")
        manifest = payload.get("manifest")
        if not isinstance(candidate, dict) or not isinstance(result, dict):
            return None
        if manifest is not None and not isinstance(manifest, dict):
            return None
        return StoreEntry(key=key, candidate=candidate, result=result, manifest=manifest)

    def store(
        self,
        key: str,
        *,
        candidate: dict[str, Any],
        result: dict[str, Any],
        manifest: dict[str, Any] | None = None,
    ) -> str:
        """Atomically publish one entry; returns its path.

        The write goes to a generation-and-pid-stamped temp file in the
        target shard and lands with :func:`os.replace`, so a concurrent
        reader observes either the previous complete entry or the new
        complete entry, never bytes in between.
        """
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA,
            "key": key,
            "candidate": candidate,
            "result": result,
            "manifest": manifest,
        }
        tmp_path = f"{path}.tmp.g{self._generation}.p{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        finally:
            # In-process failure cleanup; out-of-process deaths are the
            # orphan sweep's job.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        self.counters.writes += 1
        return path

    def contains(self, key: str) -> bool:
        """Whether a (possibly corrupt) entry file exists for ``key``."""
        return os.path.exists(self.entry_path(key))

    def keys(self) -> list[str]:
        """All entry keys currently on disk, sorted."""
        found: list[str] = []
        for shard, names in self._iter_shards():
            del shard
            for name in names:
                if name.endswith(".json") and is_result_key(name[: -len(".json")]):
                    found.append(name[: -len(".json")])
        return sorted(found)

    def iter_entries(self) -> Iterator[StoreEntry]:
        """Yield every readable entry (corrupt ones are quarantined, skipped)."""
        for key in self.keys():
            entry = self._read_entry(key)
            if entry is not None:
                yield entry

    def _iter_shards(self) -> Iterator[tuple[str, list[str]]]:
        objects = self._objects_root()
        try:
            shards = sorted(os.listdir(objects))
        except OSError:
            return
        for shard in shards:
            shard_path = os.path.join(objects, shard)
            if not os.path.isdir(shard_path):
                continue
            try:
                yield shard_path, sorted(os.listdir(shard_path))
            except OSError:
                continue

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (never delete possibly useful bytes)."""
        quarantine = self._quarantine_root()
        try:
            os.makedirs(quarantine, exist_ok=True)
            base = os.path.basename(path)
            target = os.path.join(quarantine, base)
            suffix = 0
            while os.path.exists(target):
                suffix += 1
                target = os.path.join(quarantine, f"{base}.{suffix}")
            os.replace(path, target)
        except OSError:
            return
        self.counters.quarantined += 1

    # -- hygiene / stats -----------------------------------------------------

    def sweep_orphans(self) -> int:
        """Remove temp files stranded by dead writers of older generations.

        A temp file is an orphan exactly when its embedded generation is
        *older* than this store instance's and its writer pid is dead.
        The generation guard is what makes the pid probe safe against
        pid recycling: any live writer opened the store at a generation
        at least as new as ours (opens strictly increment the persisted
        counter), so its temp filenames can never collide with the
        orphans this sweep unlinks — even if the orphan's recorded pid
        has been recycled into that live writer's pid.  Returns the
        number of files removed.
        """
        removed = 0
        for shard_path, names in self._iter_shards():
            for name in names:
                match = _TMP_RE.match(name)
                if match is None:
                    continue
                if int(match.group("gen")) >= self._generation:
                    continue
                if _pid_alive(int(match.group("pid"))):
                    continue
                try:
                    os.unlink(os.path.join(shard_path, name))
                except OSError:
                    continue
                removed += 1
        return removed

    def stats(self) -> StoreStats:
        """Walk the store and return a disk-level snapshot."""
        entries = 0
        total_bytes = 0
        shards = 0
        orphan_tmp = 0
        for shard_path, names in self._iter_shards():
            shards += 1
            for name in names:
                path = os.path.join(shard_path, name)
                if _TMP_RE.match(name) or _LEGACY_TMP_RE.match(name):
                    orphan_tmp += 1
                    continue
                if name.endswith(".json") and is_result_key(name[: -len(".json")]):
                    entries += 1
                    try:
                        total_bytes += os.path.getsize(path)
                    except OSError:
                        continue
        try:
            quarantined = len(os.listdir(self._quarantine_root()))
        except OSError:
            quarantined = 0
        return StoreStats(
            schema=STORE_SCHEMA,
            generation=self._generation,
            entries=entries,
            total_bytes=total_bytes,
            shards=shards,
            quarantined=quarantined,
            orphan_tmp=orphan_tmp,
        )

    def gc(self, *, purge_quarantine: bool = True) -> StoreGCResult:
        """Clean the store: orphaned temp files, quarantine, empty shards.

        Orphan removal follows the same generation-and-liveness rule as
        :meth:`sweep_orphans` (a gc can run beside live sweeps).  Returns
        what was removed and how many bytes it freed.
        """
        freed = 0
        removed_tmp = 0
        for shard_path, names in self._iter_shards():
            for name in names:
                match = _TMP_RE.match(name)
                if match is None:
                    continue
                if int(match.group("gen")) >= self._generation:
                    continue
                if _pid_alive(int(match.group("pid"))):
                    continue
                path = os.path.join(shard_path, name)
                try:
                    freed += os.path.getsize(path)
                    os.unlink(path)
                except OSError:
                    continue
                removed_tmp += 1
        removed_quarantined = 0
        if purge_quarantine:
            quarantine = self._quarantine_root()
            try:
                names = os.listdir(quarantine)
            except OSError:
                names = []
            for name in names:
                path = os.path.join(quarantine, name)
                try:
                    freed += os.path.getsize(path)
                    os.unlink(path)
                except OSError:
                    continue
                removed_quarantined += 1
            try:
                os.rmdir(quarantine)
            except OSError:
                pass
        pruned = 0
        for shard_path, names in list(self._iter_shards()):
            if not names:
                try:
                    os.rmdir(shard_path)
                except OSError:
                    continue
                pruned += 1
        return StoreGCResult(
            removed_tmp=removed_tmp,
            removed_quarantined=removed_quarantined,
            pruned_shards=pruned,
            freed_bytes=freed,
        )


# ---------------------------------------------------------------------------
# Migrations
# ---------------------------------------------------------------------------


def _migrate_flat_layout(store: ResultStore) -> int:
    """One-shot migration of the legacy flat cache layout (schema 1 -> 2).

    Every flat ``<key>.json`` entry moves into its shard with the entry
    payload upgraded to the current schema and its ``<key>.manifest.json``
    provenance sidecar folded into the entry; the old files are removed.
    Unreadable flat entries are quarantined.  Legacy ``.tmp.<pid>`` files
    of dead writers are cleaned up; a live legacy writer's temp file is
    left for it to finish (its final rename still lands in the root and
    will be migrated by the next open).  Returns the number of entries
    migrated.
    """
    migrated = 0
    try:
        names = sorted(os.listdir(store.root))
    except OSError:
        return 0
    for name in names:
        legacy_tmp = _LEGACY_TMP_RE.match(name)
        if legacy_tmp is not None:
            if not _pid_alive(int(legacy_tmp.group("pid"))):
                try:
                    os.unlink(os.path.join(store.root, name))
                except OSError:
                    pass
            continue
        if not name.endswith(".json") or not is_result_key(name[: -len(".json")]):
            continue
        key = name[: -len(".json")]
        flat_path = os.path.join(store.root, name)
        manifest_path = os.path.join(store.root, f"{key}.manifest.json")
        try:
            with open(flat_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            store._quarantine(flat_path)
            continue
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != LEGACY_FLAT_SCHEMA
            or not isinstance(payload.get("candidate"), dict)
            or not isinstance(payload.get("result"), dict)
        ):
            store._quarantine(flat_path)
            continue
        manifest = None
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                manifest = None
            if not isinstance(manifest, dict):
                manifest = None
        store.store(
            key,
            candidate=payload["candidate"],
            result=payload["result"],
            manifest=manifest,
        )
        for stale in (flat_path, manifest_path):
            try:
                os.unlink(stale)
            except OSError:
                pass
        migrated += 1
    return migrated


#: Layout migrations: old schema -> in-place upgrade returning the number
#: of migrated entries.  Schemas without an entry here are rejected.
_MIGRATIONS = {LEGACY_FLAT_SCHEMA: _migrate_flat_layout}
