"""Store verification: recompute sampled entries and compare bit-for-bit.

A store entry is self-describing: the candidate identity it carries
rebuilds the exact :class:`~repro.core.parallel.SweepCandidate`, and the
embedded provenance manifest carries the full simulation configuration
(seed included) and engine the result was produced with.  Verification
replays that simulation and requires the canonical JSON rendering of the
result to match the stored one byte for byte — the strongest possible
"this cache is not lying" check, valid across engines because every
engine is bit-identical under a fixed seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.store.store import ResultStore, StoreEntry, result_key


@dataclass(frozen=True)
class VerifyOutcome:
    """The verdict on one entry: ``ok``, ``mismatch`` or ``skipped``."""

    key: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def candidate_from_key_dict(data: dict[str, Any]):
    """Rebuild the :class:`SweepCandidate` a ``key_dict`` describes.

    Inverse of :meth:`SweepCandidate.key_dict`: the rebuilt candidate's
    own ``key_dict()`` (and hence its derived seed and cache key) equals
    the input exactly.
    """
    # Imported lazily: repro.core.parallel imports this package.
    from repro.core.parallel import SweepCandidate

    kwargs: dict[str, Any] = {
        "kind": data["kind"],
        "num_chiplets": data["num_chiplets"],
        # key_dict stores repr(rate); float(repr(x)) round-trips exactly.
        "injection_rate": float(data["injection_rate"]),
        "traffic": data.get("traffic", "uniform"),
        "regularity": data.get("regularity"),
    }
    edges = data.get("graph_edges")
    if edges is not None:
        kwargs["graph_edges"] = tuple(tuple(edge) for edge in edges)
    if data.get("workload") is not None:
        kwargs["workload"] = data["workload"]
        params = data.get("workload_params")
        if params is not None:
            kwargs["workload_params"] = tuple((name, value) for name, value in params)
        kwargs["mapper"] = data.get("mapper")
    kwargs["failed_links"] = tuple(tuple(link) for link in data.get("failed_links", ()))
    kwargs["failed_routers"] = tuple(data.get("failed_routers", ()))
    return SweepCandidate(**kwargs)


def canonical_result_json(result: dict[str, Any]) -> str:
    """Canonical rendering used for bit-for-bit result comparison.

    ``NaN`` latencies (empty statistics) serialise deterministically, so
    string equality is exact even for results dict equality cannot
    compare (``NaN != NaN``).
    """
    return json.dumps(result, sort_keys=True)


def verify_entry(entry: StoreEntry, *, engine: str | None = None) -> VerifyOutcome:
    """Recompute one entry's simulation and compare it to the stored result.

    Entries without an embedded manifest (pre-provenance legacy entries)
    cannot be replayed — their exact configuration is unknown — and are
    reported as ``skipped``.  ``engine`` overrides the manifest's engine
    (all engines are bit-identical, so this only changes wall time).
    """
    from repro.core.parallel import _evaluate_work_item, simulation_result_to_dict
    from repro.noc.config import SimulationConfig
    from repro.noc.engine import DEFAULT_ENGINE

    manifest = entry.manifest or {}
    config_data = manifest.get("config")
    if not isinstance(config_data, dict):
        return VerifyOutcome(
            entry.key, "skipped", "no embedded manifest config to replay"
        )
    try:
        config = SimulationConfig(**config_data)
        candidate = candidate_from_key_dict(entry.candidate)
    except (TypeError, ValueError, KeyError) as error:
        return VerifyOutcome(entry.key, "mismatch", f"unreplayable entry: {error}")
    expected_key = result_key(candidate.key_dict(), config_data)
    if expected_key != entry.key:
        return VerifyOutcome(
            entry.key,
            "mismatch",
            "stored key does not hash from the stored candidate + config",
        )
    run_engine = engine if engine is not None else manifest.get("engine", DEFAULT_ENGINE)
    _, result, wall, _ = _evaluate_work_item((0, candidate, config, run_engine))
    fresh = canonical_result_json(simulation_result_to_dict(result))
    stored = canonical_result_json(entry.result)
    if fresh != stored:
        return VerifyOutcome(
            entry.key, "mismatch", "recomputed result differs from the stored entry"
        )
    return VerifyOutcome(entry.key, "ok", f"recomputed in {wall:.2f}s ({run_engine})")


def sample_keys(keys: Sequence[str], sample: int, *, seed: int = 0) -> list[str]:
    """A deterministic sample of ``sample`` keys (seeded, order-stable)."""
    ordered = sorted(keys)
    if sample >= len(ordered):
        return ordered
    return sorted(random.Random(seed).sample(ordered, sample))


def verify_store(
    store: ResultStore,
    *,
    sample: int = 1,
    seed: int = 0,
    engine: str | None = None,
) -> list[VerifyOutcome]:
    """Structurally check every entry, then recompute a deterministic sample.

    The structural pass reads each entry through the store (corrupt
    entries are quarantined and reported as mismatches); the sampled
    entries are then re-simulated and compared bit-for-bit via
    :func:`verify_entry`.
    """
    outcomes: list[VerifyOutcome] = []
    entries: dict[str, StoreEntry] = {}
    for key in store.keys():
        entry = store.get(key)
        if entry is None:
            outcomes.append(
                VerifyOutcome(key, "mismatch", "corrupt or unreadable entry")
            )
        else:
            entries[key] = entry
    for key in sample_keys(list(entries), sample, seed=seed):
        outcomes.append(verify_entry(entries[key], engine=engine))
    return sorted(outcomes, key=lambda outcome: outcome.key)
