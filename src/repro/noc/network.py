"""Network assembly: routers, endpoints and channels from a topology graph.

The network mirrors the BookSim2 setup of the paper: one router per
chiplet, ``endpoints_per_chiplet`` endpoints attached to each router,
inter-router channels with the configured link latency and local channels
with a one-cycle latency.  Every flit channel has a credit channel running
in the opposite direction with the same latency.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable

from repro.graphs.model import ChipGraph
from repro.noc.channel import Channel
from repro.noc.config import SimulationConfig
from repro.noc.endpoint import Endpoint
from repro.noc.flit import Flit
from repro.noc.router import Router
from repro.noc.routing import RoutingTables
from repro.noc.traffic import BernoulliInjection, TrafficPattern, UniformRandomTraffic

#: A delivery target: called with (payload, now) for every payload arriving
#: on the associated channel.
_Sink = Callable[[object, int], None]

#: Structured description of where a channel delivers to, exposed through
#: :meth:`Network.channel_targets` so engines that bypass the sink closures
#: (the vectorized engine operates on flat router state) can dispatch
#: arrivals themselves.  Shapes:
#:
#: * ``("router_flit",   router_id,   port)`` — flit into a router input port,
#: * ``("router_credit", router_id,   port)`` — credit into a router output port,
#: * ``("endpoint_flit",   endpoint_id, -1)`` — flit ejected into an endpoint,
#: * ``("endpoint_credit", endpoint_id, -1)`` — credit returned to an endpoint.
ChannelTarget = tuple[str, int, int]


class Network:
    """A fully wired inter-chiplet network ready to be simulated.

    Parameters
    ----------
    graph:
        Inter-chiplet topology; nodes must be ``0 .. num_chiplets - 1``.
    config:
        Simulation configuration.
    traffic:
        Traffic pattern; defaults to uniform random over all endpoints.
    injection_rate:
        Offered load in flits per cycle per endpoint.
    routing:
        Optional prebuilt :class:`~repro.noc.routing.RoutingTables` for
        ``graph``.  Batched sweeps build the tables once per topology and
        share them across every point (they are immutable); when omitted
        the network builds its own.
    """

    def __init__(
        self,
        graph: ChipGraph,
        config: SimulationConfig,
        *,
        traffic: TrafficPattern | None = None,
        injection_rate: float = 0.1,
        routing: RoutingTables | None = None,
    ) -> None:
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise ValueError("the topology graph must use router ids 0 .. n-1")
        self.graph = graph
        self.config = config
        if routing is None:
            routing = RoutingTables(graph)
        elif routing.num_routers != len(nodes):
            raise ValueError(
                f"prebuilt routing tables cover {routing.num_routers} routers "
                f"but the graph has {len(nodes)}"
            )
        self.routing = routing

        self.num_routers = len(nodes)
        self.num_endpoints = self.num_routers * config.endpoints_per_chiplet
        if self.num_endpoints < 2:
            raise ValueError("a network needs at least two endpoints")

        self.endpoint_to_router = [
            endpoint // config.endpoints_per_chiplet for endpoint in range(self.num_endpoints)
        ]

        if traffic is None:
            traffic = UniformRandomTraffic(self.num_endpoints)
        if traffic.num_endpoints != self.num_endpoints:
            raise ValueError(
                f"traffic pattern is defined over {traffic.num_endpoints} endpoints "
                f"but the network has {self.num_endpoints}"
            )
        self.traffic = traffic
        # A reused pattern instance must not carry state from a previous
        # network's run (trace replay cursors); see TrafficPattern.reset.
        self.traffic.reset()
        self.injection = BernoulliInjection(injection_rate, config.packet_size_flits)

        self._packet_counter = 0
        self.routers: list[Router] = []
        self.endpoints: list[Endpoint] = []
        self._channels: list[tuple[Channel, _Sink]] = []
        self._channel_targets: list[ChannelTarget] = []

        self._build_routers()
        self._build_endpoints()
        self._wire_router_links()
        self._wire_endpoint_links()

    # -- construction ------------------------------------------------------------

    def _next_packet_id(self) -> int:
        self._packet_counter += 1
        return self._packet_counter

    def _build_routers(self) -> None:
        endpoints_per_chiplet = self.config.endpoints_per_chiplet
        for router_id in range(self.num_routers):
            neighbors = sorted(self.graph.neighbors(router_id))
            local_endpoints = [
                router_id * endpoints_per_chiplet + index
                for index in range(endpoints_per_chiplet)
            ]
            self.routers.append(
                Router(
                    router_id=router_id,
                    config=self.config,
                    routing=self.routing,
                    neighbor_routers=neighbors,
                    local_endpoints=local_endpoints,
                    endpoint_to_router=self.endpoint_to_router,
                )
            )

    def _build_endpoints(self) -> None:
        base_seed = self.config.seed
        for endpoint_id in range(self.num_endpoints):
            # Trace-driven patterns scale each source's offered load by its
            # share of the workload traffic (synthetic patterns return 1.0,
            # keeping the shared injection process).
            injection = self.injection.scaled(
                self.traffic.injection_rate_scale(endpoint_id)
            )
            endpoint = Endpoint(
                endpoint_id=endpoint_id,
                router_id=self.endpoint_to_router[endpoint_id],
                config=self.config,
                traffic=self.traffic,
                injection=injection,
                seed=base_seed * 1_000_003 + endpoint_id,
            )
            endpoint.set_packet_id_allocator(self._next_packet_id)
            self.endpoints.append(endpoint)

    def _register(self, channel: Channel, sink: _Sink, target: ChannelTarget) -> Channel:
        self._channels.append((channel, sink))
        self._channel_targets.append(target)
        return channel

    def _wire_router_links(self) -> None:
        link_latency = self.config.link_latency_cycles
        for source, destination in self.graph.edges():
            for u, v in ((source, destination), (destination, source)):
                sender = self.routers[u]
                receiver = self.routers[v]
                out_port = sender.port_of_neighbor(v)
                in_port = receiver.port_of_neighbor(u)

                flit_channel = Channel(link_latency, name=f"link {u}->{v}")
                sender.attach_output_channel(out_port, flit_channel)
                self._register(
                    flit_channel,
                    self._make_router_flit_sink(receiver, in_port),
                    ("router_flit", v, in_port),
                )

                credit_channel = Channel(link_latency, name=f"credit {v}->{u}")
                receiver.attach_credit_channel(in_port, credit_channel)
                self._register(
                    credit_channel,
                    self._make_router_credit_sink(sender, out_port),
                    ("router_credit", u, out_port),
                )

    def _wire_endpoint_links(self) -> None:
        local_latency = self.config.local_latency_cycles
        for endpoint in self.endpoints:
            router = self.routers[endpoint.router_id]
            port = router.port_of_endpoint(endpoint.endpoint_id)

            # Injection path: endpoint -> router, plus the credit return path.
            injection_channel = Channel(
                local_latency, name=f"inject {endpoint.endpoint_id}->{router.router_id}"
            )
            endpoint.attach_output_channel(injection_channel)
            self._register(
                injection_channel,
                self._make_router_flit_sink(router, port),
                ("router_flit", router.router_id, port),
            )

            injection_credit = Channel(
                local_latency, name=f"inject-credit {router.router_id}->{endpoint.endpoint_id}"
            )
            router.attach_credit_channel(port, injection_credit)
            self._register(
                injection_credit,
                self._make_endpoint_credit_sink(endpoint),
                ("endpoint_credit", endpoint.endpoint_id, -1),
            )

            # Ejection path: router -> endpoint (the endpoint is an infinite
            # sink, so no credit channel is needed in return).
            ejection_channel = Channel(
                local_latency, name=f"eject {router.router_id}->{endpoint.endpoint_id}"
            )
            router.attach_output_channel(port, ejection_channel)
            self._register(
                ejection_channel,
                self._make_endpoint_flit_sink(endpoint),
                ("endpoint_flit", endpoint.endpoint_id, -1),
            )

    @staticmethod
    def _make_router_flit_sink(router: Router, port: int) -> _Sink:
        def deliver(payload: object, now: int) -> None:
            assert isinstance(payload, Flit)
            router.accept_flit(port, payload, now)

        return deliver

    @staticmethod
    def _make_router_credit_sink(router: Router, port: int) -> _Sink:
        def deliver(payload: object, now: int) -> None:
            router.accept_credit(port, int(payload))  # payload is the VC index

        return deliver

    @staticmethod
    def _make_endpoint_flit_sink(endpoint: Endpoint) -> _Sink:
        def deliver(payload: object, now: int) -> None:
            assert isinstance(payload, Flit)
            endpoint.accept_flit(payload, now)

        return deliver

    @staticmethod
    def _make_endpoint_credit_sink(endpoint: Endpoint) -> _Sink:
        def deliver(payload: object, now: int) -> None:
            endpoint.accept_credit(int(payload))

        return deliver

    # -- batched reuse -----------------------------------------------------------

    def reset(self, *, seed: int | None = None, injection_rate: float | None = None) -> None:
        """Return the network to its just-built state under new point parameters.

        The structural state (routers, channels, wiring, routing tables)
        is immutable and survives; every piece of mutable simulation state
        — router buffers and pipelines, endpoint queues / RNG streams /
        counters, channel queues, the shared packet-id allocator — is
        reset in place, so a reset network produces **bit-identical**
        results to a freshly built ``Network(graph, config', ...)`` with
        the same seed and injection rate.  This is the seam the batched
        sweep engine uses to amortise network construction across the
        points of one sweep.
        """
        if seed is not None:
            self.config = replace(self.config, seed=seed)
        if injection_rate is not None:
            self.injection = BernoulliInjection(
                injection_rate, self.config.packet_size_flits
            )
        self._packet_counter = 0
        self.traffic.reset()
        base_seed = self.config.seed
        for endpoint in self.endpoints:
            endpoint.reset(
                seed=base_seed * 1_000_003 + endpoint.endpoint_id,
                injection=self.injection.scaled(
                    self.traffic.injection_rate_scale(endpoint.endpoint_id)
                ),
            )
        for router in self.routers:
            router.reset()
        for channel, _ in self._channels:
            channel.clear()

    # -- per-cycle operation --------------------------------------------------------

    def channel_sinks(self) -> list[tuple[Channel, _Sink]]:
        """The registered ``(channel, sink)`` pairs, in registration order.

        The registration order is the order :meth:`deliver_channels` scans
        the channels in; the active-set engine relies on it to replay
        same-cycle deliveries in exactly the same sequence.
        """
        return list(self._channels)

    def channel_targets(self) -> list[tuple[Channel, ChannelTarget]]:
        """The registered channels with structured delivery targets.

        Same registration order as :meth:`channel_sinks`; the vectorized
        engine uses the targets to route arrivals into its flat router
        state instead of going through the object-model sink closures.
        """
        return list(zip((channel for channel, _ in self._channels), self._channel_targets))

    def deliver_channels(self, now: int) -> None:
        """Deliver every payload whose channel latency has elapsed."""
        for channel, sink in self._channels:
            if channel.in_flight:
                for payload in channel.receive(now):
                    sink(payload, now)

    def step_endpoints(self, now: int, *, measured_phase: bool) -> None:
        """Let every endpoint generate and inject traffic."""
        for endpoint in self.endpoints:
            endpoint.step(now, measured_phase=measured_phase)

    def step_routers(self, now: int) -> None:
        """Let every router perform allocation and forwarding."""
        for router in self.routers:
            router.step(now)

    # -- introspection -----------------------------------------------------------------

    def flits_in_flight(self) -> int:
        """Flits currently stored in router buffers or traversing flit channels."""
        buffered = sum(router.buffered_flits for router in self.routers)
        on_channels = 0
        for channel, _ in self._channels:
            if not channel.in_flight:
                continue
            # Credit channels carry integers; flit channels carry Flit objects.
            for payload in channel.payloads():
                if isinstance(payload, Flit):
                    on_channels += 1
        return buffered + on_channels

    def in_flight_measured_packets(self) -> int:
        """Measured packets currently inside the network fabric.

        Counts head flits of measured packets sitting in router input
        buffers or traversing flit channels.  Packets still queued at their
        source endpoint are *not* included; use
        :meth:`Endpoint.in_flight_measured_packets` for those.
        """
        measured = sum(router.in_flight_measured_packets() for router in self.routers)
        for channel, _ in self._channels:
            if not channel.in_flight:
                continue
            for payload in channel.payloads():
                if isinstance(payload, Flit) and payload.is_head and payload.packet.measured:
                    measured += 1
        return measured

    def total_created_flits(self) -> int:
        """Total flits created by all endpoints (including still-queued ones)."""
        return sum(e.created_packets for e in self.endpoints) * self.config.packet_size_flits

    def total_ejected_flits(self) -> int:
        """Total flits delivered to their destination endpoints."""
        return sum(e.ejected_flits for e in self.endpoints)

    def total_source_queued_flits(self) -> int:
        """Flits of packets still waiting (entirely or partially) at their source."""
        total_injected = sum(e.injected_flits for e in self.endpoints)
        return self.total_created_flits() - total_injected

    def verify_flit_conservation(self) -> None:
        """Raise :class:`RuntimeError` if any flit was lost or duplicated."""
        created = self.total_created_flits()
        accounted = (
            self.total_ejected_flits()
            + self.flits_in_flight()
            + self.total_source_queued_flits()
        )
        if created != accounted:
            raise RuntimeError(
                f"flit conservation violated: created {created}, accounted {accounted}"
            )

    def make_rng(self) -> random.Random:
        """A fresh RNG derived from the configuration seed (for auxiliary uses)."""
        return random.Random(self.config.seed)
