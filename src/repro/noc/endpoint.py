"""Traffic endpoints (sources and sinks).

Each chiplet hosts ``endpoints_per_chiplet`` endpoints attached to the
chiplet's local router (Section VI-A of the paper uses two).  An endpoint
generates packets according to a traffic pattern and an injection process,
queues them in an unbounded source queue, injects their flits into the
router subject to credit availability, and receives (ejects) flits destined
to it.
"""

from __future__ import annotations

import random
from collections import deque

from repro.noc.channel import Channel
from repro.noc.config import SimulationConfig
from repro.noc.flit import Flit, Packet, build_flits
from repro.noc.traffic import BernoulliInjection, TrafficPattern


class Endpoint:
    """One traffic source / sink attached to a router.

    Parameters
    ----------
    endpoint_id:
        Global endpoint identifier.
    router_id:
        Identifier of the router the endpoint is attached to.
    config:
        Simulation configuration.
    traffic:
        Traffic pattern shared by all endpoints.
    injection:
        Injection process (Bernoulli with the configured flit rate).
    seed:
        Per-endpoint random seed (derived from the simulator seed).
    """

    #: Telemetry probe seams (class attributes, so the default instance
    #: carries no extra state): a :class:`~repro.telemetry.FlitTracer`
    #: records inject/eject lifecycle events, a
    #: :class:`~repro.telemetry.MetricsCollector` counts per-cycle flit
    #: flow.  Installed per run by the engines via
    #: :func:`repro.telemetry.install_probes`; ``None`` (the default)
    #: keeps the hot paths observation-free.
    tracer = None
    metrics = None

    def __init__(
        self,
        endpoint_id: int,
        router_id: int,
        config: SimulationConfig,
        traffic: TrafficPattern,
        injection: BernoulliInjection,
        seed: int,
    ) -> None:
        self.endpoint_id = endpoint_id
        self.router_id = router_id
        self._config = config
        self._traffic = traffic
        self._injection = injection
        self._rng = random.Random(seed)

        self._source_queue: deque[Packet] = deque()
        self._pending_flits: deque[Flit] = deque()
        self._current_vc: int | None = None
        self._credits = [config.buffer_depth_flits] * config.num_virtual_channels
        if config.num_virtual_channels == 1:
            self._injection_vcs: tuple[int, ...] = (0,)
        else:
            self._injection_vcs = config.adaptive_vcs

        self._out_channel: Channel | None = None

        # Counters and hooks used by the simulator for statistics.
        self.created_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        self.ejected_packets: list[Packet] = []
        self._next_packet_id_fn = None  # set by the network builder

    # -- wiring ----------------------------------------------------------------

    def attach_output_channel(self, channel) -> None:
        """Connect the injection channel towards the local router.

        Accepts any object with a ``send(payload, now)`` method: the
        network builder attaches the real :class:`Channel`, while the
        batched vectorized engine temporarily swaps in a lightweight
        emitter that writes straight into its event buckets.
        """
        self._out_channel = channel

    @property
    def out_channel(self):
        """The currently attached injection channel (or ``None``)."""
        return self._out_channel

    def set_packet_id_allocator(self, allocator) -> None:
        """Install the network-wide packet-id allocator callable."""
        self._next_packet_id_fn = allocator

    # -- engine seams (used by the vectorized cycle loop) --------------------------

    @property
    def rng(self) -> random.Random:
        """The endpoint's private RNG stream.

        Exposed so the vectorized engine can inline the per-cycle Bernoulli
        draw (``rng.random() < packet_probability``) without the method-call
        overhead of :meth:`step`; the draw order and count must match
        :meth:`_generate` exactly, which is what keeps all engines
        bit-identical.
        """
        return self._rng

    @property
    def packet_probability(self) -> float:
        """Per-cycle packet-creation probability of the injection process."""
        return self._injection.packet_probability

    @property
    def packet_id_allocator(self):
        """The installed network-wide packet-id allocator (or ``None``)."""
        return self._next_packet_id_fn

    def source_buffers(self) -> tuple[deque[Packet], deque[Flit]]:
        """The live ``(source_queue, pending_flits)`` deques of this endpoint.

        The vectorized engine polls these to decide whether
        :meth:`inject_pending` has any work to do; callers must only read
        them or append :class:`Packet` objects to the source queue the same
        way :meth:`_generate` does.
        """
        return self._source_queue, self._pending_flits

    def reset(self, *, seed: int, injection: BernoulliInjection) -> None:
        """Return the endpoint to its just-built state under a new seed / rate.

        Clears queues, credits and counters **in place** (the batched
        vectorized engine holds references to the deques and the ejected
        list across points) and replaces the RNG with a fresh stream — a
        reset endpoint is indistinguishable from a newly constructed one,
        which is what keeps batched sweep points bit-identical to
        per-point runs.
        """
        self._injection = injection
        # Re-seeding in place yields exactly the stream of a fresh
        # random.Random(seed) without the allocation.
        self._rng.seed(seed)
        self._source_queue.clear()
        self._pending_flits.clear()
        self._current_vc = None
        config = self._config
        self._credits = [config.buffer_depth_flits] * config.num_virtual_channels
        self.created_packets = 0
        self.injected_flits = 0
        self.ejected_flits = 0
        self.ejected_packets.clear()

    # -- externally driven events ------------------------------------------------

    def accept_credit(self, vc: int) -> None:
        """Register a credit returned by the router's injection input port."""
        self._credits[vc] += 1
        if self._credits[vc] > self._config.buffer_depth_flits:
            raise RuntimeError(
                f"endpoint {self.endpoint_id}: credit overflow on vc {vc}; "
                "flow control is broken"
            )

    def accept_flit(self, flit: Flit, now: int) -> None:
        """Receive (eject) a flit destined to this endpoint."""
        if flit.destination != self.endpoint_id:
            raise RuntimeError(
                f"endpoint {self.endpoint_id} received a flit for endpoint "
                f"{flit.destination}; routing is broken"
            )
        self.ejected_flits += 1
        metrics = self.metrics
        if metrics is not None:
            metrics._link += 1
            metrics._ej += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.eject(
                now, flit.packet.packet_id, flit.flit_index, self.endpoint_id, flit.vc
            )
        if flit.is_tail:
            flit.packet.ejection_cycle = now
            self.ejected_packets.append(flit.packet)

    # -- per-cycle operation -------------------------------------------------------

    def step(self, now: int, *, measured_phase: bool) -> None:
        """Generate new packets and inject at most one flit into the router."""
        self._generate(now, measured_phase)
        self.inject_pending(now)

    def _generate(self, now: int, measured_phase: bool) -> None:
        if not self._injection.should_inject(self._rng):
            return
        if self._next_packet_id_fn is None:
            raise RuntimeError("endpoint has no packet-id allocator attached")
        destination = self._traffic.destination(self.endpoint_id, self._rng)
        packet = Packet(
            packet_id=self._next_packet_id_fn(),
            source=self.endpoint_id,
            destination=destination,
            size_flits=self._config.packet_size_flits,
            creation_cycle=now,
            measured=measured_phase,
        )
        self._source_queue.append(packet)
        self.created_packets += 1

    def inject_pending(self, now: int) -> None:
        """Inject at most one flit of the queued packets, credit permitting.

        A no-op when both the source queue and the pending-flit queue are
        empty (it never consults the RNG), so engines may skip the call for
        idle endpoints without changing any observable behaviour.
        """
        if self._out_channel is None:
            raise RuntimeError("endpoint has no injection channel attached")
        # Start the next packet if the previous one has been fully sent.
        if not self._pending_flits and self._source_queue:
            vc = self._select_injection_vc()
            if vc is not None:
                packet = self._source_queue.popleft()
                self._pending_flits.extend(build_flits(packet))
                self._current_vc = vc
        if not self._pending_flits:
            return
        vc = self._current_vc
        assert vc is not None
        if self._credits[vc] <= 0:
            return
        flit = self._pending_flits.popleft()
        flit.vc = vc
        self._credits[vc] -= 1
        self._out_channel.send(flit, now)
        self.injected_flits += 1
        metrics = self.metrics
        if metrics is not None:
            metrics._inj += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.inject(
                now, flit.packet.packet_id, flit.flit_index, self.endpoint_id, vc
            )
        if flit.is_head:
            flit.packet.injection_cycle = now
        if flit.is_tail:
            self._current_vc = None

    def _select_injection_vc(self) -> int | None:
        """Pick the injection VC with the most available credits.

        Packets are injected on the adaptive virtual channels only (the
        escape channel is reserved for in-network deadlock avoidance),
        except when a single VC is configured, in which case everything
        travels on the up*/down*-routed channel.
        """
        best_vc: int | None = None
        best_credits = 0
        for vc in self._injection_vcs:
            if self._credits[vc] > best_credits:
                best_credits = self._credits[vc]
                best_vc = vc
        return best_vc

    def injection_state(self) -> tuple[list[int], tuple[int, ...]]:
        """Live ``(credits, injection_vcs)`` for the engines' fused fast path.

        The credit list is the live per-VC mutable state (also updated by
        :meth:`accept_credit`); callers replicating :meth:`inject_pending`
        must mirror its updates exactly.  Note the invariant the fast path
        relies on: whenever the pending-flit queue is empty, the current
        injection VC is ``None`` (a tail injection always clears it), so a
        fused single-flit injection never needs to touch it.
        """
        return self._credits, self._injection_vcs

    def injection_credits(self) -> int:
        """Total credits currently available on the injection VCs.

        When this is zero, :meth:`inject_pending` is guaranteed to be a
        no-op (no VC can be selected and no pending flit can move), so
        engines may skip the call for credit-starved endpoints.
        """
        return sum(self._credits[vc] for vc in self._injection_vcs)

    # -- introspection ---------------------------------------------------------------

    def in_flight_measured_packets(self) -> int:
        """Measured packets still held by this endpoint (not yet fully injected).

        Counts packets waiting in the source queue plus the packet whose
        flits are currently being streamed into the router (identified by
        its head flit still sitting in the pending-flit queue).
        """
        measured = sum(1 for packet in self._source_queue if packet.measured)
        measured += sum(
            1 for flit in self._pending_flits if flit.is_head and flit.packet.measured
        )
        return measured

    @property
    def source_queue_length(self) -> int:
        """Number of packets waiting in the (unbounded) source queue."""
        return len(self._source_queue) + (1 if self._pending_flits else 0)

    @property
    def offered_flit_rate(self) -> float:
        """Configured offered load in flits per cycle."""
        return self._injection.flit_rate
