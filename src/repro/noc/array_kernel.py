"""Array-native numpy cycle kernel over the flat ``(router, port, vc)`` state.

This module is the successor of the per-router masked *scans* of
:mod:`repro.noc.vec_engine`: instead of iterating the set bits of each
router's occupancy mask in Python, every pipeline stage of every router is
expressed as masked ndarray operations over the **whole network at once**
(and, through the slot axis, over every point of a batched sweep group —
the state arrays are shaped ``(slots, router-port-vc)``).

The flat coordinate is unchanged: ``g = base[router] + port * V + vc``,
ascending ``g`` being exactly the (port-major, vc-minor) order of the
object model's dense scans.  What is new is that *flits* become integer
ids into a side registry (parallel numpy attribute arrays plus the live
:class:`~repro.noc.flit.Flit` objects), so buffer pushes/pops, credit and
occupancy updates, switch allocation and channel traversal are all plain
array arithmetic; Python objects are only touched at the endpoint
boundary (packet generation / injection / ejection bookkeeping) and when
the final state is materialised back into the object model.

Equivalence contract
--------------------
Bit-identical to the legacy dense loop under the same configuration and
seed.  The non-obvious part is virtual-channel allocation, which in the
object model is *sequential*: candidates are visited in ascending ``g``
and each grant (an ``owner`` claim) is visible to every later candidate
of the same router.  The kernel reproduces that order exactly with a
round-based fixpoint:

* each round computes every unresolved candidate's decision **vectorized**
  against the current owner state (ejection / adaptive / escape paths,
  with numpy ``argmax`` reproducing the scalar first-strict-maximum
  tie-breaks);
* conflicting claims on one output VC are resolved to the lowest-``g``
  claimant (the one the sequential scan would have served first);
* a *no-grant* outcome always finalises: grants only ever shrink the free
  set, so a candidate that finds nothing under the current owner state
  finds nothing under the sequential state either (its side effect — the
  escape-patience tick — is owner-independent);
* a *winning* claim finalises only when no lower-``g`` candidate of the
  same router is still unresolved: a finalised claim on a *different*
  resource never changes a later candidate's decision (credit sums are
  owner-independent, and removing a non-chosen VC from the free set
  cannot move a first-strict-maximum), while the same resource would have
  been resolved by the lowest-``g`` rule;
* the lowest unresolved candidate of every router wins its claim by
  construction, so every round finalises at least one candidate per
  involved router and the loop terminates.

Switch allocation is one shot: per-port first-eligible-VC nomination is
an ``argmax`` over the ``(ports, V)`` view (the object model's VC
pointers never advance), and the per-output-port round-robin arbitration
becomes a lexsort by ``(router, (port - sa_ptr) mod nports)`` followed by
a first-occurrence unique over the requested output ports.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.noc.config import SimulationConfig
from repro.noc.engine import EngineStats, PhaseSnapshots, _injected_total, _phase_bounds
from repro.noc.flit import Flit, Packet
from repro.noc.network import Network
from repro.noc.router import _ACTIVE, _IDLE, _VC_ALLOC, RouterState

#: Channel-kind codes of the static channel tables (see ``Network``'s
#: channel targets): flit into a router port, credit into a router port,
#: flit ejected into an endpoint, credit returned to an endpoint.
_CK_ROUTER_FLIT = 0
_CK_ROUTER_CREDIT = 1
_CK_ENDPOINT_FLIT = 2
_CK_ENDPOINT_CREDIT = 3

_BIG = 1 << 60

#: Work-set size at or below which the per-cycle stages drop from the
#: vectorized path to an equivalent scalar loop over the same arrays.
#: Each masked-scatter stage costs tens of microseconds of fixed numpy
#: dispatch regardless of how many coordinates carry work; near zero
#: load (sweep tails, drain phases, low-rate points) that fixed cost
#: dominates, and a Python loop over a handful of flat coordinates is an
#: order of magnitude cheaper.  Both paths implement the identical
#: sequential semantics, so the threshold is purely a performance knob.
#: 32 keeps the whole zero-load regime of the 61-chiplet mesh (~20-60
#: flits in flight network-wide) on the scalar path; the measured
#: crossover to the vectorized path sits between 32 and 48 candidates.
_SCALAR_MAX = 32

#: Occupied-set size at or below which the vectorized stages gather
#: their candidates from the maintained occupied set (sorted into a
#: small index array) instead of scanning all G coordinates.  Above it
#: the O(G) masked scan is as cheap as the set conversion.
_ENUM_MAX = 512

#: Unresolved-set size at or below which the VC-allocation fixpoint
#: finishes its tail sequentially instead of running further vectorized
#: rounds.  After the first round drains the no-grant bulk and the
#: finalised winners, the survivors (blocked winners and conflict
#: losers) usually number a few dozen; at that size the scalar
#: ascending-g loop — the very semantics the rounds reproduce — is
#: cheaper than the two-to-three extra rounds the fixpoint would take.
_VA_TAIL_MAX = 64


class _KernelEmitter:
    """Drop-in ``send`` target for an endpoint's injection channel.

    Registers the outgoing flit in the kernel's flit registry and appends
    the ``(channel index, flit id)`` event straight into the kernel's
    per-cycle delivery buckets — the array counterpart of
    :class:`repro.noc.vec_engine._BatchEmitter`.
    """

    __slots__ = ("kernel", "index", "latency", "endpoint")

    def __init__(
        self, kernel: "ArrayKernel", index: int, latency: int, endpoint: int
    ) -> None:
        self.kernel = kernel
        self.index = index
        self.latency = latency
        self.endpoint = endpoint

    def send(self, flit: Flit, now: int) -> None:
        kernel = self.kernel
        kernel._inj_credits[self.endpoint] -= 1
        fid = kernel._register_flit(flit)
        arrival = now + self.latency
        bucket = kernel._pending.get(arrival)
        entry = (self.index, fid)
        if bucket is None:
            kernel._pending[arrival] = [entry]
        else:
            bucket.append(entry)


class ArrayKernel:
    """The array-native cycle kernel for one network (and many slots).

    One kernel owns the static layout (flat coordinates, routing tables,
    channel maps — shared by every slot and every sweep point) plus
    ``slots`` independent copies of the mutable router state, stacked
    along the leading axis of every state array.  A slot is one batch
    point of a same-structure candidate group: :class:`VectorizedEngine`
    uses a single slot, the batched engine gives each point of a group
    its own slot so the whole sweep's router state lives in one
    ``(points, router-port-vc)`` ndarray.

    The caller owns the endpoint side: it attaches the kernel's emitters
    (:meth:`endpoint_emitters`) to the endpoints before running and
    restores the real channels afterwards.
    """

    def __init__(self, network: Network, config: SimulationConfig, *, slots: int = 1) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self._network = network
        self._config = config
        self._slots = slots

        V = config.num_virtual_channels
        self._V = V
        self._depth = config.buffer_depth_flits
        self._router_latency = config.router_latency_cycles
        self._patience = config.escape_patience_cycles
        self._escape_vc = config.escape_vc
        self._adaptive = np.asarray(config.adaptive_vcs, dtype=np.int64)
        self._adaptive_list = [int(vc) for vc in config.adaptive_vcs]
        self._escape_only_all = V == 1

        routers = network.routers
        self._routers = routers
        self._endpoints = network.endpoints
        R = len(routers)
        self._R = R
        E = network.num_endpoints
        self._E = E

        nports = np.asarray([router.num_ports for router in routers], dtype=np.int64)
        self._nports = nports
        block = nports * V
        base = np.concatenate(([0], np.cumsum(block)))
        self._base = base[:-1]
        G = int(base[-1])
        self._G = G
        P = G // V  # total number of (router, port) pairs
        self._P = P

        self._router_of_g = np.repeat(np.arange(R, dtype=np.int64), block)
        self._router_of_port = np.repeat(np.arange(R, dtype=np.int64), nports)
        self._port_base = self._base // V  # first global port of each router
        is_ej = np.zeros(P, dtype=bool)
        for r, router in enumerate(routers):
            start = int(self._port_base[r])
            is_ej[start + router.num_router_ports : start + router.num_ports] = True
        self._is_ej_port = is_ej
        self._vrange = np.arange(V, dtype=np.int64)

        self._build_route_arrays()
        self._build_channel_arrays()

        # -- mutable state, one row per slot -------------------------------
        depth = self._depth
        self._q = np.full((slots, G, depth), -1, dtype=np.int64)
        self._qhead = np.zeros((slots, G), dtype=np.int64)
        self._qlen = np.zeros((slots, G), dtype=np.int64)
        self._state = np.full((slots, G), _IDLE, dtype=np.int8)
        self._credits = np.full((slots, G), depth, dtype=np.int64)
        self._owner_in = np.full((slots, G), -1, dtype=np.int64)
        self._out_g = np.full((slots, G), -1, dtype=np.int64)
        self._wait = np.zeros((slots, G), dtype=np.int64)
        self._route_key = np.full((slots, G), -1, dtype=np.int64)
        self._rcounts = np.zeros((slots, R), dtype=np.int64)
        self._sa_ptr = np.zeros((slots, R), dtype=np.int64)
        self._fwd = np.zeros((slots, R), dtype=np.int64)
        #: Cross-cycle no-grant cache.  ``_blocked[slot, g]`` records that
        #: candidate ``g`` last finalised as no-grant on the adaptive /
        #: escape path.  The adaptive path fails exactly when every
        #: adaptive VC of every valid minimal port is owned (credits do
        #: not enter the failure condition), and the escape path fails
        #: when the escape VC is owned or patience has not run out — so
        #: the verdict can only flip when an owner bit is *cleared* (a
        #: tail frees a VC; owner sets keep a failing verdict failing) or
        #: at the ``wait == escape_patience`` crossing.  The per-port
        #: free-event flags below make the re-decide test exact: a freed
        #: adaptive VC on port ``p`` un-blocks precisely the candidates
        #: with ``p`` among their minimal ports, a freed escape VC
        #: precisely the candidates escaping through ``p``.
        self._blocked = np.zeros((slots, G), dtype=bool)
        self._freed_adapt = np.zeros((slots, P), dtype=bool)
        self._freed_esc = np.zeros((slots, P), dtype=bool)
        #: Free adaptive VCs per (non-ejection) port, kept in lockstep
        #: with ``_owner_in`` by the allocation and forwarding stages.  A
        #: positive count is exactly the adaptive path's success test, so
        #: the expensive per-VC credit compute only runs for candidates
        #: that are guaranteed to claim.  Ejection-port entries are not
        #: maintained (nothing routes adaptively through them).
        self._free_adapt = np.full(
            (slots, P), len(self._adaptive), dtype=np.int64
        )
        #: Routes of packets loaded mid-flight whose head flit already left
        #: this router (no buffered flit to recover the destination from);
        #: only :meth:`load_from_network` populates it.
        self._route_override: dict[int, tuple[tuple[int, ...], int | None, bool]] = {}

        # The routers' own buffer deques (cleared in place by
        # ``Router.reset``), captured once so materialisation can refill
        # them without re-exporting.
        buffers: list = []
        for router in routers:
            snapshot = router.export_state()
            buffers.extend(snapshot.buffers)
        self._buffers = buffers

        # -- flit registry --------------------------------------------------
        self._flit_objs: list[Flit] = []
        self._reg_buf: list[Flit] = []
        capacity = 1024
        self._f_dest = np.zeros(capacity, dtype=np.int64)
        self._f_arrival = np.zeros(capacity, dtype=np.int64)
        self._f_hops = np.zeros(capacity, dtype=np.int64)
        self._f_vc = np.zeros(capacity, dtype=np.int64)
        self._f_head = np.zeros(capacity, dtype=bool)
        self._f_tail = np.zeros(capacity, dtype=bool)

        #: cycle -> list of (channel index, payload id) events; entries are
        #: scalar pairs (endpoint emitters) or ndarray pairs (forwards).
        self._pending: dict[int, list] = {}

        # Scratch buffers for the scatter-based arbitration (values are
        # only read back from slots written in the same pass, so none of
        # them need per-cycle clearing; ``_scratch_rr`` is restored to its
        # sentinel after every use).
        self._scratch_g = np.zeros(G, dtype=np.int64)
        self._scratch_nom = np.zeros(P, dtype=np.int64)
        self._scratch_port_mask = np.zeros(P, dtype=bool)
        self._scratch_rr = np.full(P, _BIG, dtype=np.int64)
        self._scratch_router_mask = np.zeros(R, dtype=bool)
        self._scratch_router_min = np.full(R, _BIG, dtype=np.int64)
        self._scratch_arange = np.arange(G, dtype=np.int64)
        #: Deferred ejection bookkeeping: (endpoint ids, flit ids, cycle)
        #: entries — ndarray groups from the vectorized delivery path,
        #: plain int pairs from the scalar one.
        self._eject_backlog: list[tuple] = []

        #: Mirror of each endpoint's injection-VC credit total, kept
        #: current by the emitters (send: -1) and by credit deliveries
        #: (+1 — a credit returned to an endpoint is always for an
        #: injection VC, since endpoints never inject on the escape VC).
        #: An endpoint at zero is credit-starved: ``inject_pending`` is a
        #: guaranteed no-op, so the cycle loop skips the call entirely.
        self._inj_credits: list[int] = [0] * len(self._endpoints)

        #: Exact per-slot set of occupied coordinates (``qlen > 0``),
        #: maintained by the delivery and forwarding stages.  Near-idle
        #: cycles enumerate allocation / switch candidates from it
        #: directly instead of running two O(G) masked scans.
        self._occ: list[set[int]] = [set() for _ in range(slots)]

        #: Per-run telemetry observers, set by :meth:`run_point` when a
        #: session is passed and always cleared again in its ``finally``.
        #: Stage methods test them against ``None``, so a run without
        #: telemetry pays nothing beyond the checks.
        self._mc = None
        self._tracer = None

    # -- static tables ------------------------------------------------------

    def _build_route_arrays(self) -> None:
        """Routing as flat gather tables keyed by ``router * E + destination``.

        ``rt_ej`` holds the ejection port's first output-VC coordinate for
        local destinations (-1 otherwise), ``rt_minp`` the (padded) block
        coordinates of the minimal output ports in the object model's
        preference order, ``rt_esc`` the escape output VC, ``rt_esco`` the
        escape-only flag — together exactly ``Router._compute_route`` with
        ejection folded in.
        """
        from repro.noc.vec_engine import build_route_tab

        network = self._network
        V = self._V
        route_tab = build_route_tab(network, self._escape_only_all)
        self._route_tab = route_tab
        R, E = self._R, self._E
        endpoint_to_router = network.endpoint_to_router

        kmax = 1
        for r in range(R):
            for dest in range(E):
                kmax = max(kmax, len(route_tab[r][dest][0]))
        rt_ej = np.full(R * E, -1, dtype=np.int64)
        rt_minp = np.full((R * E, kmax), -1, dtype=np.int64)
        rt_esc = np.full(R * E, -1, dtype=np.int64)
        rt_esco = np.zeros(R * E, dtype=bool)
        for r in range(R):
            base_r = int(self._base[r])
            for dest in range(E):
                key = r * E + dest
                minimal, escape_port, escape_only = route_tab[r][dest]
                rt_esc[key] = base_r + escape_port * V + self._escape_vc
                rt_esco[key] = escape_only
                if endpoint_to_router[dest] == r:
                    rt_ej[key] = base_r + minimal[0] * V
                else:
                    for k, port in enumerate(minimal):
                        rt_minp[key, k] = base_r + port * V
        self._rt_ej = rt_ej
        self._rt_minp = rt_minp
        self._rt_esc = rt_esc
        self._rt_esco = rt_esco
        # Global-port views of the same tables, for the no-grant cache's
        # dirty-port test (-1 padding preserved as -1).
        self._rt_minp_port = np.where(rt_minp >= 0, rt_minp // V, -1)
        self._rt_esc_port = rt_esc // V
        #: Plain-list mirrors of the static tables for the scalar fast
        #: paths, built lazily on first use (per-point runs that never go
        #: scalar skip the conversion entirely).
        self._rt_minp_list: list[list[int]] | None = None

    def _build_scalar_tabs(self) -> None:
        """Materialise the static tables as plain Python lists.

        The scalar fast paths index these per candidate; list indexing
        returns ready-to-use ints where ndarray indexing would hand back
        numpy scalars at several times the cost.
        """
        self._rt_minp_list = [
            [p for p in row if p >= 0] for row in self._rt_minp.tolist()
        ]
        self._rt_esc_list = self._rt_esc.tolist()
        self._rt_esco_list = self._rt_esco.tolist()
        self._is_ej_list = self._is_ej_port.tolist()
        self._router_of_port_list = self._router_of_port.tolist()
        self._router_of_g_list = self._router_of_g.tolist()
        self._port_base_list = self._port_base.tolist()
        self._nports_list = self._nports.tolist()
        self._out_chan_list = self._out_chan_of_port.tolist()
        self._credit_chan_list = self._credit_chan_of_port.tolist()
        self._chan_kind_list = self._chan_kind.tolist()
        self._chan_in_base_list = self._chan_in_base.tolist()
        self._chan_lat_list = self._chan_latency.tolist()

    def _build_channel_arrays(self) -> None:
        network = self._network
        V = self._V
        targets = network.channel_targets()
        self._channels = [channel for channel, _ in targets]
        C = len(targets)
        kind = np.zeros(C, dtype=np.int64)
        in_base = np.zeros(C, dtype=np.int64)
        latency = np.zeros(C, dtype=np.int64)
        index_of = {id(channel): i for i, (channel, _) in enumerate(targets)}
        for i, (channel, target) in enumerate(targets):
            target_kind, owner_id, port = target
            latency[i] = channel.latency
            if target_kind == "router_flit":
                kind[i] = _CK_ROUTER_FLIT
                in_base[i] = self._base[owner_id] + port * V
            elif target_kind == "router_credit":
                kind[i] = _CK_ROUTER_CREDIT
                in_base[i] = self._base[owner_id] + port * V
            elif target_kind == "endpoint_flit":
                kind[i] = _CK_ENDPOINT_FLIT
                in_base[i] = owner_id
            elif target_kind == "endpoint_credit":
                kind[i] = _CK_ENDPOINT_CREDIT
                in_base[i] = owner_id
            else:  # pragma: no cover - new target kinds must be wired here
                raise ValueError(f"unknown channel target kind {target_kind!r}")
        self._chan_kind = kind
        self._chan_in_base = in_base
        self._chan_latency = latency
        self._chan_lat_values = [int(lat) for lat in np.unique(latency)] or [0]

        # Output / credit channel of every global (router, port) pair.
        P = self._P
        out_chan = np.full(P, -1, dtype=np.int64)
        credit_chan = np.full(P, -1, dtype=np.int64)
        for r, router in enumerate(self._routers):
            start = int(self._port_base[r])
            for port, channel in enumerate(router.output_channels()):
                if channel is not None:
                    out_chan[start + port] = index_of[id(channel)]
            for port, channel in enumerate(router.input_credit_channels()):
                if channel is not None:
                    credit_chan[start + port] = index_of[id(channel)]
        self._out_chan_of_port = out_chan
        self._credit_chan_of_port = credit_chan

        injection_index = {}
        for endpoint in self._endpoints:
            channel = endpoint.out_channel
            if channel is None or id(channel) not in index_of:
                raise RuntimeError("endpoint has no registered injection channel")
            injection_index[endpoint.endpoint_id] = (
                index_of[id(channel)],
                channel.latency,
            )
        self._injection_index = injection_index

    # -- registry -----------------------------------------------------------

    def _register_flit(self, flit: Flit) -> int:
        """Assign a flit id; the array columns follow at the next flush.

        Registrations batch up in ``_reg_buf`` so the six per-flit scalar
        array writes become six vectorized slice writes per cycle.  Every
        reader of the ``_f_*`` columns flushes first (the cycle loop at
        the top of each cycle — channel latencies are >= 1, so a flit's
        columns are always flushed before its arrival is processed — plus
        ejection flushing and materialisation).
        """
        fid = len(self._flit_objs)
        self._flit_objs.append(flit)
        self._reg_buf.append(flit)
        return fid

    def _flush_registry(self) -> None:
        buf = self._reg_buf
        if not buf:
            return
        end = len(self._flit_objs)
        start = end - len(buf)
        capacity = len(self._f_dest)
        if end > capacity:
            grow = max(capacity * 2, end)
            self._f_dest = np.resize(self._f_dest, grow)
            self._f_arrival = np.resize(self._f_arrival, grow)
            self._f_hops = np.resize(self._f_hops, grow)
            self._f_vc = np.resize(self._f_vc, grow)
            self._f_head = np.resize(self._f_head, grow)
            self._f_tail = np.resize(self._f_tail, grow)
        sl = slice(start, end)
        self._f_dest[sl] = [flit.destination for flit in buf]
        self._f_arrival[sl] = [flit.arrival_cycle for flit in buf]
        self._f_hops[sl] = [flit.hops for flit in buf]
        self._f_vc[sl] = [flit.vc for flit in buf]
        self._f_head[sl] = [flit.is_head for flit in buf]
        self._f_tail[sl] = [flit.is_tail for flit in buf]
        buf.clear()

    # -- slot lifecycle -----------------------------------------------------

    def endpoint_emitters(self) -> list[_KernelEmitter]:
        """One registering emitter per endpoint (ascending endpoint id)."""
        return [
            _KernelEmitter(
                self,
                *self._injection_index[endpoint.endpoint_id],
                endpoint.endpoint_id,
            )
            for endpoint in self._endpoints
        ]

    def refresh(self, slot: int) -> None:
        """Reset one slot to the pristine just-reset state (cheap array fills)."""
        self._qlen[slot] = 0
        self._qhead[slot] = 0
        self._state[slot] = _IDLE
        self._credits[slot] = self._depth
        self._owner_in[slot] = -1
        self._out_g[slot] = -1
        self._wait[slot] = 0
        self._route_key[slot] = -1
        self._rcounts[slot] = 0
        self._sa_ptr[slot] = 0
        self._fwd[slot] = 0
        self._blocked[slot] = False
        self._freed_adapt[slot] = False
        self._freed_esc[slot] = False
        self._free_adapt[slot] = len(self._adaptive)
        self._occ[slot].clear()
        self._route_override.clear()

    def load_from_network(self, slot: int) -> None:
        """Capture the routers' and channels' current state into a slot.

        Handles arbitrary (also mid-run) network state: buffered flits are
        registered in the flit registry, in-flight channel payloads move
        into the delivery buckets with their true arrival cycles, and
        routes whose destination is no longer recoverable from a buffered
        head flit are kept aside for materialisation.
        """
        self.refresh(slot)
        V, E = self._V, self._E
        q = self._q[slot]
        qlen = self._qlen[slot]
        state = self._state[slot]
        credits = self._credits[slot]
        owner_in = self._owner_in[slot]
        out_g = self._out_g[slot]
        wait = self._wait[slot]
        route_key = self._route_key[slot]
        for r, router in enumerate(self._routers):
            snapshot = router.export_state()
            base_r = int(self._base[r])
            for idx in range(router.num_ports * V):
                g = base_r + idx
                buffer = snapshot.buffers[idx]
                for k, flit in enumerate(buffer):
                    q[g, k] = self._register_flit(flit)
                qlen[g] = len(buffer)
                state[g] = snapshot.states[idx]
                credits[g] = snapshot.credits[idx]
                owner = snapshot.owners[idx]
                if owner is not None:
                    owner_in[g] = base_r + owner[0] * V + owner[1]
                out_port = snapshot.out_ports[idx]
                if out_port is not None:
                    out_g[g] = base_r + out_port * V + snapshot.out_vcs[idx]
                wait[g] = snapshot.alloc_wait_cycles[idx]
                if snapshot.states[idx] != _IDLE:
                    if buffer:
                        route_key[g] = r * E + buffer[0].destination
                    else:
                        self._route_override[g] = (
                            snapshot.minimal_ports[idx],
                            snapshot.escape_ports[idx],
                            snapshot.escape_only[idx],
                        )
            self._rcounts[slot, r] = snapshot.buffered_flits
            self._sa_ptr[slot, r] = snapshot.sa_port_pointer
            self._fwd[slot, r] = snapshot.forwarded_flits
        # In-flight channel payloads become pre-timed bucket events.
        for index, channel in enumerate(self._channels):
            if not channel.in_flight:
                continue
            flit_channel = self._chan_kind[index] in (_CK_ROUTER_FLIT, _CK_ENDPOINT_FLIT)
            for arrival, payload in channel.pending():
                event = self._register_flit(payload) if flit_channel else int(payload)
                bucket = self._pending.get(int(arrival))
                entry = (index, event)
                if bucket is None:
                    self._pending[int(arrival)] = [entry]
                else:
                    bucket.append(entry)
            channel.clear()
        self._flush_registry()
        self._occ[slot].update(np.nonzero(qlen > 0)[0].tolist())
        if len(self._adaptive):
            self._free_adapt[slot] = (
                owner_in.reshape(self._P, V)[:, self._adaptive] < 0
            ).sum(axis=1)

    def reset_events(self) -> None:
        """Clear the registry, the event buckets and the ejection backlog."""
        self._flit_objs.clear()
        self._reg_buf.clear()
        self._pending.clear()
        self._eject_backlog.clear()

    # -- generation ---------------------------------------------------------

    def precompute_generation(self, measure_end: int) -> dict[int, list]:
        """Consume every endpoint RNG stream into per-cycle creation events.

        Identical (and identically ordered) to the streaming engines' draw
        sequence — endpoint RNG streams are private, so front-loading them
        is invisible; buckets are appended endpoint-major per cycle,
        matching the ascending-endpoint stepping order that pins the
        shared packet-id allocator sequence.
        """
        gen_buckets: dict[int, list] = {}
        traffic_destination = self._network.traffic.destination
        for endpoint in self._endpoints:
            probability = endpoint.packet_probability
            if probability <= 0.0:
                continue
            if endpoint.packet_id_allocator is None:
                raise RuntimeError("endpoint has no packet-id allocator attached")
            rng = endpoint.rng
            draw = rng.random
            endpoint_id = endpoint.endpoint_id
            source_queue, _ = endpoint.source_buffers()
            row = (endpoint, endpoint_id, source_queue)
            for cycle in range(measure_end):
                if draw() < probability:
                    entry = (row, traffic_destination(endpoint_id, rng))
                    bucket = gen_buckets.get(cycle)
                    if bucket is None:
                        gen_buckets[cycle] = [entry]
                    else:
                        bucket.append(entry)
        return gen_buckets

    # -- the cycle loop -----------------------------------------------------

    def run_point(
        self, slot: int, stats: EngineStats, telemetry=None
    ) -> PhaseSnapshots:
        """Advance one slot to the end of the drain phase (or early exit).

        The caller must have attached the kernel's endpoint emitters and
        prepared the slot (:meth:`refresh` after a ``Network.reset``, or
        :meth:`load_from_network`).  The final state is materialised back
        into the object model unconditionally, also when the loop raises.

        ``telemetry`` is an optional
        :class:`~repro.telemetry.TelemetrySession`.  Its collector and
        tracer observe the *semantic* cycles — flit deliveries and
        ejections are counted at the cycle the object model would have
        performed them, not at the cycle the backlog is flushed — so the
        recorded series and event streams are bit-identical to the
        object engines' under the same configuration and seed.
        """
        network = self._network
        config = self._config
        warmup_end, measure_end, total_cycles = _phase_bounds(config)
        packet_size = config.packet_size_flits

        metrics = tracer = prof = None
        if telemetry is not None:
            metrics = telemetry.metrics
            tracer = telemetry.tracer
            prof = telemetry.profiler
        self._mc = metrics
        self._tracer = tracer
        if metrics is not None or tracer is not None:
            # The non-fused injection path goes through the real
            # ``Endpoint.inject_pending``, which carries its own probe
            # seam; ejections and in-kernel hops are instrumented by the
            # kernel stages directly.
            for endpoint in self._endpoints:
                endpoint.metrics = metrics
                endpoint.tracer = tracer

        gen_buckets = self.precompute_generation(measure_end)
        endpoints = self._endpoints
        next_packet_id = endpoints[0].packet_id_allocator
        num_endpoints_total = len(endpoints)
        # Per-endpoint injection rows.  For single-flit packets the cycle
        # loop replays ``Endpoint.inject_pending`` inline (VC selection,
        # credit decrement, counters, and the emitter's bucket append all
        # fused), which is bit-identical because a single-flit injection
        # with available credits always completes in one call and leaves
        # no mid-stream state behind; anything else falls back to the
        # real method.
        fast_inject = packet_size == 1
        inject_rows = []
        for endpoint in endpoints:
            credits_ep, injection_vcs = endpoint.injection_state()
            chan_index, chan_latency = self._injection_index[endpoint.endpoint_id]
            inject_rows.append(
                (
                    endpoint,
                    endpoint.inject_pending,
                    *endpoint.source_buffers(),
                    credits_ep,
                    injection_vcs,
                    chan_index,
                    chan_latency,
                )
            )
        flit_objs = self._flit_objs
        reg_buf = self._reg_buf
        inj_credits = self._inj_credits
        inj_credits[:] = [endpoint.injection_credits() for endpoint in endpoints]
        # Endpoints with work already queued (a mid-run network handed to
        # the engine) must inject from cycle 0, like the legacy stepper.
        active: set[int] = {
            endpoint.endpoint_id
            for endpoint in endpoints
            if any(endpoint.source_buffers())
        }
        pending = self._pending
        total_buffered = int(self._qlen[slot].sum())
        if self._rt_minp_list is None:
            self._build_scalar_tabs()
        router_of_g_list = self._router_of_g_list

        ejected_before = ejected_after = 0
        injected_before = injected_after = 0

        try:
            cycle = 0
            while cycle < total_cycles:
                self._flush_registry()
                if cycle == warmup_end:
                    self._flush_ejections()
                    ejected_before = network.total_ejected_flits()
                    injected_before = _injected_total(network)
                if cycle == measure_end:
                    self._flush_ejections()
                    ejected_after = network.total_ejected_flits()
                    injected_after = _injected_total(network)
                if cycle >= measure_end and not pending and total_buffered == 0:
                    stats.early_exit_cycle = cycle
                    break

                if prof is not None:
                    t_stage = perf_counter()
                bucket = pending.pop(cycle, None)
                if bucket is not None:
                    total_buffered += self._deliver(slot, bucket, cycle, stats)
                if prof is not None:
                    t_now = perf_counter()
                    prof.add("deliver", t_now - t_stage)
                    t_stage = t_now

                if cycle < measure_end:
                    events = gen_buckets.pop(cycle, None)
                    if events is not None:
                        measured = cycle >= warmup_end
                        for (endpoint, endpoint_id, source_queue), destination in events:
                            source_queue.append(
                                Packet(
                                    next_packet_id(),
                                    endpoint_id,
                                    destination,
                                    packet_size,
                                    cycle,
                                    measured,
                                )
                            )
                            endpoint.created_packets += 1
                            active.add(endpoint_id)
                    if active:
                        for endpoint_id in sorted(active):
                            # Credit-starved endpoints cannot move a flit
                            # and stay active (their queues are non-empty
                            # by construction), so the call is skipped.
                            if not inj_credits[endpoint_id]:
                                continue
                            (
                                endpoint,
                                inject,
                                source_queue,
                                pending_flits,
                                credits_ep,
                                injection_vcs,
                                chan_index,
                                chan_latency,
                            ) = inject_rows[endpoint_id]
                            if fast_inject and not pending_flits:
                                # inject_pending, fused: pick the
                                # injection VC with the most credits
                                # (first wins ties; one exists because
                                # the credit total is positive), move
                                # the packet's only flit onto it and
                                # emit straight into the buckets.
                                best_vc = -1
                                best_credits = 0
                                for vc in injection_vcs:
                                    c = credits_ep[vc]
                                    if c > best_credits:
                                        best_credits = c
                                        best_vc = vc
                                packet = source_queue.popleft()
                                flit = Flit(packet, 0, True, True, best_vc)
                                credits_ep[best_vc] -= 1
                                inj_credits[endpoint_id] -= 1
                                fid = len(flit_objs)
                                flit_objs.append(flit)
                                reg_buf.append(flit)
                                arrival = cycle + chan_latency
                                bucket = pending.get(arrival)
                                if bucket is None:
                                    pending[arrival] = [(chan_index, fid)]
                                else:
                                    bucket.append((chan_index, fid))
                                endpoint.injected_flits += 1
                                packet.injection_cycle = cycle
                                if metrics is not None:
                                    metrics._inj += 1
                                if tracer is not None:
                                    tracer.inject(
                                        cycle,
                                        packet.packet_id,
                                        0,
                                        endpoint_id,
                                        best_vc,
                                    )
                            else:
                                inject(cycle)
                            if not source_queue and not pending_flits:
                                active.discard(endpoint_id)
                    stats.endpoint_steps += num_endpoints_total
                if prof is not None:
                    t_now = perf_counter()
                    prof.add("inject", t_now - t_stage)
                    t_stage = t_now

                if total_buffered:
                    occ = self._occ[slot]
                    small = len(occ) <= _SCALAR_MAX
                    if small:
                        occ_list = sorted(occ)
                        stats.router_steps += len(
                            {router_of_g_list[g] for g in occ_list}
                        )
                    else:
                        stats.router_steps += int(
                            np.count_nonzero(self._rcounts[slot])
                        )
                        if len(occ) <= _ENUM_MAX:
                            occ_arr = np.fromiter(occ, np.int64, len(occ))
                            occ_arr.sort()
                        else:
                            occ_arr = None
                    if small:
                        self._allocate_small(slot, cycle, occ_list)
                    else:
                        self._allocate(slot, cycle, occ_arr)
                    if prof is not None:
                        t_now = perf_counter()
                        prof.add("va", t_now - t_stage)
                        t_stage = t_now
                    if small:
                        total_buffered -= self._switch_small(
                            slot, cycle, occ_list
                        )
                    else:
                        total_buffered -= self._switch_and_forward(
                            slot, cycle, occ_arr
                        )
                    if prof is not None:
                        prof.add("sa", perf_counter() - t_stage)

                if metrics is not None:
                    backlog = 0
                    for endpoint in endpoints:
                        backlog += endpoint.source_queue_length
                    metrics.record_cycle(
                        buffered=total_buffered,
                        vc_stalls=int(
                            np.count_nonzero(self._state[slot] == _VC_ALLOC)
                        ),
                        backlog=backlog,
                    )
                stats.cycles_executed += 1
                cycle += 1
        finally:
            # The flush must run while the tracer is still installed: it
            # emits the deferred eject events at their semantic cycles.
            if prof is not None:
                t_stage = perf_counter()
            self._flush_ejections()
            self._materialize(slot)
            if prof is not None:
                prof.add("flush", perf_counter() - t_stage)
            self._mc = None
            self._tracer = None
            if metrics is not None or tracer is not None:
                for endpoint in self._endpoints:
                    endpoint.metrics = None
                    endpoint.tracer = None
        if metrics is not None:
            metrics.finalize(total_cycles)

        if int(self._qlen[slot].sum()) != total_buffered:
            raise RuntimeError(
                "array kernel lost track of buffered flits: tables hold "
                f"{int(self._qlen[slot].sum())}, counters say {total_buffered}"
            )
        if len(self._adaptive):
            expected = (
                self._owner_in[slot].reshape(self._P, self._V)[:, self._adaptive]
                < 0
            ).sum(axis=1)
            drift = ~self._is_ej_port & (self._free_adapt[slot] != expected)
            if drift.any():
                raise RuntimeError(
                    "array kernel free-VC counters drifted from the owner "
                    f"table on ports {np.nonzero(drift)[0].tolist()}"
                )

        if config.drain_cycles == 0:
            ejected_after = network.total_ejected_flits()
            injected_after = _injected_total(network)

        return PhaseSnapshots(
            ejected_before_measurement=ejected_before,
            injected_before_measurement=injected_before,
            ejected_after_measurement=ejected_after,
            injected_after_measurement=injected_after,
            total_cycles=total_cycles,
            cycles_executed=stats.cycles_executed,
        )

    # -- stage: channel deliveries -----------------------------------------

    def _deliver(self, slot: int, bucket: list, now: int, stats: EngineStats) -> int:
        """Apply one cycle's channel arrivals to the flat state.

        Returns the change in buffered-flit count.  Delivery order within
        a cycle is immaterial here: every payload lands on a distinct
        target coordinate (a channel delivers at most one payload per
        cycle and distinct channels feed distinct ports / endpoints), so
        the vectorized scatters are conflict-free and equivalent to the
        object model's channel-registration-order replay.
        """
        array_chans: list[np.ndarray] = []
        array_payloads: list[np.ndarray] = []
        scalar_chans: list[int] = []
        scalar_payloads: list[int] = []
        for chan, payload in bucket:
            if isinstance(chan, np.ndarray):
                array_chans.append(chan)
                array_payloads.append(payload)
            else:
                scalar_chans.append(chan)
                scalar_payloads.append(payload)
        if not array_chans and len(scalar_chans) <= _SCALAR_MAX:
            return self._deliver_scalar(
                slot, scalar_chans, scalar_payloads, now, stats
            )
        if scalar_chans:
            array_chans.append(np.asarray(scalar_chans, dtype=np.int64))
            array_payloads.append(np.asarray(scalar_payloads, dtype=np.int64))
        chans = array_chans[0] if len(array_chans) == 1 else np.concatenate(array_chans)
        payloads = (
            array_payloads[0]
            if len(array_payloads) == 1
            else np.concatenate(array_payloads)
        )
        stats.channel_deliveries += len(chans)

        kinds = self._chan_kind[chans]
        in_base = self._chan_in_base[chans]
        delta = 0

        mask = kinds == _CK_ROUTER_FLIT
        if mask.any():
            fids = payloads[mask]
            g = in_base[mask] + self._f_vc[fids]
            qlen = self._qlen[slot]
            if np.any(qlen[g] >= self._depth):
                self._raise_overflow(g[qlen[g] >= self._depth][0])
            self._q[slot][g, (self._qhead[slot][g] + qlen[g]) % self._depth] = fids
            qlen[g] += 1
            self._occ[slot].update(g.tolist())
            self._f_arrival[fids] = now
            np.add.at(self._rcounts[slot], self._router_of_g[g], 1)
            delta += len(g)
            if self._mc is not None:
                self._mc._link += len(g)
            if self._tracer is not None:
                self._trace_router_flits(
                    self._tracer.link_traverse, g.tolist(), fids.tolist(), now
                )

        mask = kinds == _CK_ROUTER_CREDIT
        if mask.any():
            gc = in_base[mask] + payloads[mask]
            self._credits[slot][gc] += 1

        mask = kinds == _CK_ENDPOINT_FLIT
        if mask.any():
            fids = payloads[mask]
            self._eject_backlog.append((in_base[mask], fids, now))
            if self._mc is not None:
                # Ejections are *counted* at the delivery cycle (the cycle
                # the object model's endpoint would have accepted them);
                # only the Python-object bookkeeping is deferred.
                self._mc._link += len(fids)
                self._mc._ej += len(fids)

        mask = kinds == _CK_ENDPOINT_CREDIT
        if mask.any():
            endpoints = self._endpoints
            inj_credits = self._inj_credits
            for endpoint_id, vc in zip(
                in_base[mask].tolist(), payloads[mask].tolist()
            ):
                endpoints[endpoint_id].accept_credit(vc)
                inj_credits[endpoint_id] += 1
        return delta

    def _deliver_scalar(
        self,
        slot: int,
        chans: list[int],
        payloads: list[int],
        now: int,
        stats: EngineStats,
    ) -> int:
        """Scalar replay of :meth:`_deliver` for a handful of events.

        Same conflict-free bookkeeping (processing order within a cycle
        is immaterial, see :meth:`_deliver`), Python-int arithmetic.
        """
        if self._rt_minp_list is None:
            self._build_scalar_tabs()
        stats.channel_deliveries += len(chans)
        chan_kind = self._chan_kind_list
        chan_in_base = self._chan_in_base_list
        router_of_g = self._router_of_g_list
        qlen = self._qlen[slot]
        qhead = self._qhead[slot]
        q = self._q[slot]
        credits = self._credits[slot]
        rcounts = self._rcounts[slot]
        occ = self._occ[slot]
        depth = self._depth
        delta = 0
        mc = self._mc
        tracer = self._tracer
        for chan, payload in zip(chans, payloads):
            kind = chan_kind[chan]
            in_base = chan_in_base[chan]
            if kind == _CK_ROUTER_FLIT:
                g = in_base + int(self._f_vc[payload])
                if qlen[g] >= depth:
                    self._raise_overflow(g)
                q[g, (int(qhead[g]) + int(qlen[g])) % depth] = payload
                qlen[g] += 1
                occ.add(g)
                self._f_arrival[payload] = now
                rcounts[router_of_g[g]] += 1
                delta += 1
                if mc is not None:
                    mc._link += 1
                if tracer is not None:
                    self._trace_router_flits(
                        tracer.link_traverse, (g,), (payload,), now
                    )
            elif kind == _CK_ROUTER_CREDIT:
                credits[in_base + payload] += 1
            elif kind == _CK_ENDPOINT_FLIT:
                self._eject_backlog.append((in_base, payload, now))
                if mc is not None:
                    mc._link += 1
                    mc._ej += 1
            else:
                self._endpoints[in_base].accept_credit(payload)
                self._inj_credits[in_base] += 1
        return delta

    def _raise_overflow(self, g: int) -> None:
        r = int(self._router_of_g[g])
        port = g // self._V - int(self._port_base[r])
        raise RuntimeError(
            f"router {self._routers[r].router_id}: input buffer overflow on "
            f"port {port} vc {g % self._V}; credit flow control is broken"
        )

    # -- telemetry emitters --------------------------------------------------

    def _trace_router_flits(self, emit, gs, fids, now: int) -> None:
        """Emit one tracer event per ``(input g, flit id)`` pair.

        ``emit`` is a bound :class:`~repro.telemetry.FlitTracer` method
        with the router signature (``link_traverse`` at delivery time,
        ``sa_grant`` at forward time); the port is the router-local input
        port and the VC the input VC, matching the object model's hooks.
        """
        V = self._V
        flit_objs = self._flit_objs
        router_of_g = self._router_of_g_list
        port_base = self._port_base_list
        routers = self._routers
        for g, fid in zip(gs, fids):
            flit = flit_objs[fid]
            r = router_of_g[g]
            emit(
                now,
                flit.packet.packet_id,
                flit.flit_index,
                routers[r].router_id,
                g // V - port_base[r],
                g % V,
            )

    def _trace_vc_grants(self, slot: int, pairs, now: int) -> None:
        """Emit one ``vc_grant`` event per granted ``(input g, output g)``.

        Called at grant time, before the switch stage pops the head flit,
        so ``q[g, qhead[g]]`` is exactly the head the object model's
        ``_grant_output`` hook reports.
        """
        tracer = self._tracer
        q = self._q[slot]
        qhead = self._qhead[slot]
        V = self._V
        flit_objs = self._flit_objs
        router_of_g = self._router_of_g_list
        port_base = self._port_base_list
        routers = self._routers
        for g, cg in pairs:
            flit = flit_objs[int(q[g, qhead[g]])]
            r = router_of_g[g]
            tracer.vc_grant(
                now,
                flit.packet.packet_id,
                flit.flit_index,
                routers[r].router_id,
                cg // V - port_base[r],
                cg % V,
            )

    # -- stage: route computation + VC allocation ---------------------------

    def _allocate(
        self, slot: int, now: int, occ_arr: np.ndarray | None = None
    ) -> None:
        state = self._state[slot]
        if occ_arr is None:
            qlen = self._qlen[slot]
            cand = np.nonzero((qlen > 0) & (state != _ACTIVE))[0]
        else:
            # Pre-enumerated occupied coordinates (sorted): a gather over
            # the handful of busy VCs replaces the O(G) masked scan.
            cand = occ_arr[state[occ_arr] != _ACTIVE]
        if not len(cand):
            return
        q = self._q[slot]

        # Route computation, hoisted: it is pure per-candidate state (no
        # cross-VC effects), so computing it for every idle candidate up
        # front is equivalent to the object model's lazy in-scan compute.
        idle = cand[state[cand] == _IDLE]
        if len(idle):
            heads = q[idle, self._qhead[slot][idle]]
            if not np.all(self._f_head[heads]):
                self._raise_nonhead(int(idle[~self._f_head[heads]][0]))
            self._route_key[slot][idle] = (
                self._router_of_g[idle] * self._E + self._f_dest[heads]
            )
            self._wait[slot][idle] = 0
            # A fresh head means a fresh decision: drop any stale no-grant
            # verdict left behind by the VC's previous packet.
            self._blocked[slot][idle] = False
            state[idle] = _VC_ALLOC

        self._va_rounds(slot, cand, now)

    def _raise_nonhead(self, g: int) -> None:
        r = int(self._router_of_g[g])
        port = g // self._V - int(self._port_base[r])
        raise RuntimeError(
            f"router {self._routers[r].router_id}: non-head flit at the "
            f"front of an idle VC (port {port}, vc {g % self._V}); "
            "packet framing is broken"
        )

    def _allocate_small(self, slot: int, now: int, occ: list[int]) -> None:
        """Scalar candidate enumeration for a near-idle cycle.

        ``occ`` is the sorted occupied-coordinate list; filtering it by
        state replaces :meth:`_allocate`'s O(G) masked scan, and the
        idle-VC route computation runs per candidate.  The allocation
        itself still funnels through :meth:`_va_rounds`, which takes its
        own scalar path at these sizes.
        """
        state = self._state[slot]
        cand = [g for g in occ if state[g] != _ACTIVE]
        if not cand:
            return
        qhead = self._qhead[slot]
        q = self._q[slot]
        route_key = self._route_key[slot]
        wait = self._wait[slot]
        blocked = self._blocked[slot]
        router_of_g = self._router_of_g_list
        E = self._E
        for g in cand:
            if state[g] == _IDLE:
                fid = int(q[g, qhead[g]])
                if not self._f_head[fid]:
                    self._raise_nonhead(g)
                route_key[g] = router_of_g[g] * E + int(self._f_dest[fid])
                wait[g] = 0
                blocked[g] = False
                state[g] = _VC_ALLOC
        self._va_rounds(slot, np.asarray(cand, dtype=np.int64), now)

    def _switch_small(self, slot: int, now: int, occ: list[int]) -> int:
        """Scalar switch-candidate enumeration for a near-idle cycle."""
        state = self._state[slot]
        act = [g for g in occ if state[g] == _ACTIVE]
        if not act:
            return 0
        return self._switch_scalar(slot, act, now)

    def _va_rounds(self, slot: int, unresolved: np.ndarray, now: int) -> None:
        """Sequential-order VC allocation (see module docstring).

        Ejection-bound candidates split off first: ejection-port VCs are
        disjoint from the router-port VCs the adaptive and escape paths
        allocate, so the two candidate classes never interact and the
        per-port sequential scan has the closed form of
        :meth:`_resolve_ejection` — which also removes the round-serial
        behaviour hot ejection ports would otherwise impose (one round
        per queued claimant).  The remaining candidates run the
        round-based fixpoint.
        """
        key = self._route_key[slot][unresolved]
        ejb = self._rt_ej[key]
        is_ej = ejb >= 0
        if is_ej.any():
            self._resolve_ejection(slot, unresolved[is_ej], ejb[is_ej], now)
            unresolved = unresolved[~is_ej]
            key = key[~is_ej]
        if not len(unresolved):
            return

        owner_in = self._owner_in[slot]
        credits = self._credits[slot]
        out_g = self._out_g[slot]
        state = self._state[slot]
        wait = self._wait[slot]
        adaptive = self._adaptive
        A = len(adaptive)
        patience = self._patience
        router_of_g = self._router_of_g
        scratch = self._scratch_g

        # Cross-cycle no-grant cache: candidates that last finalised as
        # no-grant re-finalise identically unless a relevant VC was freed
        # since (adaptive on a minimal port, or their escape VC) or the
        # patience crossing (``wait == patience``) happens; they then only
        # tick their counter, without re-entering the rounds.
        blocked = self._blocked[slot]
        freed_adapt = self._freed_adapt[slot]
        freed_esc = self._freed_esc[slot]
        free_adapt = self._free_adapt[slot]
        b = blocked[unresolved]
        if b.any():
            mpp = self._rt_minp_port[key]
            affected = (freed_adapt[mpp] & (mpp >= 0)).any(axis=1)
            affected |= freed_esc[self._rt_esc_port[key]]
            skip = b & ~affected & (wait[unresolved] != patience)
            if skip.any():
                wait[unresolved[skip]] += 1
                keep0 = ~skip
                unresolved = unresolved[keep0]
                key = key[keep0]
        freed_adapt[:] = False
        freed_esc[:] = False
        if not len(unresolved):
            return
        blocked[unresolved] = False

        if len(unresolved) <= _SCALAR_MAX:
            self._va_scalar(slot, unresolved, key, now)
            return

        # Per-candidate static route data, gathered once and narrowed with
        # the unresolved set each round.
        u = unresolved
        esco_u = self._rt_esco[key]
        esc_gu = self._rt_esc[key]
        mp_u = self._rt_minp[key]
        valid_u = mp_u >= 0
        mp0_u = np.where(valid_u, mp_u, 0)
        mpp_u = mp0_u // self._V
        n = len(u)
        claim = np.full(n, -1, dtype=np.int64)
        escape_path = np.zeros(n, dtype=bool)
        # Rows whose decision must be (re)computed this round: initially
        # everyone; afterwards only the candidates whose claimed resource
        # was taken by a lower-g claimant.  A *blocked* winner (one that
        # merely has to wait for a lower-g loser to re-decide) keeps its
        # claim across rounds: by the invariance lemma its decision cannot
        # change while its own resource stays free, and if that resource
        # is stolen it shows up as a loser and recomputes.
        fresh = np.ones(n, dtype=bool)

        while len(u):
            rows = np.nonzero(fresh)[0]
            if len(rows):
                claim[rows] = -1
                escape_path[rows] = False
                if A:
                    # The adaptive path succeeds exactly when some valid
                    # minimal port has a free adaptive VC, so the per-VC
                    # credit compute below only runs for rows guaranteed
                    # to claim.
                    fam = valid_u[rows] & (free_adapt[mpp_u[rows]] > 0)
                    can_a = fam.any(axis=1) & ~esco_u[rows]
                    apos = np.nonzero(can_a)[0]
                else:
                    can_a = None
                    apos = ()
                if len(apos):
                    arows = rows[apos]
                    idx3 = mp0_u[arows][:, :, None] + adaptive[None, None, :]
                    cr = credits[idx3]
                    freevc = np.where(owner_in[idx3] < 0, cr, -1)
                    best_vc = freevc.argmax(axis=2)
                    score = np.where(fam[apos], cr.sum(axis=2), -1)
                    best_k = score.argmax(axis=1)
                    claim[arows] = (
                        mp0_u[arows, best_k]
                        + adaptive[best_vc[self._scratch_arange[: len(arows)], best_k]]
                    )
                    srows = rows[~can_a]
                elif can_a is not None:
                    srows = rows[~can_a]
                else:
                    srows = rows
                if len(srows):
                    escape_path[srows] = True
                    prospective = wait[u[srows]] + 1
                    esc_try = esco_u[srows] | (prospective > patience)
                    esc_g = esc_gu[srows]
                    esc_ok = esc_try & (owner_in[esc_g] < 0)
                    claim[srows[esc_ok]] = esc_g[esc_ok]

            # Conflict resolution over fresh and held claims together:
            # lowest-g claimant wins each output VC.  The reversed scatter
            # leaves the first (lowest-u) claimant's row in the scratch
            # slot; only slots written this round are read back, so the
            # scratch needs no clearing.
            claimants = np.nonzero(claim >= 0)[0]
            win_mask = np.zeros(len(u), dtype=bool)
            if len(claimants):
                cl = claim[claimants]
                scratch[cl[::-1]] = claimants[::-1]
                win_mask[claimants[scratch[cl] == claimants]] = True
            lose_rows = claimants[~win_mask[claimants]]

            # No-grant candidates always finalise; they are all on the
            # escape path (a found adaptive claim is never -1), so they
            # tick their patience counter and enter the no-grant cache.
            no_grant = claim < 0
            if no_grant.any():
                gng = u[no_grant]
                wait[gng] += 1
                blocked[gng] = True

            # Winners finalise unless a lower-g candidate of their router
            # is still unresolved.
            if len(lose_rows):
                losers = u[lose_rows]
                lr = router_of_g[losers]
                min_loser = self._scratch_router_min
                np.minimum.at(min_loser, lr, losers)
                final_win = win_mask & (u < min_loser[router_of_g[u]])
                min_loser[lr] = _BIG
            else:
                final_win = win_mask
            wrows = np.nonzero(final_win)[0]
            if len(wrows):
                g = u[wrows]
                cg = claim[wrows]
                owner_in[cg] = g
                out_g[g] = cg
                state[g] = _ACTIVE
                acg = cg[cg % self._V != self._escape_vc]
                if len(acg):
                    free_adapt -= np.bincount(acg // self._V, minlength=self._P)
                tick = escape_path[wrows]
                if tick.any():
                    wait[g[tick]] += 1
                if self._tracer is not None:
                    self._trace_vc_grants(
                        slot, zip(g.tolist(), cg.tolist()), now
                    )

            kidx = np.nonzero(~(no_grant | final_win))[0]
            kept = len(kidx)
            if not kept:
                break
            if kept == len(u):  # pragma: no cover - progress guarantee
                raise RuntimeError("VC allocation failed to make progress")
            if kept <= _VA_TAIL_MAX:
                # Finish the tail sequentially: the survivors only need
                # the ascending-g sequential allocation the remaining
                # rounds would converge to (route keys are untouched
                # during allocation, so the slot table still holds them).
                uk = u.take(kidx)
                self._va_scalar(slot, uk, self._route_key[slot][uk], now)
                return
            fresh = np.zeros(len(u), dtype=bool)
            fresh[lose_rows] = True
            fresh = fresh.take(kidx)
            u = u.take(kidx)
            esco_u = esco_u.take(kidx)
            esc_gu = esc_gu.take(kidx)
            mp0_u = mp0_u.take(kidx, axis=0)
            mpp_u = mpp_u.take(kidx, axis=0)
            valid_u = valid_u.take(kidx, axis=0)
            claim = claim.take(kidx)
            escape_path = escape_path.take(kidx)

    def _va_scalar(
        self, slot: int, unresolved: np.ndarray, key: np.ndarray, now: int
    ) -> None:
        """Scalar sequential allocation for a handful of candidates.

        Ascending flat coordinate *is* the object model's scan order, so
        a plain loop that updates the owner table as it grants needs no
        conflict rounds at all: each candidate decides with full
        knowledge of every lower-g grant, which is exactly the
        sequential semantics the vectorized fixpoint reproduces.
        """
        if self._rt_minp_list is None:
            self._build_scalar_tabs()
        owner_in = self._owner_in[slot]
        credits = self._credits[slot]
        out_g = self._out_g[slot]
        state = self._state[slot]
        wait = self._wait[slot]
        blocked = self._blocked[slot]
        free_adapt = self._free_adapt[slot]
        adaptive = self._adaptive_list
        V = self._V
        escape_vc = self._escape_vc
        patience = self._patience
        rt_minp = self._rt_minp_list
        rt_esc = self._rt_esc_list
        rt_esco = self._rt_esco_list
        for g, k in zip(unresolved.tolist(), key.tolist()):
            claim = -1
            escape_path = False
            if adaptive and not rt_esco[k]:
                # Adaptive path: among the minimal ports with a free
                # adaptive VC, the first port with the strictly largest
                # adaptive-credit sum; within it the first free VC with
                # the strictly largest credit count.
                best_score = -1
                for mp0 in rt_minp[k]:
                    if free_adapt[mp0 // V] <= 0:
                        continue
                    score = 0
                    best_vc_credits = -1
                    best_vc_g = -1
                    for vc in adaptive:
                        gv = mp0 + vc
                        c = int(credits[gv])
                        score += c
                        if c > best_vc_credits and owner_in[gv] < 0:
                            best_vc_credits = c
                            best_vc_g = gv
                    if score > best_score:
                        best_score = score
                        claim = best_vc_g
            if claim < 0:
                escape_path = True
                if rt_esco[k] or wait[g] + 1 > patience:
                    eg = rt_esc[k]
                    if owner_in[eg] < 0:
                        claim = eg
            if claim >= 0:
                owner_in[claim] = g
                out_g[g] = claim
                state[g] = _ACTIVE
                if claim % V != escape_vc:
                    free_adapt[claim // V] -= 1
                if escape_path:
                    wait[g] += 1
                if self._tracer is not None:
                    self._trace_vc_grants(slot, ((g, claim),), now)
            else:
                wait[g] += 1
                blocked[g] = True

    def _resolve_ejection(
        self, slot: int, e_u: np.ndarray, ejb: np.ndarray, now: int
    ) -> None:
        """Grant ejection-port claims exactly as the sequential scan would.

        Each sequential grant occupies the first still-free VC of the
        port, so per ejection port the k-th claimant (in ascending g)
        lands on the (k+1)-th free VC of the pre-allocation owner state;
        claimants past the free count get nothing this cycle (and, like
        the object model's ejection branch, never tick a patience
        counter).
        """
        owner_in = self._owner_in[slot]
        if len(e_u) <= _SCALAR_MAX:
            # Scalar path: ascending g with immediate owner updates is
            # the sequential scan itself.
            out_g = self._out_g[slot]
            state = self._state[slot]
            V = self._V
            for g, ejp in zip(e_u.tolist(), ejb.tolist()):
                for cg in range(ejp, ejp + V):
                    if owner_in[cg] < 0:
                        owner_in[cg] = g
                        out_g[g] = cg
                        state[g] = _ACTIVE
                        if self._tracer is not None:
                            self._trace_vc_grants(slot, ((g, cg),), now)
                        break
            return
        order = np.argsort(ejb, kind="stable")
        ejb_s = ejb[order]
        u_s = e_u[order]
        n = len(u_s)
        idx = self._scratch_arange[:n]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(ejb_s[1:], ejb_s[:-1], out=first[1:])
        rank = idx - np.maximum.accumulate(np.where(first, idx, 0))
        free = owner_in[ejb_s[:, None] + self._vrange[None, :]] < 0
        cum = free.cumsum(axis=1)
        has = cum[:, -1] > rank
        sel = (cum > rank[:, None]).argmax(axis=1)
        g = u_s[has]
        cg = ejb_s[has] + sel[has]
        owner_in[cg] = g
        self._out_g[slot][g] = cg
        self._state[slot][g] = _ACTIVE
        if self._tracer is not None:
            self._trace_vc_grants(slot, zip(g.tolist(), cg.tolist()), now)

    # -- stage: switch allocation + forwarding ------------------------------

    def _switch_and_forward(
        self, slot: int, now: int, occ_arr: np.ndarray | None = None
    ) -> int:
        """Nominate, arbitrate and forward; returns forwarded-flit count."""
        qlen = self._qlen[slot]
        state = self._state[slot]
        qhead = self._qhead[slot]
        q = self._q[slot]
        out_g_arr = self._out_g[slot]
        credits = self._credits[slot]
        V = self._V

        if occ_arr is None:
            act = np.nonzero((qlen > 0) & (state == _ACTIVE))[0]
        else:
            act = occ_arr[state[occ_arr] == _ACTIVE]
        if not len(act):
            return 0
        if len(act) <= _SCALAR_MAX:
            return self._switch_scalar(slot, act.tolist(), now)
        heads = q[act, qhead[act]]
        ready = self._f_arrival[heads] + self._router_latency <= now
        og = out_g_arr[act]
        ej = self._is_ej_port[og // V]
        eligible = ready & (ej | (credits[og] > 0))
        act = act[eligible]
        if not len(act):
            return 0
        # Flits in flight on long-latency links leave few *eligible*
        # candidates even when many coordinates are buffered, so the
        # post-filter set is worth a second scalar check (the scalar
        # path's own eligibility re-test passes by construction).
        if len(act) <= _SCALAR_MAX:
            return self._switch_scalar(slot, act.tolist(), now)

        # Per-port nomination: first eligible VC in ascending order (the
        # object model's VC pointers never advance).  The reversed scatter
        # leaves the lowest eligible g per port in the scratch slot.
        ports = act // V
        pbuf = self._scratch_nom
        pmask = self._scratch_port_mask
        pbuf[ports[::-1]] = act[::-1]
        pmask[ports] = True
        uports = np.nonzero(pmask)[0]
        pmask[uports] = False
        nom = pbuf[uports]

        # Round-robin output arbitration: per requested output port the
        # nomination with the smallest round-robin offset wins (offsets
        # are a permutation of a router's ports, so there are no ties, and
        # output ports of different routers never collide).
        routers = self._router_of_port[uports]
        local = uports - self._port_base[routers]
        sa = self._sa_ptr[slot]
        rr = (local - sa[routers]) % self._nports[routers]
        op_req = out_g_arr[nom] // V
        rrbuf = self._scratch_rr
        np.minimum.at(rrbuf, op_req, rr)
        winners = rr == rrbuf[op_req]
        rrbuf[op_req] = _BIG
        grants = nom[winners]

        rmask = self._scratch_router_mask
        rmask[routers] = True
        advanced = np.nonzero(rmask)[0]
        rmask[advanced] = False
        sa[advanced] = (sa[advanced] + 1) % self._nports[advanced]

        # Forward every grant: all bookkeeping is conflict-free fancy
        # indexing (input VCs and output VCs are unique per grant set).
        g = grants
        fids = q[g, qhead[g]]
        qhead[g] = (qhead[g] + 1) % self._depth
        qlen[g] -= 1
        emptied = g[qlen[g] == 0]
        if len(emptied):
            self._occ[slot].difference_update(emptied.tolist())
        # One grant per router port at most, so a bincount covers both
        # per-router counters in two vector ops instead of two add.at's.
        per_router = np.bincount(self._router_of_g[g], minlength=self._R)
        self._rcounts[slot] -= per_router
        self._fwd[slot] += per_router
        og = out_g_arr[g]
        op = og // V
        ej = self._is_ej_port[op]
        non_ej = ~ej
        if non_ej.any():
            credits[og[non_ej]] -= 1
            self._f_hops[fids[non_ej]] += 1
        out_vc = og % V
        self._f_vc[fids] = out_vc
        if self._tracer is not None:
            # Input port / input VC, like the object model's forward hook.
            self._trace_router_flits(
                self._tracer.sa_grant, g.tolist(), fids.tolist(), now
            )

        chans = self._out_chan_of_port[op]
        if np.any(chans < 0):
            bad = int(g[chans < 0][0])
            r = int(self._router_of_g[bad])
            raise RuntimeError(
                f"router {self._routers[r].router_id}: no channel attached to "
                f"output port {int(op[chans < 0][0] - self._port_base[r])}"
            )
        self._emit(chans, fids, now)

        in_ports = g // V
        credit_chans = self._credit_chan_of_port[in_ports]
        has_credit = credit_chans >= 0
        if has_credit.any():
            self._emit(credit_chans[has_credit], (g % V)[has_credit], now)

        tails = self._f_tail[fids]
        if tails.any():
            gt = g[tails]
            freed = og[tails]
            self._owner_in[slot][freed] = -1
            fp = op[tails]
            esc_freed = freed % V == self._escape_vc
            self._freed_esc[slot][fp[esc_freed]] = True
            adapt_freed = fp[~esc_freed & ~ej[tails]]
            if len(adapt_freed):
                self._freed_adapt[slot][adapt_freed] = True
                self._free_adapt[slot] += np.bincount(
                    adapt_freed, minlength=self._P
                )
            state[gt] = _IDLE
            out_g_arr[gt] = -1
            self._route_key[slot][gt] = -1
        return len(g)

    def _switch_scalar(self, slot: int, act: list[int], now: int) -> int:
        """Scalar replay of :meth:`_switch_and_forward` for a few VCs."""
        if self._rt_minp_list is None:
            self._build_scalar_tabs()
        V = self._V
        qlen = self._qlen[slot]
        qhead = self._qhead[slot]
        q = self._q[slot]
        state = self._state[slot]
        out_g_arr = self._out_g[slot]
        credits = self._credits[slot]
        f_arrival = self._f_arrival
        router_latency = self._router_latency
        is_ej = self._is_ej_list
        sa = self._sa_ptr[slot]
        router_of_port = self._router_of_port_list
        port_base = self._port_base_list
        nports = self._nports_list

        # Per-port nomination: first *eligible* VC in ascending order
        # (``act`` is ascending and a port's VCs are contiguous in g).
        nominated = []
        nom_port = -1
        for g in act:
            p = g // V
            if p == nom_port:
                continue
            fid = int(q[g, qhead[g]])
            if int(f_arrival[fid]) + router_latency > now:
                continue
            og = int(out_g_arr[g])
            if not is_ej[og // V] and credits[og] <= 0:
                continue
            nominated.append(g)
            nom_port = p
        if not nominated:
            return 0

        # Round-robin arbitration: per requested output port the
        # nomination with the smallest offset wins (no ties, see the
        # vectorized path); every nominating router's pointer advances.
        best: dict[int, tuple[int, int]] = {}
        advanced = set()
        for g in nominated:
            p = g // V
            r = router_of_port[p]
            advanced.add(r)
            rr = (p - port_base[r] - int(sa[r])) % nports[r]
            op = int(out_g_arr[g]) // V
            cur = best.get(op)
            if cur is None or rr < cur[0]:
                best[op] = (rr, g)
        for r in advanced:
            sa[r] = (int(sa[r]) + 1) % nports[r]

        # Forward the grants (conflict-free: distinct input VCs, distinct
        # output ports).
        depth = self._depth
        escape_vc = self._escape_vc
        pending = self._pending
        chan_lat = self._chan_lat_list
        out_chan = self._out_chan_list
        credit_chan = self._credit_chan_list
        router_of_g = self._router_of_g_list
        rcounts = self._rcounts[slot]
        fwd = self._fwd[slot]
        owner_in = self._owner_in[slot]
        freed_adapt = self._freed_adapt[slot]
        freed_esc = self._freed_esc[slot]
        free_adapt = self._free_adapt[slot]
        route_key = self._route_key[slot]
        f_vc = self._f_vc
        f_tail = self._f_tail
        occ = self._occ[slot]
        tracer = self._tracer
        for op, (_, g) in best.items():
            fid = int(q[g, qhead[g]])
            if tracer is not None:
                self._trace_router_flits(tracer.sa_grant, (g,), (fid,), now)
            qhead[g] = (int(qhead[g]) + 1) % depth
            qlen[g] -= 1
            if not qlen[g]:
                occ.discard(g)
            r = router_of_g[g]
            rcounts[r] -= 1
            fwd[r] += 1
            og = int(out_g_arr[g])
            ej = is_ej[op]
            if not ej:
                credits[og] -= 1
                self._f_hops[fid] += 1
            f_vc[fid] = og % V
            chan = out_chan[op]
            if chan < 0:
                raise RuntimeError(
                    f"router {self._routers[r].router_id}: no channel "
                    f"attached to output port {op - port_base[r]}"
                )
            arrival = now + chan_lat[chan]
            bucket = pending.get(arrival)
            if bucket is None:
                pending[arrival] = [(chan, fid)]
            else:
                bucket.append((chan, fid))
            cchan = credit_chan[g // V]
            if cchan >= 0:
                arrival = now + chan_lat[cchan]
                entry = (cchan, g % V)
                bucket = pending.get(arrival)
                if bucket is None:
                    pending[arrival] = [entry]
                else:
                    bucket.append(entry)
            if f_tail[fid]:
                owner_in[og] = -1
                if og % V == escape_vc:
                    freed_esc[op] = True
                elif not ej:
                    freed_adapt[op] = True
                    free_adapt[op] += 1
                state[g] = _IDLE
                out_g_arr[g] = -1
                route_key[g] = -1
        return len(best)

    def _emit(self, chans: np.ndarray, payloads: np.ndarray, now: int) -> None:
        """Append (channel, payload) event arrays grouped by arrival cycle.

        Arrival cycles within one call partition exactly by channel
        latency, and networks only have a handful of distinct latencies,
        so grouping iterates the precomputed latency values instead of
        sorting the arrivals (``np.unique``) every call.
        """
        pending = self._pending
        if len(chans) <= 8:
            # Small groups land as scalar entries (also keeping low-load
            # delivery buckets eligible for the scalar path).
            if self._rt_minp_list is None:
                self._build_scalar_tabs()
            chan_lat = self._chan_lat_list
            for chan, payload in zip(chans.tolist(), payloads.tolist()):
                arrival = now + chan_lat[chan]
                entry = (chan, payload)
                bucket = pending.get(arrival)
                if bucket is None:
                    pending[arrival] = [entry]
                else:
                    bucket.append(entry)
            return
        lat_values = self._chan_lat_values
        if len(lat_values) == 1:
            groups = [(now + lat_values[0], chans, payloads)]
        else:
            lats = self._chan_latency[chans]
            groups = []
            for lat in lat_values:
                mask = lats == lat
                if mask.any():
                    groups.append((now + lat, chans[mask], payloads[mask]))
        for arrival, chan_group, payload_group in groups:
            if len(chan_group) == 1:
                # Single-event groups land as scalar entries so low-load
                # delivery buckets stay eligible for the scalar path.
                entry = (int(chan_group[0]), int(payload_group[0]))
            else:
                entry = (chan_group, payload_group)
            bucket = pending.get(arrival)
            if bucket is None:
                pending[arrival] = [entry]
            else:
                bucket.append(entry)

    # -- ejection + materialisation ----------------------------------------

    def _flush_ejections(self) -> None:
        """Apply deferred endpoint-ejection bookkeeping, in delivery order."""
        if not self._eject_backlog:
            return
        self._flush_registry()
        endpoints = self._endpoints
        flit_objs = self._flit_objs
        tracer = self._tracer
        for endpoint_ids, fids, cycle in self._eject_backlog:
            if type(endpoint_ids) is int:
                # Scalar-delivery entry: one endpoint, one flit id.
                if self._f_dest[fids] != endpoint_ids:
                    raise RuntimeError(
                        f"endpoint {endpoint_ids} received a flit for "
                        f"endpoint {int(self._f_dest[fids])}; routing is "
                        "broken"
                    )
                endpoint = endpoints[endpoint_ids]
                endpoint.ejected_flits += 1
                if tracer is not None:
                    # The backlog entry carries the semantic delivery
                    # cycle, so the deferred event is timestamped exactly
                    # like the object model's eject hook.
                    flit = flit_objs[fids]
                    tracer.eject(
                        cycle,
                        flit.packet.packet_id,
                        flit.flit_index,
                        endpoint_ids,
                        int(self._f_vc[fids]),
                    )
                if self._f_tail[fids]:
                    flit = flit_objs[fids]
                    flit.packet.ejection_cycle = cycle
                    endpoint.ejected_packets.append(flit.packet)
                continue
            if np.any(self._f_dest[fids] != endpoint_ids):
                row = int(np.nonzero(self._f_dest[fids] != endpoint_ids)[0][0])
                raise RuntimeError(
                    f"endpoint {int(endpoint_ids[row])} received a flit for "
                    f"endpoint {int(self._f_dest[fids][row])}; routing is broken"
                )
            tails = self._f_tail[fids]
            for row, fid in enumerate(fids.tolist()):
                endpoint = endpoints[endpoint_ids[row]]
                endpoint.ejected_flits += 1
                if tracer is not None:
                    flit = flit_objs[fid]
                    tracer.eject(
                        cycle,
                        flit.packet.packet_id,
                        flit.flit_index,
                        int(endpoint_ids[row]),
                        int(self._f_vc[fid]),
                    )
                if tails[row]:
                    flit = flit_objs[fid]
                    flit.packet.ejection_cycle = cycle
                    endpoint.ejected_packets.append(flit.packet)
        self._eject_backlog.clear()

    def _sync_flit(self, fid: int) -> Flit:
        flit = self._flit_objs[fid]
        flit.vc = int(self._f_vc[fid])
        flit.arrival_cycle = int(self._f_arrival[fid])
        flit.hops = int(self._f_hops[fid])
        return flit

    def _materialize(self, slot: int) -> None:
        """Write the slot's flat state back into the object model.

        Refills the routers' own buffer deques in place, reconstructs the
        per-VC route fields from the route keys, rebuilds owner tuples,
        and re-homes still-in-flight bucket payloads into the real
        :class:`Channel` objects — after which the network is
        indistinguishable from one stepped by the legacy loop.
        """
        self._flush_registry()
        V, E = self._V, self._E
        depth = self._depth
        route_tab = self._route_tab
        buffers = self._buffers
        q = self._q[slot]
        qhead = self._qhead[slot].tolist()
        qlen_arr = self._qlen[slot]
        state_arr = self._state[slot]
        out_arr = self._out_g[slot]
        owner_arr = self._owner_in[slot]
        qlen = qlen_arr.tolist()
        states = state_arr.tolist()
        credits = self._credits[slot].tolist()
        owner_in = owner_arr.tolist()
        out_gs = out_arr.tolist()
        waits = self._wait[slot].tolist()
        keys = self._route_key[slot].tolist()
        router_of_g = self._router_of_g
        R = self._R

        for deck in buffers:
            if deck:
                deck.clear()

        # Most coordinates of a typical slot are idle with default
        # fields, so the per-VC lists are bulk slices / constant fills
        # and only the busy coordinates (grouped by router, in ascending
        # order, consumed by cursor) are patched in.
        def by_router(rows: np.ndarray) -> tuple[list[int], list[int]]:
            return (
                rows.tolist(),
                np.bincount(router_of_g[rows], minlength=R).tolist(),
            )

        occ_rows, occ_counts = by_router(np.nonzero(qlen_arr > 0)[0])
        route_rows, route_counts = by_router(np.nonzero(state_arr != _IDLE)[0])
        out_rows, out_counts = by_router(np.nonzero(out_arr >= 0)[0])
        owner_rows, owner_counts = by_router(np.nonzero(owner_arr >= 0)[0])
        c_occ = c_route = c_out = c_owner = 0

        for r, router in enumerate(self._routers):
            base_r = int(self._base[r])
            count = router.num_ports * V
            end = base_r + count
            b_states = states[base_r:end]
            b_wait = waits[base_r:end]
            b_credits = credits[base_r:end]
            b_minp: list[tuple[int, ...]] = [()] * count
            b_escp: list[int | None] = [None] * count
            b_esco: list[bool] = [False] * count
            b_outp: list[int | None] = [None] * count
            b_outv: list[int | None] = [None] * count
            b_owner: list[tuple[int, int] | None] = [None] * count

            buffered = 0
            for g in occ_rows[c_occ : c_occ + occ_counts[r]]:
                deck = buffers[g]
                head = qhead[g]
                row = q[g]
                n = qlen[g]
                for k in range(n):
                    deck.append(self._sync_flit(int(row[(head + k) % depth])))
                buffered += n
            c_occ += occ_counts[r]

            for g in route_rows[c_route : c_route + route_counts[r]]:
                key = keys[g]
                if key >= 0:
                    minimal, escape_port, escape_only = route_tab[r][key % E]
                else:
                    minimal, escape_port, escape_only = self._route_override.get(
                        g, ((), None, False)
                    )
                idx = g - base_r
                b_minp[idx] = minimal
                b_escp[idx] = escape_port
                b_esco[idx] = escape_only
            c_route += route_counts[r]

            port_base = base_r // V
            for g in out_rows[c_out : c_out + out_counts[r]]:
                idx = g - base_r
                og = out_gs[g]
                b_outp[idx] = og // V - port_base
                b_outv[idx] = og % V
            c_out += out_counts[r]

            for g in owner_rows[c_owner : c_owner + owner_counts[r]]:
                owner = owner_in[g]
                b_owner[g - base_r] = ((owner - base_r) // V, owner % V)
            c_owner += owner_counts[r]

            router.import_state(
                RouterState(
                    buffers=buffers[base_r:end],
                    states=b_states,
                    minimal_ports=b_minp,
                    escape_ports=b_escp,
                    escape_only=b_esco,
                    out_ports=b_outp,
                    out_vcs=b_outv,
                    alloc_wait_cycles=b_wait,
                    owners=b_owner,
                    credits=b_credits,
                    sa_port_pointer=int(self._sa_ptr[slot, r]),
                    buffered_flits=buffered,
                    forwarded_flits=int(self._fwd[slot, r]),
                )
            )

        pending = self._pending
        if pending:
            # Undelivered payloads go back into the real channels, in
            # per-channel arrival order (bucket iteration is cycle-major).
            by_channel: dict[int, list] = {}
            flit_kinds = (_CK_ROUTER_FLIT, _CK_ENDPOINT_FLIT)
            for arrival in sorted(pending):
                for chan, payload in pending[arrival]:
                    if isinstance(chan, np.ndarray):
                        rows = zip(chan.tolist(), payload.tolist())
                    else:
                        rows = ((chan, payload),)
                    for index, event in rows:
                        if self._chan_kind[index] in flit_kinds:
                            item = (arrival, self._sync_flit(event))
                        else:
                            item = (arrival, event)
                        items = by_channel.get(index)
                        if items is None:
                            by_channel[index] = [item]
                        else:
                            items.append(item)
            for index, items in by_channel.items():
                self._channels[index].load(items)
            pending.clear()
