"""Cycle-loop engines: the legacy dense scan and the active-set fast path.

Both engines advance a :class:`~repro.noc.network.Network` through the
warm-up, measurement and drain phases and record the phase-boundary flit
counters that :class:`~repro.noc.simulator.NocSimulator` turns into a
:class:`~repro.noc.simulator.SimulationResult`.  They are required to be
*observationally equivalent*: under the same configuration and seed they
must leave the network in bit-identical state, which the equivalence test
suite checks field by field on the final results.

The legacy engine is the original dense loop: every cycle it scans every
channel, steps every endpoint (until the drain phase) and steps every
router, whether or not the component has work to do.

The active-set engine exploits three invariants of the network model to
skip idle components without changing any observable behaviour:

1. **Endpoints must be stepped densely while traffic is generated.**  An
   endpoint draws from its RNG every cycle of the warm-up and measurement
   phases (the Bernoulli injection process), so skipping even one idle
   cycle would shift every later destination and injection decision.
   Endpoints are therefore stepped exactly like the legacy loop — every
   cycle before the drain phase, never during it.
2. **Routers are pure no-ops while their input buffers are empty.**
   ``Router.step`` returns immediately when ``buffered_flits == 0`` and
   mutates nothing, so only routers holding at least one flit are stepped.
3. **Channel deliveries are schedulable events.**  Every
   ``Channel.send`` reports the payload's arrival cycle through the
   channel's ``observer`` hook; the engine buckets arrivals by cycle and
   only touches channels with a delivery due *now*.  Same-cycle
   deliveries are replayed in channel registration order — the exact
   order of the legacy dense scan (delivery order across channels is
   commutative anyway, since every channel feeds a distinct buffer, but
   matching the order keeps the equivalence argument trivial).

Once the drain phase has started, endpoints no longer step, so when no
channel has a scheduled delivery and no router buffers a flit the network
state can never change again: the engine exits the loop early.  The
reported ``total_cycles`` remains the configured horizon, which keeps
every derived statistic bit-identical to a full legacy run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.config import SimulationConfig
from repro.noc.network import Network
from repro.telemetry.metrics import sample_object_cycle
from repro.telemetry.session import TelemetrySession, install_probes, uninstall_probes

#: Canonical names of every cycle-loop engine, in default-preference order.
#: ``"active"`` is the default, ``"vectorized"`` is the flat-state batch
#: engine of :mod:`repro.noc.vec_engine` and ``"legacy"`` the original
#: dense reference loop.  Every ``engine=`` validation site (simulator,
#: sweep runner, workload bridge, CLI) imports this tuple so a new engine
#: only has to be registered once.
ENGINE_NAMES: tuple[str, ...] = ("active", "vectorized", "legacy")

DEFAULT_ENGINE = "active"


@dataclass(frozen=True)
class PhaseSnapshots:
    """Flit counters captured at the phase boundaries of one run.

    Attributes
    ----------
    ejected_before_measurement / injected_before_measurement:
        Network totals at the start of the measurement phase.
    ejected_after_measurement / injected_after_measurement:
        Network totals at the end of the measurement phase.
    total_cycles:
        The configured simulation horizon (warm-up + measurement + drain).
    cycles_executed:
        Loop iterations actually performed; smaller than ``total_cycles``
        when the active-set engine exited early because the network had
        fully drained.
    """

    ejected_before_measurement: int
    injected_before_measurement: int
    ejected_after_measurement: int
    injected_after_measurement: int
    total_cycles: int
    cycles_executed: int

    @property
    def ejected_during_measurement(self) -> int:
        """Flits ejected within the measurement window."""
        return self.ejected_after_measurement - self.ejected_before_measurement

    @property
    def injected_during_measurement(self) -> int:
        """Flits injected within the measurement window."""
        return self.injected_after_measurement - self.injected_before_measurement


@dataclass
class EngineStats:
    """Instrumentation counters of one active-set engine run.

    These are diagnostics only — they do not feed into the reported
    simulation statistics — but the test-suite uses them to assert that
    the fast path actually skips idle work.
    """

    cycles_executed: int = 0
    channel_deliveries: int = 0
    router_steps: int = 0
    endpoint_steps: int = 0
    early_exit_cycle: int | None = None


def _phase_bounds(config: SimulationConfig) -> tuple[int, int, int]:
    """``(warmup_end, measure_end, total_cycles)`` of a configuration."""
    warmup_end = config.warmup_cycles
    measure_end = warmup_end + config.measurement_cycles
    total_cycles = measure_end + config.drain_cycles
    return warmup_end, measure_end, total_cycles


def _injected_total(network: Network) -> int:
    return sum(endpoint.injected_flits for endpoint in network.endpoints)


def attach_delivery_observers(channels, pending: dict[int, list[int]]) -> None:
    """Attach arrival observers that bucket channel deliveries by cycle.

    Shared by the active-set and vectorized engines so the event
    scheduling they both rely on for the bit-identical contract has a
    single implementation.  For every channel (in the given order, which
    is the index recorded in the buckets): future ``send`` calls append
    the channel's index to ``pending[arrival_cycle]``, and payloads
    already in flight are re-scheduled immediately (clamped to cycle 0 so
    a network resumed mid-flight delivers overdue payloads on the first
    cycle).  Callers must reset ``channel.observer`` to ``None`` when the
    run ends, and must drain each bucket with ``sorted(set(bucket))`` to
    replay same-cycle deliveries in channel registration order.
    """

    def make_observer(index: int):
        def observe(arrival: int) -> None:
            bucket = pending.get(arrival)
            if bucket is None:
                pending[arrival] = [index]
            else:
                bucket.append(index)

        return observe

    for index, channel in enumerate(channels):
        channel.observer = make_observer(index)
        # Re-schedule payloads already in flight (empty for fresh networks).
        for arrival, _payload in channel.pending():
            pending.setdefault(max(arrival, 0), []).append(index)


def run_legacy_loop(
    network: Network,
    config: SimulationConfig,
    *,
    telemetry: TelemetrySession | None = None,
) -> PhaseSnapshots:
    """The original dense cycle loop: step everything, every cycle."""
    warmup_end, measure_end, total_cycles = _phase_bounds(config)

    ejected_before = ejected_after = 0
    injected_before = injected_after = 0

    metrics = telemetry.metrics if telemetry is not None else None
    observed = telemetry is not None and telemetry.observes_network
    if observed:
        install_probes(network.routers, network.endpoints, telemetry)

    try:
        for cycle in range(total_cycles):
            if cycle == warmup_end:
                ejected_before = network.total_ejected_flits()
                injected_before = _injected_total(network)
            if cycle == measure_end:
                ejected_after = network.total_ejected_flits()
                injected_after = _injected_total(network)

            measured_phase = warmup_end <= cycle < measure_end
            network.deliver_channels(cycle)
            # During the drain phase the sources stop creating new packets so
            # that in-flight measured packets can reach their destinations.
            if cycle < measure_end:
                network.step_endpoints(cycle, measured_phase=measured_phase)
            network.step_routers(cycle)
            if metrics is not None:
                sample_object_cycle(network.routers, network.endpoints, metrics)
    finally:
        if observed:
            uninstall_probes(network.routers, network.endpoints)
    if metrics is not None:
        metrics.finalize(total_cycles)

    if config.drain_cycles == 0:
        ejected_after = network.total_ejected_flits()
        injected_after = _injected_total(network)

    return PhaseSnapshots(
        ejected_before_measurement=ejected_before,
        injected_before_measurement=injected_before,
        ejected_after_measurement=ejected_after,
        injected_after_measurement=injected_after,
        total_cycles=total_cycles,
        cycles_executed=total_cycles,
    )


class ActiveSetEngine:
    """Event-scheduled cycle loop that skips idle components.

    See the module docstring for the invariants that make the skipping
    observationally equivalent to the legacy dense loop.  An engine
    instance is single-use: create one per :meth:`run` call.
    """

    def __init__(self, network: Network, config: SimulationConfig) -> None:
        self._network = network
        self._config = config
        self.stats = EngineStats()

    def run(
        self, telemetry: TelemetrySession | None = None
    ) -> PhaseSnapshots:
        """Advance the network to the end of the drain phase (or early exit)."""
        network = self._network
        config = self._config
        stats = self.stats
        warmup_end, measure_end, total_cycles = _phase_bounds(config)

        endpoints = network.endpoints
        routers = network.routers
        channel_sinks = network.channel_sinks()

        metrics = telemetry.metrics if telemetry is not None else None
        observed = telemetry is not None and telemetry.observes_network
        if observed:
            install_probes(routers, endpoints, telemetry)

        # Arrival buckets: cycle -> list of channel indices with a delivery
        # due that cycle (one entry per sent payload; duplicates collapse at
        # delivery time).  Channel latencies are >= 1, so a bucket is always
        # fully populated before its cycle is processed.
        pending: dict[int, list[int]] = {}
        attach_delivery_observers([channel for channel, _ in channel_sinks], pending)

        ejected_before = ejected_after = 0
        injected_before = injected_after = 0

        try:
            cycle = 0
            while cycle < total_cycles:
                if cycle == warmup_end:
                    ejected_before = network.total_ejected_flits()
                    injected_before = _injected_total(network)
                if cycle == measure_end:
                    ejected_after = network.total_ejected_flits()
                    injected_after = _injected_total(network)
                    # From here on endpoints no longer step; if nothing is in
                    # flight anywhere the state is final and the remaining
                    # drain cycles are provably idle.
                if cycle >= measure_end and not pending and not any(
                    router.buffered_flits for router in routers
                ):
                    stats.early_exit_cycle = cycle
                    break

                bucket = pending.pop(cycle, None)
                if bucket is not None:
                    for index in sorted(set(bucket)):
                        channel, sink = channel_sinks[index]
                        for payload in channel.receive(cycle):
                            sink(payload, cycle)
                            stats.channel_deliveries += 1

                if cycle < measure_end:
                    measured_phase = cycle >= warmup_end
                    for endpoint in endpoints:
                        endpoint.step(cycle, measured_phase=measured_phase)
                    stats.endpoint_steps += len(endpoints)

                for router in routers:
                    if router.buffered_flits:
                        router.step(cycle)
                        stats.router_steps += 1

                if metrics is not None:
                    sample_object_cycle(routers, endpoints, metrics)
                stats.cycles_executed += 1
                cycle += 1
        finally:
            for channel, _ in channel_sinks:
                channel.observer = None
            if observed:
                uninstall_probes(routers, endpoints)
        if metrics is not None:
            metrics.finalize(total_cycles)

        if config.drain_cycles == 0:
            ejected_after = network.total_ejected_flits()
            injected_after = _injected_total(network)

        return PhaseSnapshots(
            ejected_before_measurement=ejected_before,
            injected_before_measurement=injected_before,
            ejected_after_measurement=ejected_after,
            injected_after_measurement=injected_after,
            total_cycles=total_cycles,
            cycles_executed=stats.cycles_executed,
        )
