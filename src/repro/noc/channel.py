"""Latency-modelling channels.

A channel is a simple delay line: payloads sent at cycle ``t`` become
available at the receiver at cycle ``t + latency``.  The same class is used
for flit channels (router-to-router, endpoint-to-router, router-to-
endpoint) and for the credit channels running in the opposite direction of
every flit channel.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.utils.validation import check_non_negative


class Channel:
    """A fixed-latency, in-order delay line.

    Parameters
    ----------
    latency:
        Delay in cycles between sending and receiving a payload.  A latency
        of zero is rounded up to one cycle so that no payload can traverse
        a channel and be processed by the receiver within the same cycle.
    name:
        Optional human-readable identifier (used in error messages and
        debugging output).
    """

    __slots__ = ("_latency", "_queue", "name")

    def __init__(self, latency: int, name: str = "") -> None:
        check_non_negative("latency", latency)
        self._latency = max(1, int(latency))
        self._queue: deque[tuple[int, Any]] = deque()
        self.name = name

    @property
    def latency(self) -> int:
        """Effective channel latency in cycles (at least one)."""
        return self._latency

    @property
    def in_flight(self) -> int:
        """Number of payloads currently traversing the channel."""
        return len(self._queue)

    def send(self, payload: Any, now: int) -> None:
        """Enqueue ``payload``; it becomes receivable at ``now + latency``."""
        self._queue.append((now + self._latency, payload))

    def receive(self, now: int) -> list[Any]:
        """Pop every payload whose delivery time has been reached."""
        delivered: list[Any] = []
        queue = self._queue
        while queue and queue[0][0] <= now:
            delivered.append(queue.popleft()[1])
        return delivered

    def peek_next_arrival(self) -> int | None:
        """Delivery cycle of the oldest in-flight payload (``None`` if empty)."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name or 'unnamed'}, latency={self._latency}, in_flight={len(self._queue)})"
