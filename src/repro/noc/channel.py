"""Latency-modelling channels.

A channel is a simple delay line: payloads sent at cycle ``t`` become
available at the receiver at cycle ``t + latency``.  The same class is used
for flit channels (router-to-router, endpoint-to-router, router-to-
endpoint) and for the credit channels running in the opposite direction of
every flit channel.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.utils.validation import check_non_negative


class Channel:
    """A fixed-latency, in-order delay line.

    Parameters
    ----------
    latency:
        Delay in cycles between sending and receiving a payload.  A latency
        of zero is rounded up to one cycle so that no payload can traverse
        a channel and be processed by the receiver within the same cycle.
    name:
        Optional human-readable identifier (used in error messages and
        debugging output).
    """

    __slots__ = ("_latency", "_queue", "name", "observer")

    def __init__(self, latency: int, name: str = "") -> None:
        check_non_negative("latency", latency)
        self._latency = max(1, int(latency))
        self._queue: deque[tuple[int, Any]] = deque()
        self.name = name
        #: Optional arrival hook: called with the delivery cycle of every
        #: payload entering the channel.  The active-set engine uses it to
        #: schedule event-driven deliveries instead of scanning all channels.
        self.observer: Callable[[int], None] | None = None

    @property
    def latency(self) -> int:
        """Effective channel latency in cycles (at least one)."""
        return self._latency

    @property
    def in_flight(self) -> int:
        """Number of payloads currently traversing the channel."""
        return len(self._queue)

    def send(self, payload: Any, now: int) -> None:
        """Enqueue ``payload``; it becomes receivable at ``now + latency``."""
        arrival = now + self._latency
        self._queue.append((arrival, payload))
        if self.observer is not None:
            self.observer(arrival)

    def receive(self, now: int) -> list[Any]:
        """Pop every payload whose delivery time has been reached."""
        delivered: list[Any] = []
        queue = self._queue
        while queue and queue[0][0] <= now:
            delivered.append(queue.popleft()[1])
        return delivered

    def pending(self) -> tuple[tuple[int, Any], ...]:
        """Snapshot of the in-flight ``(arrival_cycle, payload)`` pairs."""
        return tuple(self._queue)

    def payloads(self) -> tuple[Any, ...]:
        """Snapshot of the in-flight payloads (oldest first)."""
        return tuple(payload for _, payload in self._queue)

    def clear(self) -> None:
        """Drop every in-flight payload (used by :meth:`Network.reset`)."""
        self._queue.clear()

    def load(self, items) -> None:
        """Append pre-timed ``(arrival_cycle, payload)`` pairs to the queue.

        The seam of the batched vectorized engine: during a batched run the
        engine dispatches deliveries from its own event buckets instead of
        the channel queues, and hands any still-undelivered payloads back
        through this method when the point finishes — so post-run
        introspection (`pending`, `payloads`, flit conservation) reports
        exactly what an object-stepped run would.  ``items`` must already
        be in FIFO arrival order.
        """
        self._queue.extend(items)

    def peek_next_arrival(self) -> int | None:
        """Delivery cycle of the oldest in-flight payload (``None`` if empty)."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name or 'unnamed'}, latency={self._latency}, "
            f"in_flight={len(self._queue)})"
        )
