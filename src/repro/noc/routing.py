"""Routing tables: minimal routing plus an up*/down* escape network.

The arrangements are arbitrary (planar) graphs, so the simulator uses
table-based routing like BookSim2's ``anynet`` mode:

* **Minimal routing** — for every (current router, destination router)
  pair the table holds *all* neighbours that lie on a shortest path; the
  virtual-channel allocator may pick any of them (adaptive minimal
  routing).
* **Up*/down* escape routing** — deadlock freedom is guaranteed with an
  escape virtual channel routed on a breadth-first spanning tree: a packet
  on the escape channel travels up the tree towards the lowest common
  ancestor and then down towards its destination.  Because "down" channels
  never depend on "up" channels, the channel dependency graph of the
  escape network is acyclic, so packets on it always drain; any packet
  waiting on an adaptive channel may always fall back to the escape
  channel, which makes the whole network deadlock free (Duato's
  protocol).
"""

from __future__ import annotations

from collections import deque

from repro.graphs.metrics import bfs_distances
from repro.graphs.model import ChipGraph


class RoutingTables:
    """Precomputed routing information for one network topology.

    Parameters
    ----------
    graph:
        The inter-chiplet graph; nodes must be the integer router ids
        ``0 .. num_routers - 1``.
    """

    def __init__(self, graph: ChipGraph) -> None:
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise ValueError(
                "routing tables require contiguous integer router ids starting at 0"
            )
        self._graph = graph
        self._num_routers = len(nodes)
        self._distances: dict[int, dict[int, int]] = {
            node: bfs_distances(graph, node) for node in nodes
        }
        for node, reachable in self._distances.items():
            if len(reachable) != self._num_routers:
                raise ValueError("the topology graph must be connected")
        self._minimal_next_hops = self._build_minimal_next_hops()
        self._parent, self._children, self._subtree = self._build_spanning_tree(root=0)

    # -- construction helpers -------------------------------------------------

    def _build_minimal_next_hops(self) -> dict[int, dict[int, tuple[int, ...]]]:
        """For each (router, destination) pair: neighbours on shortest paths."""
        tables: dict[int, dict[int, tuple[int, ...]]] = {}
        for router in range(self._num_routers):
            per_destination: dict[int, tuple[int, ...]] = {}
            for destination in range(self._num_routers):
                if destination == router:
                    per_destination[destination] = ()
                    continue
                hops = self._distances[destination]
                candidates = tuple(
                    sorted(
                        neighbour
                        for neighbour in self._graph.neighbors(router)
                        if hops[neighbour] == hops[router] - 1
                    )
                )
                per_destination[destination] = candidates
            tables[router] = per_destination
        return tables

    def _build_spanning_tree(
        self, root: int
    ) -> tuple[dict[int, int | None], dict[int, list[int]], dict[int, set[int]]]:
        """Breadth-first spanning tree used by the up*/down* escape routing."""
        parent: dict[int, int | None] = {root: None}
        children: dict[int, list[int]] = {node: [] for node in range(self._num_routers)}
        order: list[int] = []
        queue: deque[int] = deque([root])
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbour in sorted(self._graph.neighbors(current)):
                if neighbour not in parent:
                    parent[neighbour] = current
                    children[current].append(neighbour)
                    queue.append(neighbour)
        # Subtree membership (the set of descendants including the node
        # itself), computed bottom-up in reverse BFS order.
        subtree: dict[int, set[int]] = {node: {node} for node in range(self._num_routers)}
        for node in reversed(order):
            for child in children[node]:
                subtree[node] |= subtree[child]
        return parent, children, subtree

    # -- queries --------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        """Number of routers in the topology."""
        return self._num_routers

    def distance(self, source: int, destination: int) -> int:
        """Hop distance between two routers."""
        return self._distances[source][destination]

    def minimal_next_hops(self, router: int, destination: int) -> tuple[int, ...]:
        """All neighbours of ``router`` on a shortest path to ``destination``."""
        return self._minimal_next_hops[router][destination]

    def tree_parent(self, router: int) -> int | None:
        """Parent of ``router`` in the escape spanning tree (``None`` for the root)."""
        return self._parent[router]

    def escape_next_hop(self, router: int, destination: int) -> int:
        """Next hop of the up*/down* escape route from ``router`` to ``destination``.

        If the destination lies in the subtree of one of the router's tree
        children, the packet goes *down* to that child; otherwise it goes
        *up* to the router's parent.
        """
        if router == destination:
            raise ValueError("escape routing is undefined for router == destination")
        for child in self._children[router]:
            if destination in self._subtree[child]:
                return child
        parent = self._parent[router]
        if parent is None:
            raise RuntimeError(
                "escape routing reached the tree root without finding the destination; "
                "the spanning tree is inconsistent"
            )
        return parent

    def escape_path(self, source: int, destination: int) -> list[int]:
        """The complete up*/down* path between two routers (both inclusive)."""
        path = [source]
        current = source
        safety = 0
        while current != destination:
            current = self.escape_next_hop(current, destination)
            path.append(current)
            safety += 1
            if safety > 2 * self._num_routers:
                raise RuntimeError("escape path did not converge; tree is inconsistent")
        return path

    def average_minimal_hops(self) -> float:
        """Average shortest-path hop count over all ordered router pairs."""
        if self._num_routers <= 1:
            return 0.0
        total = 0
        for source, distances in self._distances.items():
            total += sum(d for destination, d in distances.items() if destination != source)
        return total / (self._num_routers * (self._num_routers - 1))
