"""Simulation configuration.

The defaults reproduce the BookSim2 configuration of Section VI-A of the
paper: two endpoints and one router per chiplet, 27-cycle inter-chiplet
links, 3-cycle routers, 8 virtual channels and 8-flit buffers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive_int,
)

#: Router pipeline fidelity modes: ``"single"`` enforces the configured
#: router latency as one blanket eligibility delay (RC and VA may both
#: complete in a flit's arrival cycle), ``"staged"`` simulates the
#: explicit RC -> VA -> SA pipeline registers of the canonical VC router
#: (one stage per cycle, credit flow unchanged).
ROUTER_PIPELINES: tuple[str, ...] = ("single", "staged")


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of the cycle-accurate simulator.

    Parameters
    ----------
    endpoints_per_chiplet:
        Number of traffic endpoints attached to each chiplet's router.
    num_virtual_channels:
        Virtual channels per router input port.  The last virtual channel
        is reserved as the deadlock-free *escape* channel (up*/down*
        routing) unless only one virtual channel is configured, in which
        case all traffic uses up*/down* routing.
    buffer_depth_flits:
        Capacity of each virtual-channel buffer in flits.
    router_latency_cycles:
        Minimum number of cycles a flit spends inside a router.
    link_latency_cycles:
        Latency of an inter-chiplet (router-to-router) channel; models the
        outgoing PHY, the D2D wire and the incoming PHY.
    local_latency_cycles:
        Latency of the endpoint-to-router and router-to-endpoint channels.
    packet_size_flits:
        Number of flits per packet.
    escape_patience_cycles:
        Number of cycles a head flit waits for an adaptive virtual channel
        before it also starts requesting the escape channel.  A small
        patience keeps the (tree-routed) escape network as a true last
        resort so it does not become a hotspot under load, while still
        guaranteeing that every blocked packet eventually requests it
        (which is what the deadlock-freedom argument needs).
    warmup_cycles / measurement_cycles / drain_cycles:
        Lengths of the three simulation phases.  Statistics are collected
        only for packets created during the measurement phase; the drain
        phase lets in-flight measured packets reach their destination.
    seed:
        Seed of the simulator's pseudo-random number generator.
    router_pipeline:
        Router fidelity mode.  The default ``"single"`` models the router
        as one stage: route computation and virtual-channel allocation may
        both complete in a flit's arrival cycle, and the pipeline depth is
        enforced as the blanket ``router_latency_cycles`` eligibility
        delay before switch allocation.  ``"staged"`` simulates the
        explicit pipeline registers of the canonical VC router instead:
        RC, VA and SA each occupy their own cycle (a head flit arriving in
        cycle *a* is routed in *a*, allocated a VC no earlier than
        *a + 1* and switch-allocated no earlier than *a + 2*; body flits
        wait one buffer-write cycle), with credit flow, escape routing and
        allocation policies unchanged.  In staged mode the router latency
        therefore *emerges* from the stage count instead of the
        ``router_latency_cycles`` knob.
    """

    endpoints_per_chiplet: int = 2
    num_virtual_channels: int = 8
    buffer_depth_flits: int = 8
    router_latency_cycles: int = 3
    link_latency_cycles: int = 27
    local_latency_cycles: int = 1
    packet_size_flits: int = 1
    escape_patience_cycles: int = 8
    warmup_cycles: int = 1000
    measurement_cycles: int = 2000
    drain_cycles: int = 3000
    seed: int = 1
    router_pipeline: str = "single"

    def __post_init__(self) -> None:
        check_in_choices("router_pipeline", self.router_pipeline, ROUTER_PIPELINES)
        check_positive_int("endpoints_per_chiplet", self.endpoints_per_chiplet)
        check_positive_int("num_virtual_channels", self.num_virtual_channels)
        check_positive_int("buffer_depth_flits", self.buffer_depth_flits)
        check_positive_int("router_latency_cycles", self.router_latency_cycles)
        check_non_negative("link_latency_cycles", self.link_latency_cycles)
        check_positive_int("local_latency_cycles", self.local_latency_cycles)
        check_positive_int("packet_size_flits", self.packet_size_flits)
        check_positive_int("escape_patience_cycles", self.escape_patience_cycles, minimum=0)
        check_positive_int("warmup_cycles", self.warmup_cycles, minimum=0)
        check_positive_int("measurement_cycles", self.measurement_cycles)
        check_positive_int("drain_cycles", self.drain_cycles, minimum=0)
        if self.buffer_depth_flits < self.packet_size_flits:
            # Wormhole switching tolerates packets longer than a buffer, but
            # a head-of-line packet that can never fully fit risks extremely
            # slow progress at the escape channel; reject the obvious
            # misconfiguration of a zero-progress setup.
            if self.buffer_depth_flits < 1:
                raise ValueError("buffer_depth_flits must be at least 1")

    @property
    def is_staged_pipeline(self) -> bool:
        """Whether the explicit RC/VA/SA pipeline model is selected."""
        return self.router_pipeline == "staged"

    @property
    def escape_vc(self) -> int:
        """Index of the escape virtual channel (the highest-numbered VC)."""
        return self.num_virtual_channels - 1

    @property
    def adaptive_vcs(self) -> tuple[int, ...]:
        """Indices of the freely-routed (non-escape) virtual channels."""
        if self.num_virtual_channels == 1:
            return ()
        return tuple(range(self.num_virtual_channels - 1))

    @property
    def per_hop_latency_cycles(self) -> int:
        """Zero-load latency contribution of one router-to-router hop."""
        return self.router_latency_cycles + self.link_latency_cycles

    @classmethod
    def paper_defaults(cls) -> "SimulationConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls()

    @classmethod
    def fast_functional(cls) -> "SimulationConfig":
        """A reduced-cycle configuration for quick functional runs and tests."""
        return cls(warmup_cycles=200, measurement_cycles=400, drain_cycles=800)

    def scaled_phases(self, factor: float) -> "SimulationConfig":
        """Copy of the configuration with all phase lengths scaled by ``factor``."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(
            self,
            warmup_cycles=max(1, int(self.warmup_cycles * factor)),
            measurement_cycles=max(1, int(self.measurement_cycles * factor)),
            drain_cycles=max(1, int(self.drain_cycles * factor)),
        )


def config_identity_dict(config: SimulationConfig) -> dict:
    """``asdict(config)`` shaped for *identity* uses (cache keys, fixtures).

    ``router_pipeline`` joins the dict only when it differs from the
    default single-stage model: every result-store key and committed
    golden fixture minted before the knob existed stays valid unchanged,
    while staged-pipeline runs key — and serialize — distinctly.  Any
    future compatibility-sensitive knob should follow the same
    omit-at-default convention (it is the config-level analogue of
    ``SweepCandidate``'s only-when-non-empty fault fields).
    """
    payload = asdict(config)
    if payload.get("router_pipeline") == "single":
        del payload["router_pipeline"]
    return payload
