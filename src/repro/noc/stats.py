"""Statistics containers for simulation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("cannot compute percentiles of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class LatencyStatistics:
    """Summary of packet latencies (in cycles)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStatistics":
        """Build the summary from raw latency samples."""
        if not samples:
            return cls(
                count=0,
                mean=float("nan"),
                median=float("nan"),
                p95=float("nan"),
                p99=float("nan"),
                minimum=float("nan"),
                maximum=float("nan"),
            )
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=_percentile(ordered, 0.5),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            minimum=float(ordered[0]),
            maximum=float(ordered[-1]),
        )

    @property
    def is_empty(self) -> bool:
        """Whether no samples were collected."""
        return self.count == 0


@dataclass(frozen=True)
class ThroughputStatistics:
    """Offered vs. accepted traffic during the measurement window.

    Rates are expressed in flits per cycle per endpoint, i.e. as a fraction
    of the aggregate endpoint injection capacity — the same normalisation
    BookSim2 uses when it reports throughput as a percentage of the full
    global bandwidth.
    """

    offered_flit_rate: float
    accepted_flit_rate: float
    injected_flits: int
    ejected_flits: int
    measurement_cycles: int
    num_endpoints: int

    @property
    def acceptance_ratio(self) -> float:
        """Accepted over offered rate (1.0 below saturation, < 1.0 above)."""
        if self.offered_flit_rate == 0.0:
            return 1.0
        return self.accepted_flit_rate / self.offered_flit_rate

    @property
    def is_stable(self) -> bool:
        """Heuristic stability check: the network accepts ~all offered traffic."""
        return self.acceptance_ratio >= 0.95
