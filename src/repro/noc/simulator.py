"""The simulation driver: warm-up, measurement and drain phases.

The simulator advances the network one cycle at a time through one of the
cycle-loop engines of :mod:`repro.noc.engine` — the default *active-set*
engine skips idle routers and channels and exits early once the network
has drained; the *legacy* engine is the original dense scan.  Both are
bit-identical under a fixed seed.  Statistics follow standard
network-on-chip methodology (and BookSim2's conventions):

* packets created during the *warm-up* phase populate the network but are
  not measured,
* packets created during the *measurement* phase are tagged and their
  latency (creation to tail ejection, i.e. including source queueing) is
  reported,
* the *drain* phase gives measured packets time to reach their
  destination; accepted throughput, however, is counted strictly within
  the measurement window so that saturated networks report their sustained
  rate rather than their drained backlog.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.engine import (
    ENGINE_NAMES,
    ActiveSetEngine,
    EngineStats,
    PhaseSnapshots,
    run_legacy_loop,
)
from repro.noc.faults import DegradedTopology, FaultSet
from repro.noc.network import Network
from repro.noc.routing import RoutingTables
from repro.noc.vec_engine import BatchEngine, VectorizedEngine
from repro.noc.stats import LatencyStatistics, ThroughputStatistics
from repro.noc.traffic import TrafficPattern, make_traffic_pattern
from repro.utils.validation import check_fraction, check_in_choices


@dataclass(frozen=True)
class SimulationResult:
    """Everything a single simulation run reports."""

    injection_rate: float
    packet_latency: LatencyStatistics
    network_latency: LatencyStatistics
    throughput: ThroughputStatistics
    average_hops: float
    cycles_simulated: int
    num_routers: int
    num_endpoints: int
    measured_packets_created: int
    measured_packets_ejected: int

    @property
    def zero_load_latency(self) -> float:
        """Alias for the mean packet latency (meaningful at low load only)."""
        return self.packet_latency.mean

    @property
    def accepted_flit_rate(self) -> float:
        """Accepted throughput in flits per cycle per endpoint."""
        return self.throughput.accepted_flit_rate

    @property
    def measured_delivery_ratio(self) -> float:
        """Fraction of measured packets that reached their destination."""
        if self.measured_packets_created == 0:
            return 1.0
        return self.measured_packets_ejected / self.measured_packets_created


#: Whether the one-shot staged-pipeline fallback warning has fired in
#: this process (reset by tests via :func:`_reset_staged_fallback_warning`).
_staged_fallback_warned = False


def _warn_staged_fallback() -> None:
    """Warn (once per process) that ``vectorized`` falls back to ``active``.

    The fallback is silent in results — the engines are bit-identical —
    but callers recording provenance must not be left believing the numpy
    kernel ran, so the first fallback of a process says so out loud.
    """
    global _staged_fallback_warned
    if _staged_fallback_warned:
        return
    _staged_fallback_warned = True
    warnings.warn(
        "engine 'vectorized' implements the single-stage router pipeline "
        "only; running the bit-identical 'active' engine instead for "
        "router_pipeline='staged' (manifests record the engine that "
        "actually ran)",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_staged_fallback_warning() -> None:
    """Re-arm the one-shot fallback warning (test seam)."""
    global _staged_fallback_warned
    _staged_fallback_warned = False


@dataclass(frozen=True)
class BatchPoint:
    """One point of a batched multi-point run.

    Attributes
    ----------
    injection_rate:
        Offered load of the point in flits per cycle per endpoint.
    seed:
        Simulator seed for the point; ``None`` uses the batch
        configuration's seed unchanged (the convention of the figure
        sweeps, whose serial reference path runs every point with the
        base seed).
    """

    injection_rate: float
    seed: int | None = None

    def __post_init__(self) -> None:
        check_fraction("injection_rate", self.injection_rate)


def collect_results(
    network: Network,
    config: SimulationConfig,
    injection_rate: float,
    snapshots: PhaseSnapshots,
) -> SimulationResult:
    """Summarise a finished run of ``network`` into a :class:`SimulationResult`.

    Shared by the per-point path (:meth:`NocSimulator.run`) and the
    batched path (:meth:`NocSimulator.run_batch`), so the two can never
    diverge in how they derive statistics from the network state.
    """
    measured_packets = [
        packet
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    ]
    packet_latencies = [float(p.latency) for p in measured_packets]
    network_latencies = [float(p.network_latency) for p in measured_packets]

    measured_created = _count_measured_created(network)

    hop_counts: list[int] = []
    for endpoint in network.endpoints:
        for packet in endpoint.ejected_packets:
            if packet.measured:
                hop_counts.append(network.routing.distance(
                    network.endpoint_to_router[packet.source],
                    network.endpoint_to_router[packet.destination],
                ))
    average_hops = sum(hop_counts) / len(hop_counts) if hop_counts else 0.0

    measurement_cycles = config.measurement_cycles
    num_endpoints = network.num_endpoints
    ejected_during_measurement = snapshots.ejected_during_measurement
    accepted_rate = ejected_during_measurement / (measurement_cycles * num_endpoints)
    throughput = ThroughputStatistics(
        offered_flit_rate=injection_rate,
        accepted_flit_rate=accepted_rate,
        injected_flits=snapshots.injected_during_measurement,
        ejected_flits=ejected_during_measurement,
        measurement_cycles=measurement_cycles,
        num_endpoints=num_endpoints,
    )

    return SimulationResult(
        injection_rate=injection_rate,
        packet_latency=LatencyStatistics.from_samples(packet_latencies),
        network_latency=LatencyStatistics.from_samples(network_latencies),
        throughput=throughput,
        average_hops=average_hops,
        cycles_simulated=snapshots.total_cycles,
        num_routers=network.num_routers,
        num_endpoints=num_endpoints,
        measured_packets_created=measured_created,
        measured_packets_ejected=len(measured_packets),
    )


def _count_measured_created(network: Network) -> int:
    """Number of packets created during the measurement phase.

    Created packets are only tracked per endpoint as a total count, so
    the measured subset is recovered from the packets that carry the
    ``measured`` flag: delivered ones sit in ``ejected_packets``,
    undelivered ones are reported by the in-flight accessors of the
    endpoints (source queues) and the network (router buffers and
    channels).
    """
    measured = 0
    for endpoint in network.endpoints:
        for packet in endpoint.ejected_packets:
            if packet.measured:
                measured += 1
        measured += endpoint.in_flight_measured_packets()
    return measured + network.in_flight_measured_packets()


class NocSimulator:
    """Cycle-accurate simulation of one topology at one injection rate.

    Parameters
    ----------
    graph:
        Inter-chiplet topology (router ids ``0 .. n-1``).
    config:
        Simulation configuration; defaults to the paper's setup.
    injection_rate:
        Offered load in flits per cycle per endpoint (fraction of capacity).
    traffic:
        Either a :class:`~repro.noc.traffic.TrafficPattern` instance or the
        name of one (``"uniform"``, ``"hotspot"``, ...).
    faults:
        Optional :class:`~repro.noc.faults.FaultSet`.  When given (and
        non-empty), the simulator runs on the **degraded** topology —
        failed routers and links removed, survivors relabeled to
        contiguous ids — so the routing tables rebuild automatically and
        every engine simulates the faulted network bit-identically.  A
        :class:`TrafficPattern` *instance* must then be sized for the
        degraded endpoint count (pattern names are resolved against it
        automatically); a fault set that disconnects the topology or
        isolates a router raises
        :class:`~repro.noc.faults.FaultedTopologyError`.
    """

    def __init__(
        self,
        graph: ChipGraph,
        config: SimulationConfig | None = None,
        *,
        injection_rate: float = 0.1,
        traffic: TrafficPattern | str = "uniform",
        faults: FaultSet | None = None,
    ) -> None:
        self._config = config if config is not None else SimulationConfig()
        check_fraction("injection_rate", injection_rate)
        self._fault_set = faults if faults is not None else FaultSet()
        self._degraded: DegradedTopology | None = None
        if not self._fault_set.is_empty:
            self._degraded = self._fault_set.apply(graph)
            graph = self._degraded.graph
        num_endpoints = graph.num_nodes * self._config.endpoints_per_chiplet
        if isinstance(traffic, str):
            traffic_pattern = make_traffic_pattern(traffic, num_endpoints)
        else:
            traffic_pattern = traffic
        self._network = Network(
            graph,
            self._config,
            traffic=traffic_pattern,
            injection_rate=injection_rate,
        )
        self._injection_rate = injection_rate
        #: Instrumentation of the last active-set run (``None`` before the
        #: first run and after legacy runs).
        self.last_engine_stats: EngineStats | None = None
        #: Name of the engine that actually executed the last :meth:`run`
        #: (``None`` before the first run).  Differs from the requested
        #: engine exactly when the staged-pipeline fallback applied —
        #: provenance consumers must record *this*, never the request.
        self.last_engine: str | None = None

    @property
    def network(self) -> Network:
        """The underlying network (exposed for tests and instrumentation)."""
        return self._network

    @property
    def config(self) -> SimulationConfig:
        """The simulation configuration in use."""
        return self._config

    @property
    def fault_set(self) -> FaultSet:
        """The injected fault set (empty for a healthy network)."""
        return self._fault_set

    @property
    def degraded_topology(self) -> DegradedTopology | None:
        """The degraded topology simulated (``None`` without faults)."""
        return self._degraded

    # -- running -------------------------------------------------------------------

    @staticmethod
    def resolve_engine(engine: str, config: SimulationConfig) -> str:
        """The engine that will *actually* run for this request.

        The single source of truth for the staged-pipeline fallback: the
        numpy ``vectorized`` kernel implements single-stage semantics
        only, so under ``router_pipeline="staged"`` it transparently runs
        the bit-identical ``active`` object model instead (warning once
        per process).  Everything that records provenance — manifests,
        store entries, bench reports — must record the *resolved* name,
        which :attr:`last_engine` exposes after a run.
        """
        check_in_choices("engine", engine, ENGINE_NAMES)
        if engine == "vectorized" and config.is_staged_pipeline:
            _warn_staged_fallback()
            return "active"
        return engine

    def run(self, *, engine: str = "active", telemetry=None) -> SimulationResult:
        """Execute warm-up, measurement and drain, then summarise the statistics.

        Parameters
        ----------
        engine:
            ``"active"`` (default) uses the active-set fast path of
            :mod:`repro.noc.engine`; ``"vectorized"`` uses the flat-state
            batch engine of :mod:`repro.noc.vec_engine`; ``"legacy"`` uses
            the original dense cycle loop.  All three produce bit-identical
            results under a fixed seed — the legacy engine remains the
            reference for the equivalence test suite.
        telemetry:
            Optional :class:`~repro.telemetry.TelemetrySession`.  Its
            collector / tracer / profiler observe the run through every
            engine; the recorded series and flit-lifecycle events are
            themselves bit-identical across engines under a fixed seed.
            ``None`` (the default) keeps the cycle loops observation-free.

        Notes
        -----
        With ``router_pipeline="staged"`` the ``"vectorized"`` engine
        transparently runs the active-set object model instead: the numpy
        kernel implements the single-stage pipeline semantics only, and
        the active/legacy loops already step the staged router
        bit-identically, so every engine name keeps returning identical
        results in both pipeline modes.
        """
        engine = self.resolve_engine(engine, self._config)
        self.last_engine = engine
        if engine == "legacy":
            self.last_engine_stats = None
            snapshots = run_legacy_loop(
                self._network, self._config, telemetry=telemetry
            )
        elif engine == "vectorized":
            vectorized = VectorizedEngine(self._network, self._config)
            snapshots = vectorized.run(telemetry)
            self.last_engine_stats = vectorized.stats
        else:
            active = ActiveSetEngine(self._network, self._config)
            snapshots = active.run(telemetry)
            self.last_engine_stats = active.stats

        return collect_results(
            self._network, self._config, self._injection_rate, snapshots
        )

    # -- batched running ----------------------------------------------------------

    @classmethod
    def run_batch(
        cls,
        graph: ChipGraph,
        points: Sequence[BatchPoint],
        *,
        config: SimulationConfig | None = None,
        traffic: TrafficPattern | str = "uniform",
        faults: FaultSet | None = None,
        engine: str = "vectorized",
        on_point: Callable[[int, Network, SimulationResult], None] | None = None,
        telemetry: Callable[[int, BatchPoint], object] | None = None,
    ) -> list[SimulationResult]:
        """Simulate many injection-rate points over one shared topology build.

        The batch shares everything the points have in common — the
        (degraded, if ``faults`` is given) topology, the routing tables,
        and with ``engine="vectorized"`` one reusable network plus the
        whole flat-state machinery of
        :class:`~repro.noc.vec_engine.BatchEngine` — while every point
        runs with its own seed, injection process and statistics.  Results
        are returned in point order and are **bit-identical** to per-point
        ``NocSimulator(...).run(engine=...)`` calls with the same
        parameters: batching amortises work, it never changes outcomes.

        Parameters
        ----------
        graph:
            Healthy inter-chiplet topology shared by every point.
        points:
            The :class:`BatchPoint` list; a point's ``seed=None`` runs
            with ``config.seed`` unchanged.
        config:
            Base simulation configuration (phase lengths, VC counts, ...);
            per-point seeds override only its ``seed``.
        traffic:
            Pattern name or instance shared by all points (instances are
            reset per point, exactly as a fresh network would).
        faults:
            Optional fault set; applied **once**, so all points of one
            fault arrangement share its degraded topology.
        engine:
            ``"vectorized"`` (default) uses the batched flat-state engine;
            ``"active"`` / ``"legacy"`` fall back to per-point loops that
            still share the topology and routing-table build.
        on_point:
            Optional hook called as ``on_point(index, network, result)``
            after each point, while the network still holds that point's
            final state — the seam tests and harnesses use to inspect
            per-point network state (latency histograms, conservation)
            without giving up batching.
        telemetry:
            Optional factory called as ``telemetry(index, point)`` before
            each point; a returned
            :class:`~repro.telemetry.TelemetrySession` observes that
            point's run (return ``None`` to skip a point).  Sessions are
            per point — reuse one only after consuming its contents.
        """
        if config is None:
            config = SimulationConfig()
        # The numpy batch kernel implements single-stage semantics only;
        # staged-pipeline batches resolve to the per-point active-set
        # loop below, which still shares the (degraded) topology and
        # routing-table build across all points.  Callers recording
        # provenance resolve the same way (resolve_engine is the single
        # source of truth for the fallback).
        engine = cls.resolve_engine(engine, config)
        ordered = list(points)
        if not ordered:
            return []
        fault_set = faults if faults is not None else FaultSet()
        if not fault_set.is_empty:
            graph = fault_set.apply(graph).graph
        num_endpoints = graph.num_nodes * config.endpoints_per_chiplet
        if isinstance(traffic, str):
            traffic_pattern = make_traffic_pattern(traffic, num_endpoints)
        else:
            traffic_pattern = traffic
        routing = RoutingTables(graph)

        def point_config(point: BatchPoint) -> SimulationConfig:
            if point.seed is None or point.seed == config.seed:
                return config
            return replace(config, seed=point.seed)

        results: list[SimulationResult] = []
        if engine != "vectorized":
            for index, point in enumerate(ordered):
                cfg = point_config(point)
                network = Network(
                    graph,
                    cfg,
                    traffic=traffic_pattern,
                    injection_rate=point.injection_rate,
                    routing=routing,
                )
                session = telemetry(index, point) if telemetry is not None else None
                if engine == "legacy":
                    snapshots = run_legacy_loop(network, cfg, telemetry=session)
                else:
                    snapshots = ActiveSetEngine(network, cfg).run(session)
                result = collect_results(
                    network, cfg, point.injection_rate, snapshots
                )
                results.append(result)
                if on_point is not None:
                    on_point(index, network, result)
            return results

        first = ordered[0]
        network = Network(
            graph,
            point_config(first),
            traffic=traffic_pattern,
            injection_rate=first.injection_rate,
            routing=routing,
        )
        with BatchEngine(network, config, points=len(ordered)) as batch:
            for index, point in enumerate(ordered):
                cfg = point_config(point)
                session = telemetry(index, point) if telemetry is not None else None
                snapshots, _ = batch.run_point(
                    seed=cfg.seed,
                    injection_rate=point.injection_rate,
                    telemetry=session,
                )
                result = collect_results(
                    network, cfg, point.injection_rate, snapshots
                )
                results.append(result)
                if on_point is not None:
                    on_point(index, network, result)
        return results
