"""The vectorized batch engine: flat-state cycle loop over the whole network.

This is the third cycle-loop engine next to the legacy dense scan and the
active-set scheduler of :mod:`repro.noc.engine`.  Instead of walking the
object graph (`Network` -> `Router` -> `_InputVC` -> `deque`) every cycle,
it flattens all mutable router state into *flat tables* indexed by a
global ``(router, port, vc)`` coordinate and steps the whole network on
that representation:

* **Flat state tables.**  Every router exports its per-VC state once at
  the start of the run (:meth:`repro.noc.router.Router.export_state`):
  buffers, VC pipeline states, routing decisions, credit counters and
  output-VC ownership all become parallel flat lists addressed by
  ``base[router] + port * V + vc``.  The per-element hot state deliberately
  lives in plain Python lists — CPython list indexing is faster than
  ndarray item access for the scalar read-modify-write pattern of a cycle
  loop — while numpy provides the static offset / routing tables and the
  bulk end-of-run consistency check.
* **Masked work selection.**  Each router carries two occupancy bitmasks
  over its ``port * V + vc`` bits: ``occ`` (non-empty buffers) and
  ``alloc`` (VCs needing route computation or VC allocation).  The
  per-cycle scans iterate only the set bits — in ascending bit order,
  which is exactly the (port-major, vc-minor) order of the object model's
  dense scans, so every allocation decision falls in the same sequence.
* **Precomputed routing.**  Route computation becomes a single table
  lookup: ``route_tab[router][destination_endpoint]`` holds the minimal
  output-port tuple, the escape port and the escape-only flag (ejection
  folded in), replacing the dict lookups and tuple rebuilding of
  ``Router._compute_route``.
* **Scalar injection draws.**  Endpoint packet generation *must* stay
  per-endpoint and in ascending endpoint order: each endpoint consumes its
  private ``random.Random`` stream one draw per generation cycle, so any
  batching would shift destinations and injections.  The engine instead
  inlines the generation fast path (one bound ``rng.random`` call and one
  compare per endpoint per cycle) and skips the injection stage entirely
  for endpoints with no queued work — both RNG-neutral by construction.
* **Event-driven channels.**  Channels stay live :class:`Channel` objects
  (their in-flight queues remain the source of truth for conservation
  checks); deliveries are scheduled through the same observer hook the
  active-set engine uses, but dispatched through per-channel handlers that
  write straight into the flat tables.

At the end of the run (or on error) the flat state is imported back into
the router objects (:meth:`Router.import_state`), so all post-run
introspection — flit conservation, in-flight measured packets, buffered
counts — reports exactly what a legacy run would.

Equivalence contract: under the same configuration and seed the engine is
**bit-identical** to the legacy and active-set engines, for every
arrangement kind, traffic pattern (including trace replay) and phase
configuration; the equivalence suite compares final results field by
field across all three engines.
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from repro.noc.config import SimulationConfig
from repro.noc.engine import (
    EngineStats,
    PhaseSnapshots,
    _injected_total,
    _phase_bounds,
    attach_delivery_observers,
)
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.router import _ACTIVE, _IDLE, _VC_ALLOC


def build_route_tab(
    network: Network, escape_only_all: bool
) -> list[list[tuple[tuple[int, ...], int, bool]]]:
    """Precompute ``route_tab[router][destination_endpoint]`` for a network.

    Each entry is the ``(minimal output ports, escape port, escape_only)``
    triple of ``Router._compute_route`` with ejection folded in (local
    destinations route straight to their endpoint port and are never
    escape-only), mirroring the object model exactly so written-back state
    stays bit-identical.  The table depends only on the topology, the port
    layout and the VC count — batched sweeps build it once and share it
    across every point.
    """
    routing = network.routing
    endpoint_to_router = network.endpoint_to_router
    num_endpoints = network.num_endpoints
    route_tab: list[list[tuple[tuple[int, ...], int, bool]]] = []
    for r, router in enumerate(network.routers):
        row: list[tuple[tuple[int, ...], int, bool]] = []
        for destination in range(num_endpoints):
            destination_router = endpoint_to_router[destination]
            if destination_router == r:
                ejection_port = router.port_of_endpoint(destination)
                row.append(((ejection_port,), ejection_port, False))
            else:
                minimal = tuple(
                    router.port_of_neighbor(neighbor)
                    for neighbor in routing.minimal_next_hops(r, destination_router)
                )
                escape_port = router.port_of_neighbor(
                    routing.escape_next_hop(r, destination_router)
                )
                row.append((minimal, escape_port, escape_only_all))
        route_tab.append(row)
    return route_tab


class VectorizedEngine:
    """Flat-state cycle loop; see the module docstring for the design.

    An engine instance is single-use: create one per :meth:`run` call.
    The interface mirrors :class:`repro.noc.engine.ActiveSetEngine` so
    :class:`~repro.noc.simulator.NocSimulator` can treat them uniformly.
    """

    def __init__(self, network: Network, config: SimulationConfig) -> None:
        self._network = network
        self._config = config
        self.stats = EngineStats()

    # The run loop is written as one large function on purpose: all hot
    # state is bound to local names / closure cells, which is the fastest
    # access pattern CPython offers (attribute lookups in an inner loop
    # would cost 2-3x).
    def run(self) -> PhaseSnapshots:  # noqa: C901 - hot loop, deliberately flat
        """Advance the network to the end of the drain phase (or early exit)."""
        network = self._network
        config = self._config
        stats = self.stats
        warmup_end, measure_end, total_cycles = _phase_bounds(config)

        # -- configuration scalars ------------------------------------------------
        V = config.num_virtual_channels
        escape_vc = config.escape_vc
        adaptive = config.adaptive_vcs
        depth = config.buffer_depth_flits
        router_latency = config.router_latency_cycles
        patience = config.escape_patience_cycles
        packet_size = config.packet_size_flits
        escape_only_all = V == 1

        routers = network.routers
        num_routers = len(routers)
        nports = [router.num_ports for router in routers]
        nrports = [router.num_router_ports for router in routers]

        # -- flat tables ----------------------------------------------------------
        # base[r] is the global offset of router r's (port, vc) block; the
        # global coordinate of (router, port, vc) is base[r] + port * V + vc.
        block_sizes = np.asarray(nports, dtype=np.int64) * V
        base_offsets = np.concatenate(([0], np.cumsum(block_sizes)))
        base = [int(offset) for offset in base_offsets[:-1]]

        buf = []
        state = []
        minp = []
        escp = []
        esco = []
        outp = []
        outv = []
        wait = []
        owner = []
        credits = []
        occ = [0] * num_routers
        alloc = [0] * num_routers
        counts = [0] * num_routers
        sa_ptr = [0] * num_routers
        fwd = [0] * num_routers
        out_ch = []
        cred_ch = []
        for r, router in enumerate(routers):
            snapshot = router.export_state()
            buf.extend(snapshot.buffers)
            state.extend(snapshot.states)
            minp.extend(snapshot.minimal_ports)
            escp.extend(snapshot.escape_ports)
            esco.extend(snapshot.escape_only)
            outp.extend(snapshot.out_ports)
            outv.extend(snapshot.out_vcs)
            wait.extend(snapshot.alloc_wait_cycles)
            owner.extend(snapshot.owners)
            credits.extend(snapshot.credits)
            counts[r] = snapshot.buffered_flits
            sa_ptr[r] = snapshot.sa_port_pointer
            fwd[r] = snapshot.forwarded_flits
            out_ch.append(router.output_channels())
            cred_ch.append(router.input_credit_channels())
            occ_mask = 0
            alloc_mask = 0
            for idx, buffer in enumerate(snapshot.buffers):
                if buffer:
                    bit = 1 << idx
                    occ_mask |= bit
                    if snapshot.states[idx] != _ACTIVE:
                        alloc_mask |= bit
            occ[r] = occ_mask
            alloc[r] = alloc_mask

        # Precomputed routing (see build_route_tab).
        route_tab = build_route_tab(network, escape_only_all)

        # -- endpoint generation fast path ---------------------------------------
        # One row per endpoint that can ever create a packet (probability
        # zero endpoints never draw from their RNG, exactly like
        # BernoulliInjection.should_inject).  Row order is ascending
        # endpoint id — the legacy stepping order, which pins the shared
        # packet-id allocator and trace-cursor sequences.
        endpoints = network.endpoints
        traffic_destination = network.traffic.destination
        gen_rows = []
        for endpoint in endpoints:
            probability = endpoint.packet_probability
            if probability <= 0.0:
                continue
            if endpoint.packet_id_allocator is None:
                raise RuntimeError("endpoint has no packet-id allocator attached")
            source_queue, pending_flits = endpoint.source_buffers()
            gen_rows.append(
                (
                    endpoint.endpoint_id,
                    endpoint.rng.random,
                    probability,
                    endpoint.rng,
                    endpoint,
                    source_queue,
                    pending_flits,
                    endpoint.inject_pending,
                    endpoint.packet_id_allocator,
                )
            )
        num_endpoints_total = len(endpoints)

        # -- flat-state mutators --------------------------------------------------

        def make_router_flit_handler(r: int, port: int):
            base_r = base[r]
            port_bits = port * V
            router_id = routers[r].router_id

            def handle(flit, now: int) -> None:
                idx = port_bits + flit.vc
                g = base_r + idx
                buffer = buf[g]
                if len(buffer) >= depth:
                    raise RuntimeError(
                        f"router {router_id}: input buffer overflow on port {port} "
                        f"vc {flit.vc}; credit flow control is broken"
                    )
                flit.arrival_cycle = now
                buffer.append(flit)
                counts[r] += 1
                bit = 1 << idx
                occ[r] |= bit
                if state[g] != _ACTIVE:
                    alloc[r] |= bit

            return handle

        def make_router_credit_handler(r: int, port: int):
            credit_base = base[r] + port * V

            def handle(vc, now: int) -> None:
                credits[credit_base + int(vc)] += 1

            return handle

        def make_endpoint_credit_handler(endpoint):
            accept = endpoint.accept_credit

            def handle(vc, now: int) -> None:
                accept(int(vc))

            return handle

        # -- channel event scheduling --------------------------------------------
        pending: dict[int, list[int]] = {}
        channel_rows: list[tuple] = []  # (channel, handler)
        targets = network.channel_targets()
        for channel, target in targets:
            kind, owner_id, port = target
            if kind == "router_flit":
                handler = make_router_flit_handler(owner_id, port)
            elif kind == "router_credit":
                handler = make_router_credit_handler(owner_id, port)
            elif kind == "endpoint_flit":
                handler = endpoints[owner_id].accept_flit
            elif kind == "endpoint_credit":
                handler = make_endpoint_credit_handler(endpoints[owner_id])
            else:  # pragma: no cover - new target kinds must be wired here
                raise ValueError(f"unknown channel target kind {kind!r}")
            channel_rows.append((channel, handler))
        attach_delivery_observers([channel for channel, _ in channel_rows], pending)

        # -- the router core ------------------------------------------------------
        # Static idx -> (port, vc, bit) lookup tables shared by all routers
        # (sized for the widest port block) replace div/mod in the scans.
        max_block = max(nports) * V
        port_of = [idx // V for idx in range(max_block)]
        vc_of = [idx % V for idx in range(max_block)]
        bit_of = [1 << idx for idx in range(max_block)]

        def step_router(r: int, now: int) -> None:
            # Bind the closure cells once; the scans below hit these names
            # hundreds of times per call.
            _buf = buf
            _state = state
            _owner = owner
            _credits = credits
            _outp = outp
            _outv = outv
            _port_of = port_of
            _vc_of = vc_of
            base_r = base[r]
            router_ports = nrports[r]

            # .. route computation + VC allocation (masked scan) ..........
            scan = alloc[r]
            while scan:
                low = scan & -scan
                scan ^= low
                idx = low.bit_length() - 1
                g = base_r + idx
                if _state[g] == _IDLE:
                    head = _buf[g][0]
                    if not head.is_head:
                        raise RuntimeError(
                            f"router {routers[r].router_id}: non-head flit at the "
                            f"front of an idle VC (port {_port_of[idx]}, "
                            f"vc {_vc_of[idx]}); packet framing is broken"
                        )
                    minimal, escape_port, escape_only = route_tab[r][
                        head.packet.destination
                    ]
                    minp[g] = minimal
                    escp[g] = escape_port
                    esco[g] = escape_only
                    wait[g] = 0
                    _state[g] = _VC_ALLOC

                # VC allocation (state is _VC_ALLOC for every bit that
                # survives to here).
                minimal = minp[g]
                target_port = minimal[0] if minimal else None
                if target_port is not None and target_port >= router_ports:
                    # Ejection ports accept any free VC.
                    out_base = base_r + target_port * V
                    for out_vc in range(V):
                        if _owner[out_base + out_vc] is None:
                            _owner[out_base + out_vc] = (_port_of[idx], _vc_of[idx])
                            _outp[g] = target_port
                            _outv[g] = out_vc
                            _state[g] = _ACTIVE
                            alloc[r] &= ~low
                            break
                    continue

                if not esco[g] and adaptive:
                    best_port = -1
                    best_vc = -1
                    best_score = -1
                    found = False
                    for candidate_port in minimal:
                        out_base = base_r + candidate_port * V
                        port_credits = 0
                        free_vc = -1
                        free_vc_credits = -1
                        for vc in adaptive:
                            vc_credits = _credits[out_base + vc]
                            port_credits += vc_credits
                            if _owner[out_base + vc] is None and vc_credits > free_vc_credits:
                                free_vc = vc
                                free_vc_credits = vc_credits
                        if free_vc < 0:
                            continue
                        if not found or port_credits > best_score:
                            found = True
                            best_score = port_credits
                            best_port = candidate_port
                            best_vc = free_vc
                    if found:
                        _owner[base_r + best_port * V + best_vc] = (_port_of[idx], _vc_of[idx])
                        _outp[g] = best_port
                        _outv[g] = best_vc
                        _state[g] = _ACTIVE
                        alloc[r] &= ~low
                        continue

                wait[g] += 1
                if esco[g] or wait[g] > patience:
                    escape_port = escp[g]
                    if escape_port is not None:
                        out_g = base_r + escape_port * V + escape_vc
                        if _owner[out_g] is None:
                            _owner[out_g] = (_port_of[idx], _vc_of[idx])
                            _outp[g] = escape_port
                            _outv[g] = escape_vc
                            _state[g] = _ACTIVE
                            alloc[r] &= ~low

            # .. switch allocation (masked nomination scan) ................
            active_bits = occ[r] & ~alloc[r]
            if not active_bits:
                return
            nominations: dict[int, int] = {}  # port -> vc index
            scan = active_bits
            while scan:
                low = scan & -scan
                scan ^= low
                idx = low.bit_length() - 1
                port = _port_of[idx]
                if port in nominations:
                    continue
                g = base_r + idx
                head = _buf[g][0]
                if now < head.arrival_cycle + router_latency:
                    continue
                out_port = _outp[g]
                if out_port < router_ports:
                    if _credits[base_r + out_port * V + _outv[g]] <= 0:
                        continue
                nominations[port] = _vc_of[idx]

            if not nominations:
                return

            granted: dict[int, tuple[int, int]] = {}  # out_port -> (port, vc)
            start = sa_ptr[r]
            ports = nports[r]
            for offset in range(ports):
                port = (start + offset) % ports
                vc = nominations.get(port)
                if vc is None:
                    continue
                out_port = _outp[base_r + port * V + vc]
                if out_port is not None and out_port not in granted:
                    granted[out_port] = (port, vc)
            sa_ptr[r] = (sa_ptr[r] + 1) % ports

            router_out_channels = out_ch[r]
            router_credit_channels = cred_ch[r]
            for out_port, (port, vc) in granted.items():
                idx = port * V + vc
                g = base_r + idx
                buffer = _buf[g]
                flit = buffer.popleft()
                counts[r] -= 1
                if not buffer:
                    occ[r] &= ~bit_of[idx]
                out_vc = _outv[g]
                out_g = base_r + out_port * V + out_vc
                if out_port < router_ports:
                    _credits[out_g] -= 1
                    flit.hops += 1
                flit.vc = out_vc
                channel = router_out_channels[out_port]
                if channel is None:
                    raise RuntimeError(
                        f"router {routers[r].router_id}: no channel attached to "
                        f"output port {out_port}"
                    )
                channel.send(flit, now)
                fwd[r] += 1
                credit_channel = router_credit_channels[port]
                if credit_channel is not None:
                    credit_channel.send(vc, now)
                if flit.is_tail:
                    _owner[out_g] = None
                    _state[g] = _IDLE
                    _outp[g] = None
                    _outv[g] = None
                    minp[g] = ()
                    escp[g] = None
                    esco[g] = False
                    if buffer:
                        alloc[r] |= bit_of[idx]

        # -- the cycle loop -------------------------------------------------------
        ejected_before = ejected_after = 0
        injected_before = injected_after = 0
        router_range = range(num_routers)

        try:
            cycle = 0
            while cycle < total_cycles:
                if cycle == warmup_end:
                    ejected_before = network.total_ejected_flits()
                    injected_before = _injected_total(network)
                if cycle == measure_end:
                    ejected_after = network.total_ejected_flits()
                    injected_after = _injected_total(network)
                if cycle >= measure_end and not pending and not any(counts):
                    # Endpoints no longer step; nothing is buffered or in
                    # flight, so the remaining drain cycles are provably idle.
                    stats.early_exit_cycle = cycle
                    break

                bucket = pending.pop(cycle, None)
                if bucket is not None:
                    for index in sorted(set(bucket)):
                        channel, handler = channel_rows[index]
                        for payload in channel.receive(cycle):
                            handler(payload, cycle)
                            stats.channel_deliveries += 1

                if cycle < measure_end:
                    measured = cycle >= warmup_end
                    for (
                        endpoint_id,
                        draw,
                        probability,
                        rng,
                        endpoint,
                        source_queue,
                        pending_flits,
                        inject,
                        next_packet_id,
                    ) in gen_rows:
                        # Inlined Endpoint._generate: same draw, same
                        # destination order, same allocator sequence.
                        if draw() < probability:
                            destination = traffic_destination(endpoint_id, rng)
                            source_queue.append(
                                Packet(
                                    next_packet_id(),
                                    endpoint_id,
                                    destination,
                                    packet_size,
                                    cycle,
                                    measured,
                                )
                            )
                            endpoint.created_packets += 1
                        # The injection stage only acts when work is queued
                        # (and never draws from the RNG), so idle endpoints
                        # are skipped wholesale.
                        if source_queue or pending_flits:
                            inject(cycle)
                    stats.endpoint_steps += num_endpoints_total

                for r in router_range:
                    if counts[r]:
                        step_router(r, cycle)
                        stats.router_steps += 1

                stats.cycles_executed += 1
                cycle += 1
        finally:
            # Hand the (possibly mid-run, but structurally consistent)
            # state back to the object model and detach the observers —
            # unconditionally, so an in-flight exception never leaves the
            # network holding stale pre-run router state.
            self._import_router_states(
                buf, state, minp, escp, esco, outp, outv, wait, owner, credits,
                base, counts, sa_ptr, fwd,
            )
            for channel, _ in channel_rows:
                channel.observer = None

        # Bulk consistency check on the flat tables (success path only, so
        # it cannot mask the root cause of a loop error).
        recounted = np.fromiter((len(b) for b in buf), dtype=np.int64, count=len(buf))
        if int(recounted.sum()) != sum(counts):
            raise RuntimeError(
                "vectorized engine lost track of buffered flits: "
                f"tables hold {int(recounted.sum())}, counters say {sum(counts)}"
            )

        if config.drain_cycles == 0:
            ejected_after = network.total_ejected_flits()
            injected_after = _injected_total(network)

        return PhaseSnapshots(
            ejected_before_measurement=ejected_before,
            injected_before_measurement=injected_before,
            ejected_after_measurement=ejected_after,
            injected_after_measurement=injected_after,
            total_cycles=total_cycles,
            cycles_executed=stats.cycles_executed,
        )

    def _import_router_states(
        self, buf, state, minp, escp, esco, outp, outv, wait, owner, credits,
        base, counts, sa_ptr, fwd,
    ) -> None:
        """Write the flat tables back into the router objects."""
        from repro.noc.router import RouterState

        config = self._config
        V = config.num_virtual_channels
        for r, router in enumerate(self._network.routers):
            start = base[r]
            stop = start + router.num_ports * V
            router.import_state(
                RouterState(
                    buffers=buf[start:stop],
                    states=state[start:stop],
                    minimal_ports=minp[start:stop],
                    escape_ports=escp[start:stop],
                    escape_only=esco[start:stop],
                    out_ports=outp[start:stop],
                    out_vcs=outv[start:stop],
                    alloc_wait_cycles=wait[start:stop],
                    owners=owner[start:stop],
                    credits=credits[start:stop],
                    sa_port_pointer=sa_ptr[r],
                    buffered_flits=counts[r],
                    forwarded_flits=fwd[r],
                )
            )


# ---------------------------------------------------------------------------
# The batched multi-point engine
# ---------------------------------------------------------------------------


class _BatchEmitter:
    """A drop-in ``send`` target that writes into the batch event buckets.

    The batched engine swaps each endpoint's injection :class:`Channel`
    for one of these, so endpoint injection lands directly in the engine's
    per-cycle delivery buckets — no channel queue traffic, no observer
    indirection — while the real channel stays attached to the network
    wiring for post-run introspection.
    """

    __slots__ = ("index", "latency", "pending")

    def __init__(self, index: int, latency: int, pending: dict) -> None:
        self.index = index
        self.latency = latency
        self.pending = pending

    def send(self, payload, now: int) -> None:
        arrival = now + self.latency
        bucket = self.pending.get(arrival)
        if bucket is None:
            self.pending[arrival] = [(self.index, payload)]
        else:
            bucket.append((self.index, payload))


#: Sort key for delivery buckets: the channel index (payloads of distinct
#: channels never compare, and per-channel FIFO rides on sort stability).
_first_item = itemgetter(0)


class BatchEngine:
    """Run many simulation points over **one** reusable network.

    This is the batch dimension of the vectorized engine: a batch shares
    one topology, one :class:`~repro.noc.routing.RoutingTables` instance,
    one flat-state table layout, one precomputed ``route_tab`` and one set
    of delivery handlers, while every point gets its own occupancy masks,
    endpoint RNG streams and statistics accumulators.  On top of the
    amortised build, the batched cycle loop is leaner than the single-run
    loop of :class:`VectorizedEngine`:

    * **Precomputed generation schedules.**  A point's endpoint RNG
      streams are consumed up front (batch points always start from a
      freshly reset network, so the whole draw sequence is known): per
      endpoint, one tight loop over the generation cycles records the
      packet-creation cycles and destinations.  The per-cycle
      all-endpoints generation scan disappears; the draws, their order
      and the shared packet-id allocator sequence are exactly those of
      the streaming engines.
    * **Direct event emission.**  Channel traversal becomes a single
      bucket append: router forwards and endpoint injections write
      ``(channel index, payload)`` into per-cycle buckets, and deliveries
      replay per cycle in channel-registration order (a stable sort by
      index keeps per-channel FIFO order).  Payloads still in flight when
      a point ends are handed back to the real :class:`Channel` objects,
      so conservation checks and introspection see exactly the state an
      object-stepped run would leave.
    * **Active-injector tracking.**  Only endpoints with queued work are
      asked to inject (``inject_pending`` is a no-op on empty queues and
      never consults the RNG, so skipping it is observationally free).
    * **Router sleep.**  A step that leaves no VC awaiting allocation and
      nominates nothing is a provable no-op (``sa_ptr`` only advances on
      nominations, and escape-patience counters only tick on allocation
      attempts), and the router's state cannot change until a flit or
      credit arrives (both are events that wake it) or the earliest
      latency-gated head becomes eligible (a computable time).  The
      batched loop skips those steps outright — at low load roughly every
      other router step is such a latency-wait no-op.

    Equivalence contract: every point is **bit-identical** to a fresh
    per-point run of any engine under the same configuration and seed.
    The caller must treat the network as owned by the engine between
    :meth:`run_point` calls and must call :meth:`close` (or use the
    instance as a context manager) before touching the network again.
    """

    def __init__(self, network: Network, config: SimulationConfig) -> None:
        self._network = network
        self._config = config
        V = config.num_virtual_channels
        self._escape_only_all = V == 1

        routers = network.routers
        self._routers = routers
        self._endpoints = network.endpoints
        self._nports = [router.num_ports for router in routers]
        self._nrports = [router.num_router_ports for router in routers]
        block_sizes = np.asarray(self._nports, dtype=np.int64) * V
        base_offsets = np.concatenate(([0], np.cumsum(block_sizes)))
        self._base = [int(offset) for offset in base_offsets[:-1]]
        total = int(base_offsets[-1])

        max_block = max(self._nports) * V
        self._port_of = [idx // V for idx in range(max_block)]
        self._vc_of = [idx % V for idx in range(max_block)]
        self._bit_of = [1 << idx for idx in range(max_block)]

        self._route_tab = build_route_tab(network, self._escape_only_all)

        # Persistent flat tables: the list objects (and the buffer deques
        # inside them) are allocated once and refreshed in place per point,
        # so every closure built below stays valid across the whole batch.
        num_routers = len(routers)
        self._buf = [None] * total
        self._state = [0] * total
        self._minp = [()] * total
        self._escp = [None] * total
        self._esco = [False] * total
        self._outp = [None] * total
        self._outv = [None] * total
        self._wait = [0] * total
        self._owner = [None] * total
        self._credits = [0] * total
        self._occ = [0] * num_routers
        self._alloc = [0] * num_routers
        self._counts = [0] * num_routers
        self._sa_ptr = [0] * num_routers
        self._fwd = [0] * num_routers
        #: Router sleep: router r is only stepped when ``wake[r] <= cycle``
        #: (see the class docstring); flit/credit arrivals reset it to 0.
        self._wake = [0] * num_routers

        #: The shared per-cycle event buckets: cycle -> [(channel index,
        #: payload), ...].  One persistent dict, cleared per point, so the
        #: emitters and the router core can bind it once.
        self._pending: dict[int, list] = {}

        self._channels = [channel for channel, _ in network.channel_targets()]
        self._handlers = self._build_handlers()
        self._build_emit_tables()
        self._inject_rows = [
            (endpoint.inject_pending, *endpoint.source_buffers())
            for endpoint in self._endpoints
        ]
        self._step_router = self._build_router_core()
        self._closed = False
        # Seed the buffer table once: export_state hands over the routers'
        # own deques, which Router.reset clears *in place*, so the aliasing
        # between flat tables and object model holds for the whole batch
        # and per-point refreshes never have to re-export.
        for r, router in enumerate(routers):
            snapshot = router.export_state()
            start = self._base[r]
            stop = start + self._nports[r] * V
            self._buf[start:stop] = snapshot.buffers

    # -- construction ---------------------------------------------------------

    def _build_handlers(self):
        """Delivery handlers per channel index, writing into the flat tables."""
        network = self._network
        endpoints = self._endpoints
        depth = self._config.buffer_depth_flits
        V = self._config.num_virtual_channels
        buf, state = self._buf, self._state
        counts, occ, alloc = self._counts, self._occ, self._alloc
        base = self._base
        routers = self._routers
        wake = self._wake

        def make_router_flit_handler(r: int, port: int):
            base_r = base[r]
            port_bits = port * V
            router_id = routers[r].router_id

            def handle(flit, now: int) -> None:
                idx = port_bits + flit.vc
                g = base_r + idx
                buffer = buf[g]
                if len(buffer) >= depth:
                    raise RuntimeError(
                        f"router {router_id}: input buffer overflow on port {port} "
                        f"vc {flit.vc}; credit flow control is broken"
                    )
                flit.arrival_cycle = now
                buffer.append(flit)
                counts[r] += 1
                bit = 1 << idx
                occ[r] |= bit
                if state[g] != _ACTIVE:
                    alloc[r] |= bit
                wake[r] = 0

            return handle

        def make_router_credit_handler(r: int, port: int):
            credits = self._credits
            credit_base = base[r] + port * V

            def handle(vc, now: int) -> None:
                credits[credit_base + int(vc)] += 1
                wake[r] = 0

            return handle

        def make_endpoint_credit_handler(endpoint):
            accept = endpoint.accept_credit

            def handle(vc, now: int) -> None:
                accept(int(vc))

            return handle

        handlers = []
        for channel, target in network.channel_targets():
            kind, owner_id, port = target
            if kind == "router_flit":
                handler = make_router_flit_handler(owner_id, port)
            elif kind == "router_credit":
                handler = make_router_credit_handler(owner_id, port)
            elif kind == "endpoint_flit":
                handler = endpoints[owner_id].accept_flit
            elif kind == "endpoint_credit":
                handler = make_endpoint_credit_handler(endpoints[owner_id])
            else:  # pragma: no cover - new target kinds must be wired here
                raise ValueError(f"unknown channel target kind {kind!r}")
            handlers.append(handler)
        return handlers

    def _build_emit_tables(self) -> None:
        """Per-router emission metadata and per-endpoint injection emitters."""
        index_of = {id(channel): index for index, channel in enumerate(self._channels)}
        pending = self._pending

        def emit_entry(channel):
            if channel is None:
                return None
            return (index_of[id(channel)], channel.latency)

        self._out_emit = [
            [emit_entry(channel) for channel in router.output_channels()]
            for router in self._routers
        ]
        self._credit_emit = [
            [emit_entry(channel) for channel in router.input_credit_channels()]
            for router in self._routers
        ]
        # Swap every endpoint's injection channel for a bucket emitter;
        # close() restores the real channels.
        self._real_out_channels = []
        for endpoint in self._endpoints:
            channel = endpoint.out_channel
            if channel is None:
                raise RuntimeError("endpoint has no injection channel attached")
            self._real_out_channels.append(channel)
            endpoint.attach_output_channel(
                _BatchEmitter(index_of[id(channel)], channel.latency, pending)
            )

    def _build_router_core(self):
        """The per-router step function over the persistent flat tables.

        This is the router core of :meth:`VectorizedEngine.run` with one
        change: forwards and credit returns append to the event buckets
        directly instead of going through ``Channel.send`` + observer.
        Everything else — scan orders, allocation decisions, round-robin
        state — is identical, which is what keeps the batch bit-identical.
        """
        config = self._config
        V = config.num_virtual_channels
        escape_vc = config.escape_vc
        adaptive = config.adaptive_vcs
        router_latency = config.router_latency_cycles
        patience = config.escape_patience_cycles

        routers = self._routers
        base = self._base
        nports = self._nports
        nrports = self._nrports
        port_of = self._port_of
        vc_of = self._vc_of
        bit_of = self._bit_of
        route_tab = self._route_tab
        buf = self._buf
        state = self._state
        minp = self._minp
        escp = self._escp
        esco = self._esco
        outp = self._outp
        outv = self._outv
        wait = self._wait
        owner = self._owner
        credits = self._credits
        occ = self._occ
        alloc = self._alloc
        counts = self._counts
        sa_ptr = self._sa_ptr
        fwd = self._fwd
        out_emit = self._out_emit
        credit_emit = self._credit_emit
        pending = self._pending
        wake = self._wake
        never = 1 << 62  # "event-driven wake only" sentinel

        def step_router(r: int, now: int) -> None:
            _buf = buf
            _state = state
            _owner = owner
            _credits = credits
            _outp = outp
            _outv = outv
            _port_of = port_of
            _vc_of = vc_of
            base_r = base[r]
            router_ports = nrports[r]

            # .. route computation + VC allocation (masked scan) ..........
            scan = alloc[r]
            while scan:
                low = scan & -scan
                scan ^= low
                idx = low.bit_length() - 1
                g = base_r + idx
                if _state[g] == _IDLE:
                    head = _buf[g][0]
                    if not head.is_head:
                        raise RuntimeError(
                            f"router {routers[r].router_id}: non-head flit at the "
                            f"front of an idle VC (port {_port_of[idx]}, "
                            f"vc {_vc_of[idx]}); packet framing is broken"
                        )
                    minimal, escape_port, escape_only = route_tab[r][
                        head.packet.destination
                    ]
                    minp[g] = minimal
                    escp[g] = escape_port
                    esco[g] = escape_only
                    wait[g] = 0
                    _state[g] = _VC_ALLOC

                minimal = minp[g]
                target_port = minimal[0] if minimal else None
                if target_port is not None and target_port >= router_ports:
                    # Ejection ports accept any free VC.
                    out_base = base_r + target_port * V
                    for out_vc in range(V):
                        if _owner[out_base + out_vc] is None:
                            _owner[out_base + out_vc] = (_port_of[idx], _vc_of[idx])
                            _outp[g] = target_port
                            _outv[g] = out_vc
                            _state[g] = _ACTIVE
                            alloc[r] &= ~low
                            break
                    continue

                if not esco[g] and adaptive:
                    best_port = -1
                    best_vc = -1
                    best_score = -1
                    found = False
                    for candidate_port in minimal:
                        out_base = base_r + candidate_port * V
                        port_credits = 0
                        free_vc = -1
                        free_vc_credits = -1
                        for vc in adaptive:
                            vc_credits = _credits[out_base + vc]
                            port_credits += vc_credits
                            if _owner[out_base + vc] is None and vc_credits > free_vc_credits:
                                free_vc = vc
                                free_vc_credits = vc_credits
                        if free_vc < 0:
                            continue
                        if not found or port_credits > best_score:
                            found = True
                            best_score = port_credits
                            best_port = candidate_port
                            best_vc = free_vc
                    if found:
                        _owner[base_r + best_port * V + best_vc] = (_port_of[idx], _vc_of[idx])
                        _outp[g] = best_port
                        _outv[g] = best_vc
                        _state[g] = _ACTIVE
                        alloc[r] &= ~low
                        continue

                wait[g] += 1
                if esco[g] or wait[g] > patience:
                    escape_port = escp[g]
                    if escape_port is not None:
                        out_g = base_r + escape_port * V + escape_vc
                        if _owner[out_g] is None:
                            _owner[out_g] = (_port_of[idx], _vc_of[idx])
                            _outp[g] = escape_port
                            _outv[g] = escape_vc
                            _state[g] = _ACTIVE
                            alloc[r] &= ~low

            # .. switch allocation (masked nomination scan) ................
            active_bits = occ[r] & ~alloc[r]
            if not active_bits:
                return
            nominations: dict[int, int] = {}  # port -> vc index
            next_ready = never
            scan = active_bits
            while scan:
                low = scan & -scan
                scan ^= low
                idx = low.bit_length() - 1
                port = _port_of[idx]
                if port in nominations:
                    continue
                g = base_r + idx
                head = _buf[g][0]
                ready = head.arrival_cycle + router_latency
                if now < ready:
                    if ready < next_ready:
                        next_ready = ready
                    continue
                out_port = _outp[g]
                if out_port < router_ports:
                    if _credits[base_r + out_port * V + _outv[g]] <= 0:
                        continue
                nominations[port] = _vc_of[idx]

            if not nominations:
                # Provable no-op: sa_ptr only moves on nominations and no
                # VC awaits allocation (escape-patience counters only tick
                # on allocation attempts), so until a flit or credit
                # arrives (events, which reset wake) or the earliest
                # latency-gated head becomes eligible, re-stepping this
                # router cannot change any state.
                if not alloc[r]:
                    wake[r] = next_ready
                return

            granted: dict[int, tuple[int, int]] = {}  # out_port -> (port, vc)
            start = sa_ptr[r]
            ports = nports[r]
            for offset in range(ports):
                port = (start + offset) % ports
                vc = nominations.get(port)
                if vc is None:
                    continue
                out_port = _outp[base_r + port * V + vc]
                if out_port is not None and out_port not in granted:
                    granted[out_port] = (port, vc)
            sa_ptr[r] = (sa_ptr[r] + 1) % ports

            router_out_emit = out_emit[r]
            router_credit_emit = credit_emit[r]
            for out_port, (port, vc) in granted.items():
                idx = port * V + vc
                g = base_r + idx
                buffer = _buf[g]
                flit = buffer.popleft()
                counts[r] -= 1
                if not buffer:
                    occ[r] &= ~bit_of[idx]
                out_vc = _outv[g]
                out_g = base_r + out_port * V + out_vc
                if out_port < router_ports:
                    _credits[out_g] -= 1
                    flit.hops += 1
                flit.vc = out_vc
                emit = router_out_emit[out_port]
                if emit is None:
                    raise RuntimeError(
                        f"router {routers[r].router_id}: no channel attached to "
                        f"output port {out_port}"
                    )
                emit_index, emit_latency = emit
                arrival = now + emit_latency
                bucket = pending.get(arrival)
                if bucket is None:
                    pending[arrival] = [(emit_index, flit)]
                else:
                    bucket.append((emit_index, flit))
                fwd[r] += 1
                credit = router_credit_emit[port]
                if credit is not None:
                    credit_index, credit_latency = credit
                    arrival = now + credit_latency
                    bucket = pending.get(arrival)
                    if bucket is None:
                        pending[arrival] = [(credit_index, vc)]
                    else:
                        bucket.append((credit_index, vc))
                if flit.is_tail:
                    _owner[out_g] = None
                    _state[g] = _IDLE
                    _outp[g] = None
                    _outv[g] = None
                    minp[g] = ()
                    escp[g] = None
                    esco[g] = False
                    if buffer:
                        alloc[r] |= bit_of[idx]

        return step_router

    # -- per-point lifecycle --------------------------------------------------

    def _refresh_tables(self) -> None:
        """Reset the flat tables to the pristine (just reset) state in place.

        Element-wise refills keep the list objects — and therefore every
        closure built at construction — valid.  The buffer deques are the
        routers' own (cleared in place by :meth:`Router.reset`), so table
        and object model stay aliased across the whole batch.
        """
        total = len(self._state)
        depth = self._config.buffer_depth_flits
        self._state[:] = [_IDLE] * total
        self._minp[:] = [()] * total
        self._escp[:] = [None] * total
        self._esco[:] = [False] * total
        self._outp[:] = [None] * total
        self._outv[:] = [None] * total
        self._wait[:] = [0] * total
        self._owner[:] = [None] * total
        self._credits[:] = [depth] * total
        num_routers = len(self._routers)
        self._counts[:] = [0] * num_routers
        self._sa_ptr[:] = [0] * num_routers
        self._fwd[:] = [0] * num_routers
        self._occ[:] = [0] * num_routers
        self._alloc[:] = [0] * num_routers
        self._wake[:] = [0] * num_routers

    def _precompute_generation(self, measure_end: int) -> dict[int, list]:
        """Consume every endpoint RNG stream into per-cycle creation events.

        Per endpoint the draw sequence (one Bernoulli draw per generation
        cycle, plus a destination draw on success) is exactly the one the
        streaming engines perform — endpoint RNG streams are private, so
        front-loading them is invisible.  Buckets are appended endpoint-
        major per cycle, matching the ascending-endpoint stepping order
        that pins the shared packet-id allocator sequence.
        """
        gen_buckets: dict[int, list] = {}
        traffic_destination = self._network.traffic.destination
        for endpoint in self._endpoints:
            probability = endpoint.packet_probability
            if probability <= 0.0:
                continue
            if endpoint.packet_id_allocator is None:
                raise RuntimeError("endpoint has no packet-id allocator attached")
            rng = endpoint.rng
            draw = rng.random
            endpoint_id = endpoint.endpoint_id
            source_queue, _ = endpoint.source_buffers()
            row = (endpoint, endpoint_id, source_queue)
            for cycle in range(measure_end):
                if draw() < probability:
                    entry = (row, traffic_destination(endpoint_id, rng))
                    bucket = gen_buckets.get(cycle)
                    if bucket is None:
                        gen_buckets[cycle] = [entry]
                    else:
                        bucket.append(entry)
        return gen_buckets

    def run_point(
        self, *, seed: int, injection_rate: float
    ) -> tuple[PhaseSnapshots, EngineStats]:
        """Reset the network to ``(seed, injection_rate)`` and run one point."""
        if self._closed:
            raise RuntimeError("BatchEngine is closed; create a new one")
        network = self._network
        config = self._config
        network.reset(seed=seed, injection_rate=injection_rate)
        self._refresh_tables()
        self._pending.clear()

        stats = EngineStats()
        warmup_end, measure_end, total_cycles = _phase_bounds(config)
        packet_size = config.packet_size_flits
        gen_buckets = self._precompute_generation(measure_end)
        # All endpoints share the network-wide allocator; grab it once.
        next_packet_id = self._endpoints[0].packet_id_allocator
        num_endpoints_total = len(self._endpoints)

        pending = self._pending
        handlers = self._handlers
        inject_rows = self._inject_rows
        counts = self._counts
        wake = self._wake
        step_router = self._step_router
        router_range = range(len(self._routers))
        active: set[int] = set()

        ejected_before = ejected_after = 0
        injected_before = injected_after = 0

        try:
            cycle = 0
            while cycle < total_cycles:
                if cycle == warmup_end:
                    ejected_before = network.total_ejected_flits()
                    injected_before = _injected_total(network)
                if cycle == measure_end:
                    ejected_after = network.total_ejected_flits()
                    injected_after = _injected_total(network)
                if cycle >= measure_end and not pending and not any(counts):
                    stats.early_exit_cycle = cycle
                    break

                bucket = pending.pop(cycle, None)
                if bucket is not None:
                    # Stable sort by channel index replays same-cycle
                    # deliveries in channel-registration order with
                    # per-channel FIFO intact — the legacy scan order.
                    if len(bucket) > 1:
                        bucket.sort(key=_first_item)
                    for index, payload in bucket:
                        handlers[index](payload, cycle)
                    stats.channel_deliveries += len(bucket)

                if cycle < measure_end:
                    events = gen_buckets.pop(cycle, None)
                    if events is not None:
                        measured = cycle >= warmup_end
                        for (endpoint, endpoint_id, source_queue), destination in events:
                            source_queue.append(
                                Packet(
                                    next_packet_id(),
                                    endpoint_id,
                                    destination,
                                    packet_size,
                                    cycle,
                                    measured,
                                )
                            )
                            endpoint.created_packets += 1
                            active.add(endpoint_id)
                    if active:
                        for endpoint_id in sorted(active):
                            inject, source_queue, pending_flits = inject_rows[endpoint_id]
                            inject(cycle)
                            if not source_queue and not pending_flits:
                                active.discard(endpoint_id)
                    stats.endpoint_steps += num_endpoints_total

                for r in router_range:
                    if counts[r] and wake[r] <= cycle:
                        step_router(r, cycle)
                        stats.router_steps += 1

                stats.cycles_executed += 1
                cycle += 1
        finally:
            self._finish_point()

        if config.drain_cycles == 0:
            ejected_after = network.total_ejected_flits()
            injected_after = _injected_total(network)

        return (
            PhaseSnapshots(
                ejected_before_measurement=ejected_before,
                injected_before_measurement=injected_before,
                ejected_after_measurement=ejected_after,
                injected_after_measurement=injected_after,
                total_cycles=total_cycles,
                cycles_executed=stats.cycles_executed,
            ),
            stats,
        )

    def _finish_point(self) -> None:
        """Sync flat state back to the objects and re-home in-flight payloads."""
        from repro.noc.router import RouterState

        V = self._config.num_virtual_channels
        for r, router in enumerate(self._routers):
            start = self._base[r]
            stop = start + self._nports[r] * V
            router.import_state(
                RouterState(
                    buffers=self._buf[start:stop],
                    states=self._state[start:stop],
                    minimal_ports=self._minp[start:stop],
                    escape_ports=self._escp[start:stop],
                    escape_only=self._esco[start:stop],
                    out_ports=self._outp[start:stop],
                    out_vcs=self._outv[start:stop],
                    alloc_wait_cycles=self._wait[start:stop],
                    owners=self._owner[start:stop],
                    credits=self._credits[start:stop],
                    sa_port_pointer=self._sa_ptr[r],
                    buffered_flits=self._counts[r],
                    forwarded_flits=self._fwd[r],
                )
            )
        pending = self._pending
        if pending:
            # Undelivered payloads go back into the real channels, in
            # per-channel arrival order, so post-run introspection (flit
            # conservation, in-flight counts) matches an object-model run.
            by_channel: dict[int, list] = {}
            for arrival in sorted(pending):
                for index, payload in pending[arrival]:
                    items = by_channel.get(index)
                    if items is None:
                        by_channel[index] = [(arrival, payload)]
                    else:
                        items.append((arrival, payload))
            for index, items in by_channel.items():
                self._channels[index].load(items)
            pending.clear()

    def close(self) -> None:
        """Re-attach the real endpoint channels; the network is free again."""
        if self._closed:
            return
        for endpoint, channel in zip(self._endpoints, self._real_out_channels):
            endpoint.attach_output_channel(channel)
        self._closed = True

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
