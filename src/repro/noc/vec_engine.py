"""The vectorized engines: array-native cycle loops over the whole network.

This module hosts the numpy-backed cycle-loop engines next to the legacy
dense scan and the active-set scheduler of :mod:`repro.noc.engine`.  Both
delegate the actual cycle stepping to the array kernel
(:mod:`repro.noc.array_kernel`), which expresses routing, VC allocation,
switch allocation and credit/occupancy updates as masked ndarray
operations over the full flat ``(router, port, vc)`` state — no
per-router Python scans — while preserving the object model's exact
(port-major, vc-minor) arbitration order:

* :class:`VectorizedEngine` runs a single simulation point on one kernel
  slot, accepting a network in any (also mid-run) state.
* :class:`BatchEngine` runs a whole batch of same-structure sweep points
  through one shared kernel whose state arrays carry a leading *points*
  axis — one slot per batch point — so the multi-point sweep operates on
  ``(points, router-port-vc)`` ndarrays with every static table built
  exactly once.

At the end of each run (or on error) the flat state is materialised back
into the router objects (:meth:`Router.import_state`), so all post-run
introspection — flit conservation, in-flight measured packets, buffered
counts — reports exactly what a legacy run would.

Equivalence contract: under the same configuration and seed the engines
are **bit-identical** to the legacy and active-set engines, for every
arrangement kind, traffic pattern (including trace replay) and phase
configuration; the equivalence suite compares final results field by
field across all engines.
"""

from __future__ import annotations

from repro.noc.config import SimulationConfig
from repro.noc.engine import EngineStats, PhaseSnapshots
from repro.noc.network import Network


def build_route_tab(
    network: Network, escape_only_all: bool
) -> list[list[tuple[tuple[int, ...], int, bool]]]:
    """Precompute ``route_tab[router][destination_endpoint]`` for a network.

    Each entry is the ``(minimal output ports, escape port, escape_only)``
    triple of ``Router._compute_route`` with ejection folded in (local
    destinations route straight to their endpoint port and are never
    escape-only), mirroring the object model exactly so written-back state
    stays bit-identical.  The table depends only on the topology, the port
    layout and the VC count — batched sweeps build it once and share it
    across every point.
    """
    routing = network.routing
    endpoint_to_router = network.endpoint_to_router
    num_endpoints = network.num_endpoints
    route_tab: list[list[tuple[tuple[int, ...], int, bool]]] = []
    for r, router in enumerate(network.routers):
        row: list[tuple[tuple[int, ...], int, bool]] = []
        for destination in range(num_endpoints):
            destination_router = endpoint_to_router[destination]
            if destination_router == r:
                ejection_port = router.port_of_endpoint(destination)
                row.append(((ejection_port,), ejection_port, False))
            else:
                minimal = tuple(
                    router.port_of_neighbor(neighbor)
                    for neighbor in routing.minimal_next_hops(r, destination_router)
                )
                escape_port = router.port_of_neighbor(
                    routing.escape_next_hop(r, destination_router)
                )
                row.append((minimal, escape_port, escape_only_all))
        route_tab.append(row)
    return route_tab


class VectorizedEngine:
    """Array-kernel cycle loop; see :mod:`repro.noc.array_kernel`.

    An engine instance is single-use: create one per :meth:`run` call.
    The interface mirrors :class:`repro.noc.engine.ActiveSetEngine` so
    :class:`~repro.noc.simulator.NocSimulator` can treat them uniformly.
    The engine accepts a network in any (also mid-run) state: the kernel
    captures routers and in-flight channel payloads, runs the phase loop
    on the flat arrays, and materialises the final state back into the
    object model — bit-identical to the legacy dense loop.
    """

    def __init__(self, network: Network, config: SimulationConfig) -> None:
        self._network = network
        self._config = config
        self.stats = EngineStats()

    def run(self, telemetry=None) -> PhaseSnapshots:
        """Advance the network to the end of the drain phase (or early exit).

        ``telemetry`` is an optional
        :class:`~repro.telemetry.TelemetrySession` forwarded to the
        kernel's cycle loop (see :meth:`ArrayKernel.run_point`).
        """
        from repro.noc.array_kernel import ArrayKernel

        network = self._network
        kernel = ArrayKernel(network, self._config)
        kernel.load_from_network(0)
        endpoints = network.endpoints
        real_channels = [endpoint.out_channel for endpoint in endpoints]
        for endpoint, emitter in zip(endpoints, kernel.endpoint_emitters()):
            endpoint.attach_output_channel(emitter)
        try:
            return kernel.run_point(0, self.stats, telemetry)
        finally:
            for endpoint, channel in zip(endpoints, real_channels):
                endpoint.attach_output_channel(channel)


# ---------------------------------------------------------------------------
# The batched multi-point engine
# ---------------------------------------------------------------------------


class BatchEngine:
    """Run many simulation points over **one** reusable network.

    The batch axis of the array kernel: every point of a same-structure
    candidate group shares one topology, one
    :class:`~repro.noc.routing.RoutingTables` instance, one precomputed
    ``route_tab`` and **one** :class:`~repro.noc.array_kernel.ArrayKernel`
    — and every point owns one *slot* of the kernel's stacked state
    arrays, so the whole group's mutable router state lives in a single
    ``(points, router-port-vc)`` ndarray set.  Points evaluate
    sequentially (endpoint RNG replay and the shared packet-id allocator
    are inherently ordered), but the static tables, channel maps and
    array allocations are built once per group and a per-point refresh is
    a handful of vectorized row fills on the point's slot.

    Equivalence contract: every point is **bit-identical** to a fresh
    per-point run of any engine under the same configuration and seed.
    The caller must treat the network as owned by the engine between
    :meth:`run_point` calls and must call :meth:`close` (or use the
    instance as a context manager) before touching the network again.
    """

    def __init__(
        self, network: Network, config: SimulationConfig, *, points: int = 1
    ) -> None:
        from repro.noc.array_kernel import ArrayKernel

        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        self._network = network
        self._config = config
        self._slots = points
        # Built while the real injection channels are still attached (the
        # kernel records their indices and latencies for its emitters).
        self._kernel = ArrayKernel(network, config, slots=points)
        self._next_slot = 0
        self._endpoints = network.endpoints
        self._real_out_channels = []
        for endpoint, emitter in zip(self._endpoints, self._kernel.endpoint_emitters()):
            self._real_out_channels.append(endpoint.out_channel)
            endpoint.attach_output_channel(emitter)
        self._closed = False

    def run_point(
        self, *, seed: int, injection_rate: float, telemetry=None
    ) -> tuple[PhaseSnapshots, EngineStats]:
        """Reset the network to ``(seed, injection_rate)`` and run one point.

        ``telemetry`` is an optional per-point
        :class:`~repro.telemetry.TelemetrySession` forwarded to the
        kernel's cycle loop.
        """
        if self._closed:
            raise RuntimeError("BatchEngine is closed; create a new one")
        self._network.reset(seed=seed, injection_rate=injection_rate)
        kernel = self._kernel
        slot = self._next_slot
        self._next_slot = (slot + 1) % self._slots
        kernel.reset_events()
        kernel.refresh(slot)
        stats = EngineStats()
        snapshots = kernel.run_point(slot, stats, telemetry)
        return snapshots, stats

    def close(self) -> None:
        """Re-attach the real endpoint channels; the network is free again."""
        if self._closed:
            return
        for endpoint, channel in zip(self._endpoints, self._real_out_channels):
            endpoint.attach_output_channel(channel)
        self._closed = True

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
