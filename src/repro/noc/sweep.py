"""Injection-rate sweeps: zero-load latency and saturation throughput.

Section VI of the paper reports two numbers per design point:

* the **zero-load latency** — the average packet latency when the network
  is (almost) empty, measured here at a very low injection rate,
* the **saturation throughput** — the maximum traffic the network can
  sustain, reported by BookSim2 as a fraction of the full global
  bandwidth and converted into Tb/s with the link-bandwidth model.

Two estimation methods are provided for the saturation throughput:

* ``"overload"`` (default, one simulation): drive every endpoint at full
  injection rate and report the accepted flit rate — the plateau of the
  throughput-vs-offered-load curve;
* ``"sweep"`` (several simulations): sweep the offered load and return the
  maximum accepted rate observed, together with the whole curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE
from repro.noc.simulator import NocSimulator, SimulationResult
from repro.noc.traffic import TrafficPattern
from repro.utils.validation import check_fraction, check_in_choices

#: Injection rate used to approximate "zero load".
ZERO_LOAD_INJECTION_RATE = 0.02


@dataclass(frozen=True)
class InjectionSweepResult:
    """The latency / throughput curve of an injection-rate sweep."""

    rates: tuple[float, ...]
    results: tuple[SimulationResult, ...]

    @property
    def accepted_rates(self) -> tuple[float, ...]:
        """Accepted flit rates (per endpoint) at each offered rate."""
        return tuple(result.accepted_flit_rate for result in self.results)

    @property
    def mean_latencies(self) -> tuple[float, ...]:
        """Mean packet latencies at each offered rate."""
        return tuple(result.packet_latency.mean for result in self.results)

    @property
    def saturation_throughput(self) -> float:
        """Maximum accepted flit rate observed over the sweep."""
        return max(self.accepted_rates)

    def stable_points(self) -> list[tuple[float, SimulationResult]]:
        """The (rate, result) pairs at which the network was stable."""
        return [
            (rate, result)
            for rate, result in zip(self.rates, self.results)
            if result.throughput.is_stable
        ]


def _simulate(
    graph: ChipGraph,
    config: SimulationConfig,
    rate: float,
    traffic: TrafficPattern | str,
    engine: str = DEFAULT_ENGINE,
) -> SimulationResult:
    simulator = NocSimulator(graph, config, injection_rate=rate, traffic=traffic)
    return simulator.run(engine=engine)


def measure_zero_load_latency(
    graph: ChipGraph,
    config: SimulationConfig | None = None,
    *,
    traffic: TrafficPattern | str = "uniform",
    injection_rate: float = ZERO_LOAD_INJECTION_RATE,
    engine: str = DEFAULT_ENGINE,
) -> SimulationResult:
    """Measure the zero-load latency by simulating at a very low injection rate."""
    check_fraction("injection_rate", injection_rate)
    if config is None:
        config = SimulationConfig()
    return _simulate(graph, config, injection_rate, traffic, engine)


def run_injection_sweep(
    graph: ChipGraph,
    config: SimulationConfig | None = None,
    *,
    rates: Sequence[float] | None = None,
    traffic: TrafficPattern | str = "uniform",
    jobs: int = 1,
    cache_dir: str | None = None,
    engine: str = DEFAULT_ENGINE,
    batch: bool = False,
) -> InjectionSweepResult:
    """Simulate the network at a sequence of offered loads.

    With ``jobs > 1`` the offered loads are fanned across worker processes
    through :class:`repro.core.parallel.ParallelSweepRunner` (every rate
    runs with the configured base seed, so the curve is identical to a
    serial sweep).  ``cache_dir`` enables the on-disk result cache.  A
    :class:`TrafficPattern` *instance* forces the serial path because only
    pattern names can be shipped to workers.  ``engine`` selects the
    cycle-loop engine (all engines are bit-identical, so it never changes
    the curve — only the wall-clock).

    ``batch=True`` evaluates all rates over one shared topology / routing
    / flat-state build: serial sweeps go through
    :meth:`NocSimulator.run_batch`, worker-backed sweeps ship whole
    batches through :class:`repro.core.parallel.BatchedSweepRunner`.
    Batching is an amortisation, never a semantic change — the curve is
    bit-identical either way.
    """
    if config is None:
        config = SimulationConfig()
    if rates is None:
        rates = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0)
    for rate in rates:
        check_fraction("injection rate", rate)
    parallelizable = isinstance(traffic, str) and (jobs > 1 or cache_dir is not None)
    if parallelizable:
        # Imported lazily: repro.core imports the noc package at module load.
        from repro.core.parallel import (
            BatchedSweepRunner,
            ParallelSweepRunner,
            SweepCandidate,
        )

        edges = tuple(sorted(tuple(sorted(edge)) for edge in graph.edges()))
        candidates = [
            SweepCandidate(
                kind="custom",
                num_chiplets=graph.num_nodes,
                injection_rate=rate,
                traffic=traffic,
                graph_edges=edges,
            )
            for rate in rates
        ]
        runner_cls = BatchedSweepRunner if batch else ParallelSweepRunner
        runner = runner_cls(
            config, jobs=jobs, cache_dir=cache_dir, engine=engine, derive_seeds=False
        )
        records = runner.run(candidates)
        return InjectionSweepResult(
            rates=tuple(rates), results=tuple(record.result for record in records)
        )
    if batch:
        from repro.noc.simulator import BatchPoint

        results = NocSimulator.run_batch(
            graph,
            [BatchPoint(rate) for rate in rates],
            config=config,
            traffic=traffic,
            engine=engine,
        )
        return InjectionSweepResult(rates=tuple(rates), results=tuple(results))
    results = tuple(_simulate(graph, config, rate, traffic, engine) for rate in rates)
    return InjectionSweepResult(rates=tuple(rates), results=results)


def measure_saturation_throughput(
    graph: ChipGraph,
    config: SimulationConfig | None = None,
    *,
    traffic: TrafficPattern | str = "uniform",
    method: str = "overload",
    rates: Sequence[float] | None = None,
    engine: str = DEFAULT_ENGINE,
) -> tuple[float, SimulationResult | InjectionSweepResult]:
    """Estimate the saturation throughput in flits per cycle per endpoint.

    Returns a pair ``(saturation_rate, evidence)`` where ``evidence`` is the
    single overload simulation (``method="overload"``) or the full sweep
    (``method="sweep"``).
    """
    check_in_choices("method", method, ("overload", "sweep"))
    if config is None:
        config = SimulationConfig()
    if method == "overload":
        result = _simulate(graph, config, 1.0, traffic, engine)
        return result.accepted_flit_rate, result
    sweep = run_injection_sweep(graph, config, rates=rates, traffic=traffic, engine=engine)
    return sweep.saturation_throughput, sweep
