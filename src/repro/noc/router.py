"""Input-queued virtual-channel router.

The router model follows the canonical VC router microarchitecture used by
BookSim2:

* every input port has ``num_virtual_channels`` FIFO flit buffers,
* a head flit at the front of an input VC first goes through *route
  computation* (RC), then *virtual-channel allocation* (VA), after which
  the whole packet streams through *switch allocation* (SA) one flit per
  cycle,
* credit-based flow control guarantees that a flit is only forwarded when
  the downstream buffer has space,
* in the default single-stage mode (``router_pipeline="single"``) the
  configured router latency is enforced by making a flit eligible for
  switch allocation only ``router_latency_cycles`` after it entered the
  input buffer, which reproduces the pipeline delay without simulating the
  individual pipeline registers,
* the staged mode (``router_pipeline="staged"``) simulates those pipeline
  registers explicitly instead: RC, VA and SA each occupy their own cycle
  — a head flit arriving in cycle *a* is routed in *a*, may win an output
  VC no earlier than *a + 1* and may win the switch no earlier than
  *a + 2*; body flits wait one buffer-write cycle before SA.  Routing,
  allocation policies, escape patience and credit flow are identical in
  both modes; only the stage timing differs, so the staged model carries
  its own golden fixtures while the single-stage model stays bit-stable.

Deadlock freedom uses an *escape* virtual channel (the highest-numbered
one) that is routed on the up*/down* spanning tree of
:class:`repro.noc.routing.RoutingTables`; a packet whose head is waiting
for a virtual channel may always fall back to the escape channel, and
packets travelling on the escape channel stay on it until ejection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.noc.channel import Channel
from repro.noc.config import SimulationConfig
from repro.noc.flit import Flit
from repro.noc.routing import RoutingTables

#: Input-VC states.
_IDLE = 0          # no packet currently being routed through this VC
_VC_ALLOC = 1      # head flit routed, waiting for an output VC
_ACTIVE = 2        # output VC allocated, flits stream through SA


class _InputVC:
    """State of one virtual channel of one input port."""

    __slots__ = (
        "buffer",
        "state",
        "minimal_ports",
        "escape_port",
        "escape_only",
        "out_port",
        "out_vc",
        "alloc_wait_cycles",
        "va_ready_cycle",
        "sa_ready_cycle",
    )

    def __init__(self) -> None:
        self.buffer: deque[Flit] = deque()
        self.state = _IDLE
        self.minimal_ports: tuple[int, ...] = ()
        self.escape_port: int | None = None
        self.escape_only = False
        self.out_port: int | None = None
        self.out_vc: int | None = None
        self.alloc_wait_cycles = 0
        # Pipeline registers of the staged mode: the earliest cycles the
        # head packet may attempt VA / SA (always 0 in single-stage mode).
        self.va_ready_cycle = 0
        self.sa_ready_cycle = 0


class _OutputVC:
    """State of one virtual channel of one output port."""

    __slots__ = ("owner", "credits")

    def __init__(self, credits: int) -> None:
        self.owner: tuple[int, int] | None = None
        self.credits = credits


@dataclass
class RouterState:
    """Flat snapshot of one router's mutable state.

    All per-VC sequences are parallel lists indexed by ``port * V + vc``
    (port-major, ascending — the exact order the router's own per-cycle
    scans visit the virtual channels in).  The vectorized engine exports
    this snapshot once per run, simulates on the flat representation, and
    imports the final state back so every post-run introspection accessor
    (`buffered_flits`, `in_flight_measured_packets`, flit conservation)
    reports exactly what an object-stepped run would.
    """

    buffers: list[deque[Flit]]
    states: list[int]
    minimal_ports: list[tuple[int, ...]]
    escape_ports: list[int | None]
    escape_only: list[bool]
    out_ports: list[int | None]
    out_vcs: list[int | None]
    alloc_wait_cycles: list[int]
    owners: list[tuple[int, int] | None]
    credits: list[int]
    sa_port_pointer: int
    buffered_flits: int
    forwarded_flits: int
    #: Staged-pipeline registers per input VC.  ``None`` means all-zero —
    #: the only value the single-stage model ever holds, which lets the
    #: array kernel (single-stage only) keep building snapshots without
    #: materialising the fields.
    va_ready_cycles: list[int] | None = None
    sa_ready_cycles: list[int] | None = None


class Router:
    """One chiplet's local router.

    Parameters
    ----------
    router_id:
        Identifier; equals the chiplet id.
    config:
        Simulation configuration (VC count, buffer depth, latencies).
    routing:
        Shared routing tables of the whole network.
    neighbor_routers:
        Ids of the adjacent routers, in the order of their ports
        (ports ``0 .. len(neighbor_routers) - 1``).
    local_endpoints:
        Ids of the endpoints attached to this router, in the order of
        their ports (ports ``len(neighbor_routers) ..``).
    endpoint_to_router:
        Mapping from endpoint id to the id of its router (shared,
        read-only).
    """

    #: Telemetry probe seams (class attributes, so the default instance
    #: carries no extra state): a :class:`~repro.telemetry.FlitTracer`
    #: records link-traverse / VC-grant / SA-grant lifecycle events, a
    #: :class:`~repro.telemetry.MetricsCollector` counts per-cycle flit
    #: flow.  Installed per run by the engines via
    #: :func:`repro.telemetry.install_probes`; ``None`` (the default)
    #: keeps the hot paths observation-free.
    tracer = None
    metrics = None

    def __init__(
        self,
        router_id: int,
        config: SimulationConfig,
        routing: RoutingTables,
        neighbor_routers: list[int],
        local_endpoints: list[int],
        endpoint_to_router: list[int],
    ) -> None:
        self.router_id = router_id
        self._config = config
        self._staged = config.is_staged_pipeline
        self._routing = routing
        self._neighbor_routers = list(neighbor_routers)
        self._local_endpoints = list(local_endpoints)
        self._endpoint_to_router = endpoint_to_router

        self._num_router_ports = len(neighbor_routers)
        self._num_ports = self._num_router_ports + len(local_endpoints)
        self._port_of_neighbor = {
            neighbor: port for port, neighbor in enumerate(neighbor_routers)
        }
        self._port_of_endpoint = {
            endpoint: self._num_router_ports + index
            for index, endpoint in enumerate(local_endpoints)
        }

        vcs = config.num_virtual_channels
        self._input_vcs: list[list[_InputVC]] = [
            [_InputVC() for _ in range(vcs)] for _ in range(self._num_ports)
        ]
        self._output_vcs: list[list[_OutputVC]] = [
            [_OutputVC(config.buffer_depth_flits) for _ in range(vcs)]
            for _ in range(self._num_ports)
        ]

        # Channels are attached later by the Network builder.
        self._out_flit_channels: list[Channel | None] = [None] * self._num_ports
        self._in_credit_channels: list[Channel | None] = [None] * self._num_ports

        self._buffered_flits = 0
        self._sa_port_pointer = 0
        self._vc_pointers = [0] * self._num_ports

        # Statistics hooks (set by the network / simulator).
        self.forwarded_flits = 0

    # -- wiring (used by the Network builder) ----------------------------------

    @property
    def num_ports(self) -> int:
        """Total number of ports (router-to-router plus endpoint ports)."""
        return self._num_ports

    @property
    def num_router_ports(self) -> int:
        """Number of ports connected to neighbouring routers."""
        return self._num_router_ports

    def port_of_neighbor(self, neighbor_router: int) -> int:
        """Port index connected to a neighbouring router."""
        return self._port_of_neighbor[neighbor_router]

    def port_of_endpoint(self, endpoint: int) -> int:
        """Port index connected to a locally attached endpoint."""
        return self._port_of_endpoint[endpoint]

    def attach_output_channel(self, port: int, channel: Channel) -> None:
        """Connect the flit channel leaving through ``port``."""
        self._out_flit_channels[port] = channel

    def attach_credit_channel(self, port: int, channel: Channel) -> None:
        """Connect the credit channel returning upstream credits of input ``port``."""
        self._in_credit_channels[port] = channel

    def is_ejection_port(self, port: int) -> bool:
        """Whether ``port`` leads to a locally attached endpoint."""
        return port >= self._num_router_ports

    def output_channels(self) -> tuple[Channel | None, ...]:
        """The attached output flit channels, indexed by output port."""
        return tuple(self._out_flit_channels)

    def input_credit_channels(self) -> tuple[Channel | None, ...]:
        """The attached upstream credit channels, indexed by input port."""
        return tuple(self._in_credit_channels)

    # -- flat-state interchange (the vectorized engine's seam) -------------------

    def export_state(self) -> RouterState:
        """Snapshot the mutable state as flat ``port * V + vc`` parallel lists.

        The buffers are the router's own deques (not copies): the caller
        takes ownership of them until :meth:`import_state` hands the state
        back, and the router must not be stepped in between.
        """
        buffers: list[deque[Flit]] = []
        states: list[int] = []
        minimal_ports: list[tuple[int, ...]] = []
        escape_ports: list[int | None] = []
        escape_only: list[bool] = []
        out_ports: list[int | None] = []
        out_vcs: list[int | None] = []
        alloc_wait_cycles: list[int] = []
        owners: list[tuple[int, int] | None] = []
        credits: list[int] = []
        staged = self._staged
        va_ready_cycles: list[int] | None = [] if staged else None
        sa_ready_cycles: list[int] | None = [] if staged else None
        for port_vcs, port_outputs in zip(self._input_vcs, self._output_vcs):
            for input_vc in port_vcs:
                buffers.append(input_vc.buffer)
                states.append(input_vc.state)
                minimal_ports.append(input_vc.minimal_ports)
                escape_ports.append(input_vc.escape_port)
                escape_only.append(input_vc.escape_only)
                out_ports.append(input_vc.out_port)
                out_vcs.append(input_vc.out_vc)
                alloc_wait_cycles.append(input_vc.alloc_wait_cycles)
                if staged:
                    va_ready_cycles.append(input_vc.va_ready_cycle)
                    sa_ready_cycles.append(input_vc.sa_ready_cycle)
            for output_vc in port_outputs:
                owners.append(output_vc.owner)
                credits.append(output_vc.credits)
        return RouterState(
            buffers=buffers,
            states=states,
            minimal_ports=minimal_ports,
            escape_ports=escape_ports,
            escape_only=escape_only,
            out_ports=out_ports,
            out_vcs=out_vcs,
            alloc_wait_cycles=alloc_wait_cycles,
            owners=owners,
            credits=credits,
            sa_port_pointer=self._sa_port_pointer,
            buffered_flits=self._buffered_flits,
            forwarded_flits=self.forwarded_flits,
            va_ready_cycles=va_ready_cycles,
            sa_ready_cycles=sa_ready_cycles,
        )

    def import_state(self, state: RouterState) -> None:
        """Restore a snapshot previously produced by :meth:`export_state`."""
        vcs = self._config.num_virtual_channels
        expected = self._num_ports * vcs
        if len(state.buffers) != expected or len(state.credits) != expected:
            raise ValueError(
                f"router {self.router_id}: flat state has "
                f"{len(state.buffers)} input / {len(state.credits)} output VCs, "
                f"expected {expected}"
            )
        va_ready = state.va_ready_cycles
        sa_ready = state.sa_ready_cycles
        index = 0
        for port_vcs, port_outputs in zip(self._input_vcs, self._output_vcs):
            for input_vc, output_vc in zip(port_vcs, port_outputs):
                input_vc.buffer = state.buffers[index]
                input_vc.state = state.states[index]
                input_vc.minimal_ports = state.minimal_ports[index]
                input_vc.escape_port = state.escape_ports[index]
                input_vc.escape_only = state.escape_only[index]
                input_vc.out_port = state.out_ports[index]
                input_vc.out_vc = state.out_vcs[index]
                input_vc.alloc_wait_cycles = state.alloc_wait_cycles[index]
                input_vc.va_ready_cycle = 0 if va_ready is None else va_ready[index]
                input_vc.sa_ready_cycle = 0 if sa_ready is None else sa_ready[index]
                output_vc.owner = state.owners[index]
                output_vc.credits = state.credits[index]
                index += 1
        self._sa_port_pointer = state.sa_port_pointer
        self._buffered_flits = state.buffered_flits
        self.forwarded_flits = state.forwarded_flits

    def reset(self) -> None:
        """Return the router to its just-built state.

        Buffers are cleared **in place** (the batched vectorized engine
        aliases the deques through :meth:`export_state` across sweep
        points), so a reset router is indistinguishable from a newly
        constructed one while every externally held buffer reference stays
        valid.
        """
        depth = self._config.buffer_depth_flits
        for port_vcs, port_outputs in zip(self._input_vcs, self._output_vcs):
            for input_vc in port_vcs:
                input_vc.buffer.clear()
                input_vc.state = _IDLE
                input_vc.minimal_ports = ()
                input_vc.escape_port = None
                input_vc.escape_only = False
                input_vc.out_port = None
                input_vc.out_vc = None
                input_vc.alloc_wait_cycles = 0
                input_vc.va_ready_cycle = 0
                input_vc.sa_ready_cycle = 0
            for output_vc in port_outputs:
                output_vc.owner = None
                output_vc.credits = depth
        self._buffered_flits = 0
        self._sa_port_pointer = 0
        self._vc_pointers = [0] * self._num_ports
        self.forwarded_flits = 0

    # -- externally driven events ----------------------------------------------

    def accept_flit(self, port: int, flit: Flit, now: int) -> None:
        """Store an arriving flit in the input buffer selected by its VC field."""
        input_vc = self._input_vcs[port][flit.vc]
        if len(input_vc.buffer) >= self._config.buffer_depth_flits:
            raise RuntimeError(
                f"router {self.router_id}: input buffer overflow on port {port} "
                f"vc {flit.vc}; credit flow control is broken"
            )
        flit.arrival_cycle = now
        input_vc.buffer.append(flit)
        self._buffered_flits += 1
        metrics = self.metrics
        if metrics is not None:
            metrics._link += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.link_traverse(
                now, flit.packet.packet_id, flit.flit_index,
                self.router_id, port, flit.vc,
            )

    def accept_credit(self, port: int, vc: int) -> None:
        """Register a credit returned by the downstream node of output ``port``."""
        self._output_vcs[port][vc].credits += 1

    @property
    def buffered_flits(self) -> int:
        """Number of flits currently stored in this router's input buffers."""
        return self._buffered_flits

    def occupancy(self) -> int:
        """Alias of :attr:`buffered_flits` (kept for statistics reporting)."""
        return self._buffered_flits

    def vc_alloc_stalls(self) -> int:
        """Input VCs currently waiting in the VC-allocation state.

        A VC in ``_VC_ALLOC`` always buffers at least its head flit, so
        an empty router never stalls; the per-cycle metrics sampling
        relies on that shortcut.
        """
        if self._buffered_flits == 0:
            return 0
        stalls = 0
        for port_vcs in self._input_vcs:
            for input_vc in port_vcs:
                if input_vc.state == _VC_ALLOC:
                    stalls += 1
        return stalls

    def in_flight_measured_packets(self) -> int:
        """Measured packets whose head flit sits in one of the input buffers."""
        if self._buffered_flits == 0:
            return 0
        measured = 0
        for port_vcs in self._input_vcs:
            for input_vc in port_vcs:
                for flit in input_vc.buffer:
                    if flit.is_head and flit.packet.measured:
                        measured += 1
        return measured

    # -- per-cycle operation -----------------------------------------------------

    def step(self, now: int) -> None:
        """Perform route computation, VC allocation and switch allocation."""
        if self._buffered_flits == 0:
            return
        self._route_and_allocate(now)
        self._switch_allocation(now)

    # .. route computation + VC allocation ..................................

    def _route_and_allocate(self, now: int) -> None:
        config = self._config
        escape_vc = config.escape_vc
        staged = self._staged
        for port in range(self._num_ports):
            for vc_index, input_vc in enumerate(self._input_vcs[port]):
                if not input_vc.buffer:
                    continue
                head = input_vc.buffer[0]
                if input_vc.state == _IDLE:
                    if not head.is_head:
                        raise RuntimeError(
                            f"router {self.router_id}: non-head flit at the front of an "
                            f"idle VC (port {port}, vc {vc_index}); packet framing is broken"
                        )
                    self._compute_route(port, vc_index, input_vc, head)
                    if staged:
                        # RC occupies this whole cycle; VA is the next stage.
                        input_vc.va_ready_cycle = now + 1
                if input_vc.state == _VC_ALLOC:
                    if staged and now < input_vc.va_ready_cycle:
                        continue
                    self._allocate_output_vc(port, vc_index, input_vc, escape_vc, now)

    def _compute_route(
        self, port: int, vc_index: int, input_vc: _InputVC, head: Flit
    ) -> None:
        destination_router = self._endpoint_to_router[head.destination]
        if destination_router == self.router_id:
            ejection_port = self._port_of_endpoint[head.destination]
            input_vc.minimal_ports = (ejection_port,)
            input_vc.escape_port = ejection_port
            input_vc.escape_only = False
        else:
            minimal_routers = self._routing.minimal_next_hops(
                self.router_id, destination_router
            )
            input_vc.minimal_ports = tuple(
                self._port_of_neighbor[neighbor] for neighbor in minimal_routers
            )
            escape_router = self._routing.escape_next_hop(
                self.router_id, destination_router
            )
            input_vc.escape_port = self._port_of_neighbor[escape_router]
            # Duato's protocol allows packets to move freely between the
            # adaptive and the escape channel class at every hop, as long as
            # the escape routing itself is deadlock-free (the up*/down* tree
            # is).  Only a single-VC configuration forces everything onto the
            # escape routing.
            input_vc.escape_only = self._config.num_virtual_channels == 1
        input_vc.state = _VC_ALLOC
        input_vc.alloc_wait_cycles = 0

    def _allocate_output_vc(
        self, port: int, vc_index: int, input_vc: _InputVC, escape_vc: int, now: int
    ) -> None:
        # Ejection ports accept any free VC (the endpoint is an infinite sink).
        target_port = input_vc.minimal_ports[0] if input_vc.minimal_ports else None
        if target_port is not None and self.is_ejection_port(target_port):
            for out_vc, output in enumerate(self._output_vcs[target_port]):
                if output.owner is None:
                    self._grant_output(
                        input_vc, port, vc_index, target_port, out_vc, now
                    )
                    return
            return

        if not input_vc.escape_only:
            granted = self._allocate_adaptive_vc(input_vc, port, vc_index, now)
            if granted:
                return
        # Fall back to the escape VC on the up*/down* port, either because the
        # packet is forced onto it (single-VC configuration) or because it has
        # waited long enough for an adaptive channel.
        input_vc.alloc_wait_cycles += 1
        patience_exceeded = (
            input_vc.alloc_wait_cycles > self._config.escape_patience_cycles
        )
        if input_vc.escape_only or patience_exceeded:
            escape_port = input_vc.escape_port
            if escape_port is not None:
                escape_output = self._output_vcs[escape_port][escape_vc]
                if escape_output.owner is None:
                    self._grant_output(
                        input_vc, port, vc_index, escape_port, escape_vc, now
                    )

    def _allocate_adaptive_vc(
        self, input_vc: _InputVC, port: int, vc_index: int, now: int
    ) -> bool:
        """Congestion-aware adaptive VC allocation.

        Among all minimal output ports with at least one free adaptive VC,
        the port with the largest number of downstream credits is chosen
        (a standard local congestion estimate); the free VC with the most
        credits on that port receives the packet.  Returns ``True`` when a
        VC was granted.
        """
        adaptive = self._config.adaptive_vcs
        if not adaptive:
            return False
        best: tuple[int, int, int] | None = None  # (score, port, vc)
        for candidate_port in input_vc.minimal_ports:
            outputs = self._output_vcs[candidate_port]
            port_credits = sum(outputs[vc].credits for vc in adaptive)
            free_vc = -1
            free_vc_credits = -1
            for vc in adaptive:
                output = outputs[vc]
                if output.owner is None and output.credits > free_vc_credits:
                    free_vc = vc
                    free_vc_credits = output.credits
            if free_vc < 0:
                continue
            score = port_credits
            if best is None or score > best[0]:
                best = (score, candidate_port, free_vc)
        if best is None:
            return False
        _, out_port, out_vc = best
        self._grant_output(input_vc, port, vc_index, out_port, out_vc, now)
        return True

    def _grant_output(
        self,
        input_vc: _InputVC,
        port: int,
        vc_index: int,
        out_port: int,
        out_vc: int,
        now: int,
    ) -> None:
        self._output_vcs[out_port][out_vc].owner = (port, vc_index)
        input_vc.out_port = out_port
        input_vc.out_vc = out_vc
        input_vc.state = _ACTIVE
        if self._staged:
            # VA occupies this whole cycle; SA is the next stage.
            input_vc.sa_ready_cycle = now + 1
        tracer = self.tracer
        if tracer is not None:
            head = input_vc.buffer[0]
            tracer.vc_grant(
                now, head.packet.packet_id, head.flit_index,
                self.router_id, out_port, out_vc,
            )

    # .. switch allocation ....................................................

    def _switch_allocation(self, now: int) -> None:
        config = self._config
        # Each input port nominates at most one eligible flit.
        nominations: dict[int, tuple[int, int]] = {}
        for port in range(self._num_ports):
            nominated = self._nominate(port, now)
            if nominated is not None:
                nominations[port] = nominated

        if not nominations:
            return

        # Each output port accepts at most one nomination (round-robin over
        # input ports for fairness).
        granted_by_output: dict[int, tuple[int, int]] = {}
        num_ports = self._num_ports
        start = self._sa_port_pointer
        for offset in range(num_ports):
            port = (start + offset) % num_ports
            if port not in nominations:
                continue
            vc_index = nominations[port][0]
            input_vc = self._input_vcs[port][vc_index]
            out_port = input_vc.out_port
            if out_port is not None and out_port not in granted_by_output:
                granted_by_output[out_port] = (port, vc_index)
        self._sa_port_pointer = (self._sa_port_pointer + 1) % num_ports

        for out_port, (port, vc_index) in granted_by_output.items():
            self._forward_flit(port, vc_index, out_port, now)

    def _nominate(self, port: int, now: int) -> tuple[int, int] | None:
        """Pick one eligible (vc, out_port) pair of an input port, round-robin."""
        config = self._config
        vcs = config.num_virtual_channels
        pointer = self._vc_pointers[port]
        for offset in range(vcs):
            vc_index = (pointer + offset) % vcs
            input_vc = self._input_vcs[port][vc_index]
            if input_vc.state != _ACTIVE or not input_vc.buffer:
                continue
            head = input_vc.buffer[0]
            if self._staged:
                # Explicit pipeline: the packet's SA register must have
                # filled (``sa_ready_cycle``, set by the VA grant) and
                # every flit spends one buffer-write cycle before SA.
                if now < input_vc.sa_ready_cycle or now < head.arrival_cycle + 1:
                    continue
            elif now < head.arrival_cycle + config.router_latency_cycles:
                continue
            out_port = input_vc.out_port
            out_vc = input_vc.out_vc
            assert out_port is not None and out_vc is not None
            if not self.is_ejection_port(out_port):
                if self._output_vcs[out_port][out_vc].credits <= 0:
                    continue
            return (vc_index, out_port)
        return None

    def _forward_flit(self, port: int, vc_index: int, out_port: int, now: int) -> None:
        input_vc = self._input_vcs[port][vc_index]
        flit = input_vc.buffer.popleft()
        self._buffered_flits -= 1
        out_vc = input_vc.out_vc
        assert out_vc is not None

        ejection = self.is_ejection_port(out_port)
        if not ejection:
            self._output_vcs[out_port][out_vc].credits -= 1
            flit.hops += 1
        flit.vc = out_vc

        channel = self._out_flit_channels[out_port]
        if channel is None:
            raise RuntimeError(
                f"router {self.router_id}: no channel attached to output port {out_port}"
            )
        channel.send(flit, now)
        self.forwarded_flits += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.sa_grant(
                now, flit.packet.packet_id, flit.flit_index,
                self.router_id, port, vc_index,
            )

        # Return a credit to whoever feeds this input port (router or endpoint).
        credit_channel = self._in_credit_channels[port]
        if credit_channel is not None:
            credit_channel.send(vc_index, now)

        if flit.is_tail:
            # The packet is done with this input VC and its output VC.
            self._output_vcs[out_port][out_vc].owner = None
            input_vc.state = _IDLE
            input_vc.out_port = None
            input_vc.out_vc = None
            input_vc.minimal_ports = ()
            input_vc.escape_port = None
            input_vc.escape_only = False
