"""Fault injection: failed links and routers applied to a topology graph.

Real multi-chiplet packages ship with manufacturing defects (test escapes,
failed micro-bump bonds) and accumulate field failures over their
lifetime.  This module makes such faults first-class simulation inputs:

* :class:`FaultSet` describes which inter-chiplet links and which routers
  (chiplets) have failed, in a canonical, hashable, JSON-able form that
  plugs into the sweep cache keys and the SHA-256 seed derivation of
  :mod:`repro.core.parallel`.
* :meth:`FaultSet.apply` turns a healthy topology into a **degraded**
  :class:`~repro.graphs.model.ChipGraph`: failed routers disappear
  (together with their endpoints), failed links are cut, and the
  survivors are relabeled to the contiguous ``0 .. m-1`` ids the
  simulator requires.  Because the degraded graph is built *before*
  :class:`~repro.noc.routing.RoutingTables` construction, adaptive
  minimal routing and the up*/down* escape network rebuild automatically
  and every cycle-loop engine (legacy, active-set, vectorized) simulates
  the faulted topology bit-identically — no engine knows faults exist.
* Fault sets that would leave an unusable network (a disconnected
  topology, an isolated router whose endpoints could neither send nor
  receive, fewer than two surviving routers) are rejected with a
  :class:`FaultedTopologyError` carrying a precise message, so sweeps
  fail fast instead of producing deadlocked simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.metrics import bfs_distances
from repro.graphs.model import ChipGraph


class FaultedTopologyError(ValueError):
    """A fault set cannot be applied to (or simulated on) a topology.

    Subclasses :class:`ValueError` so existing CLI / sweep error handling
    reports it as a normal validation failure.
    """


def _check_router_id(value: object, *, role: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{role} must be an integer router id, got {value!r}")
    if value < 0:
        raise ValueError(f"{role} must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class FaultSet:
    """A set of failed inter-chiplet links and failed routers.

    Both fields are normalised at construction time — links are stored as
    sorted ``(low, high)`` pairs, duplicates collapse, and both tuples are
    sorted — so two fault sets describing the same physical failures
    always compare (and hash, and serialise) identically.

    Attributes
    ----------
    failed_links:
        Undirected router-to-router links that have failed; each link is
        cut in both directions.  Router-to-endpoint channels never fail
        individually — a chiplet whose local links are gone is a failed
        router.
    failed_routers:
        Routers (chiplets) that have failed entirely: all their links and
        all their endpoints are removed from the degraded topology.
    """

    failed_links: tuple[tuple[int, int], ...] = ()
    failed_routers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        links: set[tuple[int, int]] = set()
        for link in self.failed_links:
            try:
                first, second = link
            except (TypeError, ValueError):
                raise ValueError(
                    f"each failed link must be a (router, router) pair, got {link!r}"
                ) from None
            first = _check_router_id(first, role="failed link endpoint")
            second = _check_router_id(second, role="failed link endpoint")
            if first == second:
                raise ValueError(
                    f"a link connects two distinct routers; got the self-link "
                    f"({first}, {second})"
                )
            links.add((min(first, second), max(first, second)))
        routers = {
            _check_router_id(router, role="failed router") for router in self.failed_routers
        }
        object.__setattr__(self, "failed_links", tuple(sorted(links)))
        object.__setattr__(self, "failed_routers", tuple(sorted(routers)))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def parse(cls, links: str = "", routers: str = "") -> "FaultSet":
        """Parse the CLI spellings: links ``"0-1,4-5"``, routers ``"3,8"``."""
        failed_links: list[tuple[int, int]] = []
        for part in links.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split("-")
            if len(pieces) != 2:
                raise ValueError(
                    f"failed link {part!r} must be written as <router>-<router>, "
                    'e.g. "0-1"'
                )
            failed_links.append((int(pieces[0]), int(pieces[1])))
        failed_routers = [int(part) for part in routers.split(",") if part.strip()]
        return cls(failed_links=tuple(failed_links), failed_routers=tuple(failed_routers))

    # -- basic queries --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the fault set describes a healthy network."""
        return not self.failed_links and not self.failed_routers

    @property
    def num_faults(self) -> int:
        """Total number of failed components (links plus routers)."""
        return len(self.failed_links) + len(self.failed_routers)

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``"2L+1R"`` (``"healthy"`` if empty)."""
        if self.is_empty:
            return "healthy"
        return f"{len(self.failed_links)}L+{len(self.failed_routers)}R"

    def key_dict(self) -> dict[str, list]:
        """Canonical JSON-able identity (for cache keys and seed derivation)."""
        return {
            "failed_links": [list(link) for link in self.failed_links],
            "failed_routers": list(self.failed_routers),
        }

    # -- application ----------------------------------------------------------

    def validate_against(self, graph: ChipGraph) -> None:
        """Raise :class:`FaultedTopologyError` for faults naming absent components."""
        for router in self.failed_routers:
            if not graph.has_node(router):
                raise FaultedTopologyError(
                    f"failed router {router} is not in the topology "
                    f"(router ids are 0 .. {graph.num_nodes - 1})"
                )
        for first, second in self.failed_links:
            if not graph.has_edge(first, second):
                raise FaultedTopologyError(
                    f"failed link {first}-{second} is not a link of the topology"
                )

    def apply(self, graph: ChipGraph) -> "DegradedTopology":
        """Build the degraded topology the surviving network operates on.

        Raises
        ------
        FaultedTopologyError
            If a fault names a component absent from ``graph``, if fewer
            than two routers survive, if a surviving router loses every
            link (its endpoints would be isolated), or if the surviving
            topology is disconnected.
        """
        self.validate_against(graph)
        dead_routers = set(self.failed_routers)
        dead_links = set(self.failed_links)
        survivors = [node for node in sorted(graph.nodes()) if node not in dead_routers]
        if len(survivors) < 2:
            raise FaultedTopologyError(
                f"fault set leaves {len(survivors)} surviving router(s); a network "
                "needs at least two routers to carry traffic"
            )
        adjacency: dict[int, list[int]] = {}
        for node in survivors:
            adjacency[node] = [
                neighbour
                for neighbour in graph.neighbors(node)
                if neighbour not in dead_routers
                and (min(node, neighbour), max(node, neighbour)) not in dead_links
            ]
        for node in survivors:
            if not adjacency[node]:
                raise FaultedTopologyError(
                    f"fault set isolates router {node}: every link of the router "
                    "failed, so its endpoints can neither send nor receive"
                )
        degraded = ChipGraph(nodes=survivors)
        for node, neighbours in adjacency.items():
            for neighbour in neighbours:
                degraded.add_edge(node, neighbour)
        reachable = bfs_distances(degraded, survivors[0])
        if len(reachable) != len(survivors):
            unreachable = sorted(set(survivors) - set(reachable))
            raise FaultedTopologyError(
                f"fault set disconnects the topology: routers {unreachable} are "
                f"unreachable from router {survivors[0]}"
            )
        relabel = {node: index for index, node in enumerate(survivors)}
        return DegradedTopology(
            graph=degraded.relabeled(relabel),
            surviving_routers=tuple(survivors),
            fault_set=self,
        )


@dataclass(frozen=True)
class DegradedTopology:
    """A topology with a fault set applied, relabeled for the simulator.

    Attributes
    ----------
    graph:
        The surviving topology with contiguous router ids ``0 .. m-1``
        (ready for :class:`~repro.noc.routing.RoutingTables` and
        :class:`~repro.noc.network.Network`).
    surviving_routers:
        Original router ids of the survivors, ascending; index ``i`` is
        the original id of degraded router ``i``.
    fault_set:
        The fault set that produced this topology.
    """

    graph: ChipGraph
    surviving_routers: tuple[int, ...]
    fault_set: FaultSet = field(default_factory=FaultSet)

    @property
    def num_routers(self) -> int:
        """Number of surviving routers."""
        return len(self.surviving_routers)

    def original_id(self, degraded_id: int) -> int:
        """Original router id of a degraded (relabeled) router id."""
        return self.surviving_routers[degraded_id]

    def degraded_id(self, original: int) -> int:
        """Degraded id of an original router; raises for failed routers."""
        try:
            return self.surviving_routers.index(original)
        except ValueError:
            raise KeyError(
                f"router {original} did not survive the fault set"
            ) from None

    def original_edge(self, first: int, second: int) -> tuple[int, int]:
        """Map a degraded link back to its original (sorted) router pair."""
        a = self.surviving_routers[first]
        b = self.surviving_routers[second]
        return (min(a, b), max(a, b))


def apply_faults(graph: ChipGraph, faults: FaultSet | None) -> DegradedTopology:
    """Apply ``faults`` to ``graph`` (``None`` / empty behaves as a no-op).

    Always returns a :class:`DegradedTopology`; with no faults the graph
    is passed through unchanged apart from the canonical relabeling (the
    identity for the contiguous ids the arrangement generators emit).
    """
    if faults is None:
        faults = FaultSet()
    return faults.apply(graph)
