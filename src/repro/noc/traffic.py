"""Synthetic traffic patterns and injection processes.

The paper's evaluation uses uniform random traffic (BookSim2's default).
Additional classic patterns are provided for sensitivity studies: random
permutation, hotspot, bit-complement, tornado and nearest-neighbour.  All
patterns are defined on endpoint identifiers so they work on arbitrary
topologies (the arrangements are general graphs, not tori), matching the
way BookSim2's ``anynet`` mode treats its node ids.
"""

from __future__ import annotations

import abc
import random

from repro.utils.validation import check_fraction, check_non_negative, check_positive_int


class TrafficPattern(abc.ABC):
    """Maps a source endpoint to a destination endpoint for each new packet."""

    def __init__(self, num_endpoints: int) -> None:
        check_positive_int("num_endpoints", num_endpoints, minimum=2)
        self._num_endpoints = num_endpoints

    @property
    def num_endpoints(self) -> int:
        """Number of endpoints in the network."""
        return self._num_endpoints

    @abc.abstractmethod
    def destination(self, source: int, rng: random.Random) -> int:
        """Destination endpoint for a packet created at ``source``."""

    def injection_rate_scale(self, source: int) -> float:
        """Per-source multiplier applied to the configured injection rate.

        Synthetic patterns drive every endpoint at the same offered load
        (scale ``1.0``, the default).  Trace-driven patterns
        (:class:`repro.workloads.trace.TraceTraffic`) override this so a
        source's offered load is proportional to its share of the workload
        traffic; a scale of ``0.0`` silences the endpoint entirely (it
        never draws from its RNG, which both cycle-loop engines treat
        identically).
        """
        return 1.0

    def reset(self) -> None:
        """Rewind any per-run mutable state (no-op for stateless patterns).

        The network builder calls this once at construction so that a
        pattern instance reused across simulator instances always starts
        from the same state — without it, stateful patterns (trace replay
        cursors) would leak progress from one run into the next and break
        the bit-identical determinism guarantee.
        """

    def _check_source(self, source: int) -> None:
        if not 0 <= source < self._num_endpoints:
            raise ValueError(
                f"source endpoint {source} out of range [0, {self._num_endpoints})"
            )


class UniformRandomTraffic(TrafficPattern):
    """Every other endpoint is an equally likely destination."""

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        destination = rng.randrange(self._num_endpoints - 1)
        if destination >= source:
            destination += 1
        return destination


class PermutationTraffic(TrafficPattern):
    """A fixed random permutation: each source always targets the same destination.

    The permutation is derangement-like: no endpoint is mapped to itself.
    """

    def __init__(self, num_endpoints: int, *, seed: int = 0) -> None:
        super().__init__(num_endpoints)
        rng = random.Random(seed)
        targets = list(range(num_endpoints))
        # Rejection-sample until the shuffle has no fixed point; for the
        # sizes of interest this converges after a couple of attempts.
        for _ in range(1000):
            rng.shuffle(targets)
            if all(index != value for index, value in enumerate(targets)):
                break
        else:
            # Fall back to a cyclic shift, which is always fixed-point free.
            targets = [(index + 1) % num_endpoints for index in range(num_endpoints)]
        self._targets = targets

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        return self._targets[source]


class HotspotTraffic(TrafficPattern):
    """A fraction of the traffic targets a small set of hotspot endpoints.

    With probability ``hotspot_fraction`` the destination is drawn from the
    hotspot set, otherwise it is uniform random over all other endpoints.
    """

    def __init__(
        self,
        num_endpoints: int,
        hotspots: list[int] | None = None,
        *,
        hotspot_fraction: float = 0.2,
    ) -> None:
        super().__init__(num_endpoints)
        check_fraction("hotspot_fraction", hotspot_fraction)
        if hotspots is None:
            hotspots = [0]
        for endpoint in hotspots:
            if not 0 <= endpoint < num_endpoints:
                raise ValueError(f"hotspot endpoint {endpoint} out of range")
        if not hotspots:
            raise ValueError("at least one hotspot endpoint is required")
        self._hotspots = list(hotspots)
        self._hotspot_fraction = hotspot_fraction
        self._uniform = UniformRandomTraffic(num_endpoints)

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        if rng.random() < self._hotspot_fraction:
            candidates = [h for h in self._hotspots if h != source]
            if candidates:
                return rng.choice(candidates)
        return self._uniform.destination(source, rng)


class BitComplementTraffic(TrafficPattern):
    """Endpoint ``i`` sends to endpoint ``num_endpoints - 1 - i``."""

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        destination = self._num_endpoints - 1 - source
        if destination == source:
            # Odd endpoint counts have a central fixed point; send it one over.
            destination = (source + 1) % self._num_endpoints
        return destination


class TornadoTraffic(TrafficPattern):
    """Endpoint ``i`` sends halfway around the endpoint id space."""

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        offset = max(1, self._num_endpoints // 2)
        return (source + offset) % self._num_endpoints


class NeighborTraffic(TrafficPattern):
    """Endpoint ``i`` sends to endpoint ``i + 1`` (wrapping around)."""

    def destination(self, source: int, rng: random.Random) -> int:
        self._check_source(source)
        return (source + 1) % self._num_endpoints


_PATTERN_FACTORIES = {
    "uniform": UniformRandomTraffic,
    "permutation": PermutationTraffic,
    "hotspot": HotspotTraffic,
    "bitcomplement": BitComplementTraffic,
    "tornado": TornadoTraffic,
    "neighbor": NeighborTraffic,
}


def available_traffic_patterns() -> tuple[str, ...]:
    """Names of every registered traffic pattern, sorted alphabetically."""
    return tuple(sorted(_PATTERN_FACTORIES))


def make_traffic_pattern(name: str, num_endpoints: int, **kwargs) -> TrafficPattern:
    """Create a traffic pattern by name (``"uniform"``, ``"hotspot"``, ...)."""
    key = name.lower()
    if key not in _PATTERN_FACTORIES:
        valid = ", ".join(sorted(_PATTERN_FACTORIES))
        raise ValueError(f"unknown traffic pattern {name!r}; expected one of: {valid}")
    return _PATTERN_FACTORIES[key](num_endpoints, **kwargs)


class BernoulliInjection:
    """Bernoulli injection process.

    Every cycle, each endpoint starts a new packet with probability
    ``rate / packet_size`` so that the *flit* injection rate equals
    ``rate`` flits per cycle per endpoint — the convention BookSim2 uses
    when reporting offered load as a fraction of capacity.
    """

    def __init__(self, rate: float, packet_size_flits: int = 1) -> None:
        check_non_negative("rate", rate)
        check_positive_int("packet_size_flits", packet_size_flits)
        if rate > 1.0:
            raise ValueError(
                f"injection rate is a fraction of endpoint capacity and must be <= 1, got {rate}"
            )
        self._rate = rate
        self._packet_size_flits = packet_size_flits
        self._packet_probability = rate / packet_size_flits

    @property
    def flit_rate(self) -> float:
        """Offered load in flits per cycle per endpoint."""
        return self._rate

    @property
    def packet_probability(self) -> float:
        """Per-cycle probability of starting a new packet (``rate / size``).

        This is the exact threshold :meth:`should_inject` compares the RNG
        draw against; the vectorized engine reads it once per endpoint so
        its inlined generation loop reproduces the same draws.
        """
        return self._packet_probability

    def scaled(self, factor: float) -> "BernoulliInjection":
        """A copy of this process with the flit rate multiplied by ``factor``.

        Used by the network builder to honour per-source rate scales
        advertised by :meth:`TrafficPattern.injection_rate_scale`; the
        factor must lie in ``[0, 1]`` so the scaled rate stays a valid
        fraction of endpoint capacity.
        """
        check_fraction("factor", factor)
        if factor == 1.0:
            return self
        return BernoulliInjection(self._rate * factor, self._packet_size_flits)

    def should_inject(self, rng: random.Random) -> bool:
        """Decide whether a new packet is created this cycle."""
        if self._packet_probability <= 0.0:
            return False
        return rng.random() < self._packet_probability
