"""Cycle-accurate inter-chiplet network simulator (BookSim2 substitute).

The paper evaluates arrangements with BookSim2 [7] in ``anynet`` mode: the
arrangement graph is the topology, every chiplet holds one local router and
two traffic endpoints, inter-chiplet links have a latency of 27 cycles
(outgoing PHY + D2D wire + incoming PHY) and routers have a latency of
3 cycles with 8 virtual channels of 8 flits each.

This package implements a flit-level, credit-based, virtual-channel
simulator with the same modelled structure:

* :mod:`repro.noc.config` — simulation parameters,
* :mod:`repro.noc.flit` — packets and flits,
* :mod:`repro.noc.traffic` — synthetic traffic patterns and injection
  processes,
* :mod:`repro.noc.routing` — minimal table-based routing with an
  up*/down* escape virtual channel for deadlock freedom,
* :mod:`repro.noc.faults` — fault injection: failed links / routers
  applied as a degraded topology before routing-table construction,
* :mod:`repro.noc.channel` — latency-modelling flit and credit channels,
* :mod:`repro.noc.router` — input-queued virtual-channel routers,
* :mod:`repro.noc.endpoint` — traffic sources and sinks,
* :mod:`repro.noc.network` — assembling a network from an arrangement
  graph,
* :mod:`repro.noc.engine` — the cycle-loop engines (the active-set fast
  path and the legacy dense scan),
* :mod:`repro.noc.simulator` — the simulation driver with warm-up,
  measurement and drain phases,
* :mod:`repro.noc.sweep` — injection-rate sweeps, zero-load latency and
  saturation-throughput extraction.
"""

from repro.noc.config import SimulationConfig
from repro.noc.engine import ActiveSetEngine, EngineStats, PhaseSnapshots, run_legacy_loop
from repro.noc.faults import (
    DegradedTopology,
    FaultedTopologyError,
    FaultSet,
    apply_faults,
)
from repro.noc.flit import Flit, Packet
from repro.noc.network import Network
from repro.noc.routing import RoutingTables
from repro.noc.simulator import BatchPoint, NocSimulator, SimulationResult
from repro.noc.vec_engine import BatchEngine, VectorizedEngine
from repro.noc.stats import LatencyStatistics, ThroughputStatistics
from repro.noc.sweep import (
    InjectionSweepResult,
    measure_saturation_throughput,
    measure_zero_load_latency,
    run_injection_sweep,
)
from repro.noc.traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    PermutationTraffic,
    TornadoTraffic,
    TrafficPattern,
    UniformRandomTraffic,
    available_traffic_patterns,
    make_traffic_pattern,
)

__all__ = [
    "ActiveSetEngine",
    "BatchEngine",
    "BatchPoint",
    "BitComplementTraffic",
    "DegradedTopology",
    "EngineStats",
    "FaultSet",
    "FaultedTopologyError",
    "Flit",
    "HotspotTraffic",
    "InjectionSweepResult",
    "LatencyStatistics",
    "NeighborTraffic",
    "Network",
    "NocSimulator",
    "Packet",
    "PermutationTraffic",
    "PhaseSnapshots",
    "RoutingTables",
    "SimulationConfig",
    "SimulationResult",
    "ThroughputStatistics",
    "TornadoTraffic",
    "TrafficPattern",
    "UniformRandomTraffic",
    "VectorizedEngine",
    "apply_faults",
    "available_traffic_patterns",
    "make_traffic_pattern",
    "measure_saturation_throughput",
    "measure_zero_load_latency",
    "run_injection_sweep",
    "run_legacy_loop",
]
