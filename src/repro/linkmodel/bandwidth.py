"""Link-bandwidth estimation (Section V of the paper).

The model is intentionally simple:

* the number of wires a link can use is the number of bumps that fit into
  its bump sector, ``N_w = A_B / P_B²`` (regular, non-staggered layout),
* ``N_ndw`` of these carry no payload (clock, valid, track, side-band), so
  the number of data wires is ``N_dw = N_w − N_ndw``,
* the link bandwidth is ``B = N_dw · f``.

The per-arrangement wrapper :class:`D2DLinkModel` combines this with the
chiplet-shape solver: given an arrangement family and chiplet count it
computes ``A_C = A_all / N``, solves the shape, derives ``A_B`` and returns
the per-link bandwidth as well as the full global bandwidth used to convert
relative saturation throughput into Tb/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrangements.base import Arrangement, ArrangementKind
from repro.linkmodel.parameters import EvaluationParameters, LinkParameters
from repro.linkmodel.shape import (
    ChipletShape,
    solve_chiplet_shape,
    solve_hand_optimized_shape,
)
from repro.utils.validation import check_non_negative, check_positive, check_positive_int


def wire_count(link_area_mm2: float, bump_pitch_mm: float) -> int:
    """Number of wires of one link: ``N_w = floor(A_B / P_B²)``."""
    check_non_negative("link_area_mm2", link_area_mm2)
    check_positive("bump_pitch_mm", bump_pitch_mm)
    # Epsilon guards exact ratios against binary floating-point truncation.
    return int(math.floor(link_area_mm2 / (bump_pitch_mm * bump_pitch_mm) + 1e-9))


def data_wires(num_wires: int, non_data_wires: int) -> int:
    """Number of data wires ``N_dw = max(N_w − N_ndw, 0)``."""
    check_positive_int("num_wires", num_wires, minimum=0)
    check_positive_int("non_data_wires", non_data_wires, minimum=0)
    return max(num_wires - non_data_wires, 0)


def link_bandwidth_bps(num_data_wires: int, frequency_hz: float) -> float:
    """Link bandwidth ``B = N_dw · f`` in bits per second."""
    check_positive_int("num_data_wires", num_data_wires, minimum=0)
    check_positive("frequency_hz", frequency_hz)
    return num_data_wires * frequency_hz


@dataclass(frozen=True)
class LinkBandwidthEstimate:
    """The complete output of the link model for one design point."""

    shape: ChipletShape
    num_wires: int
    num_data_wires: int
    bandwidth_bps: float
    parameters: LinkParameters

    @property
    def bandwidth_gbps(self) -> float:
        """Per-link bandwidth in Gb/s."""
        return self.bandwidth_bps / 1e9

    @property
    def bandwidth_tbps(self) -> float:
        """Per-link bandwidth in Tb/s."""
        return self.bandwidth_bps / 1e12


class D2DLinkModel:
    """Estimate D2D link bandwidth for a given arrangement family and size.

    Parameters
    ----------
    parameters:
        The evaluation parameter set (total area, power fraction, link
        technology constants, hand-optimisation threshold).  Defaults to
        the paper's Section VI values.
    """

    def __init__(self, parameters: EvaluationParameters | None = None) -> None:
        self._parameters = parameters if parameters is not None else EvaluationParameters()

    @property
    def parameters(self) -> EvaluationParameters:
        """The evaluation parameters the model was built with."""
        return self._parameters

    # -- shape ---------------------------------------------------------------

    def chiplet_shape(
        self,
        kind: ArrangementKind | str,
        num_chiplets: int,
        *,
        max_links_per_chiplet: int | None = None,
    ) -> ChipletShape:
        """Solve the chiplet shape for an arrangement family and chiplet count.

        Designs with ``num_chiplets`` at or below the hand-optimisation
        threshold split the non-power area among ``max_links_per_chiplet``
        sectors (the actual maximum node degree of the arrangement) instead
        of the fixed 4-/6-sector layouts, mirroring the paper's
        hand-optimised small designs.
        """
        kind = ArrangementKind.from_name(kind)
        check_positive_int("num_chiplets", num_chiplets)
        chiplet_area = self._parameters.chiplet_area_mm2(num_chiplets)
        power_fraction = self._parameters.power_bump_fraction
        if (
            num_chiplets <= self._parameters.hand_optimized_max_chiplets
            and max_links_per_chiplet is not None
            and max_links_per_chiplet > 0
        ):
            return solve_hand_optimized_shape(
                chiplet_area, power_fraction, max_links_per_chiplet
            )
        return solve_chiplet_shape(kind, chiplet_area, power_fraction)

    # -- bandwidth -----------------------------------------------------------

    def estimate_from_shape(self, shape: ChipletShape) -> LinkBandwidthEstimate:
        """Apply the Table I / Section V formulas to an already-solved shape."""
        link = self._parameters.link
        wires = wire_count(shape.link_sector_area_mm2, link.bump_pitch_mm)
        payload_wires = data_wires(wires, link.non_data_wires)
        bandwidth = link_bandwidth_bps(payload_wires, link.frequency_hz)
        return LinkBandwidthEstimate(
            shape=shape,
            num_wires=wires,
            num_data_wires=payload_wires,
            bandwidth_bps=bandwidth,
            parameters=link,
        )

    def estimate(
        self,
        kind: ArrangementKind | str,
        num_chiplets: int,
        *,
        max_links_per_chiplet: int | None = None,
    ) -> LinkBandwidthEstimate:
        """Per-link bandwidth of an arrangement family at a given chiplet count."""
        shape = self.chiplet_shape(
            kind, num_chiplets, max_links_per_chiplet=max_links_per_chiplet
        )
        return self.estimate_from_shape(shape)

    def estimate_for_arrangement(self, arrangement: Arrangement) -> LinkBandwidthEstimate:
        """Per-link bandwidth of a concrete arrangement.

        The arrangement's maximum node degree feeds the hand-optimised
        small-design path; larger designs use the closed-form layouts.
        """
        max_degree = arrangement.degree_statistics().maximum
        return self.estimate(
            arrangement.kind,
            arrangement.num_chiplets,
            max_links_per_chiplet=max_degree,
        )

    # -- aggregate bandwidths --------------------------------------------------

    def full_global_bandwidth_bps(
        self,
        kind: ArrangementKind | str,
        num_chiplets: int,
        *,
        max_links_per_chiplet: int | None = None,
    ) -> float:
        """The paper's *full global bandwidth* in bits per second.

        Defined in Section VI-A as the product of the chiplet count, the
        number of endpoints per chiplet and the per-link bandwidth; it is
        the theoretical cumulative throughput when every endpoint injects
        at full rate, and the scale factor that converts the simulator's
        relative saturation throughput into Tb/s.
        """
        estimate = self.estimate(
            kind, num_chiplets, max_links_per_chiplet=max_links_per_chiplet
        )
        return (
            num_chiplets
            * self._parameters.endpoints_per_chiplet
            * estimate.bandwidth_bps
        )

    def full_global_bandwidth_tbps(
        self,
        kind: ArrangementKind | str,
        num_chiplets: int,
        *,
        max_links_per_chiplet: int | None = None,
    ) -> float:
        """Full global bandwidth in Tb/s."""
        return (
            self.full_global_bandwidth_bps(
                kind, num_chiplets, max_links_per_chiplet=max_links_per_chiplet
            )
            / 1e12
        )
