"""Architectural parameters of the D2D link model.

Table I of the paper lists the model inputs:

=========  ==================================================================
Symbol     Description
=========  ==================================================================
``A_B``    Area (mm²) available for C4 bumps / micro-bumps of one D2D link
``P_B``    Pitch (mm) of a C4 bump / micro-bump
``N_ndw``  Number of non-data wires needed for a D2D link (handshake, clock)
``f``      Frequency at which the D2D links are operated
=========  ==================================================================

Section VI-B fixes the values used in the evaluation: total silicon area
``A_all = 800 mm²`` (just below the reticle limit), power-bump fraction
``p_p = 0.4``, C4 bump pitch ``P_B = 0.15 mm``, ``N_ndw = 12`` non-data
wires (the UCIe side-band, clocking, valid and track wires) and a link
frequency of 16 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class LinkParameters:
    """Per-link architectural parameters (Table I without ``A_B``).

    ``A_B`` is not part of this record because it is *derived* from the
    arrangement (chiplet area, power fraction and bump layout) by the shape
    solver; the remaining three parameters are technology constants.

    Parameters
    ----------
    bump_pitch_mm:
        Pitch ``P_B`` of a C4 bump or micro-bump in millimetres.
    non_data_wires:
        Number ``N_ndw`` of wires per link that carry no payload data
        (clock, valid, track, side-band, ...).
    frequency_hz:
        Operating frequency ``f`` of the D2D link in Hz.
    name:
        Human-readable preset name.
    """

    bump_pitch_mm: float
    non_data_wires: int
    frequency_hz: float
    name: str = "custom"

    def __post_init__(self) -> None:
        check_positive("bump_pitch_mm", self.bump_pitch_mm)
        check_positive_int("non_data_wires", self.non_data_wires, minimum=0)
        check_positive("frequency_hz", self.frequency_hz)

    @property
    def frequency_ghz(self) -> float:
        """Link frequency in GHz."""
        return self.frequency_hz / 1e9

    def with_pitch(self, bump_pitch_mm: float) -> "LinkParameters":
        """Copy of the parameters with a different bump pitch."""
        return replace(self, bump_pitch_mm=bump_pitch_mm)

    def with_frequency(self, frequency_hz: float) -> "LinkParameters":
        """Copy of the parameters with a different link frequency."""
        return replace(self, frequency_hz=frequency_hz)


#: The evaluation setting of the paper: C4 bumps on an organic package
#: substrate (UCIe "standard package"), 150 um pitch, 12 non-data wires,
#: 16 GHz operation (UCIe's 32 GT/s maximum data rate).
UCIE_STANDARD_PACKAGE = LinkParameters(
    bump_pitch_mm=0.15,
    non_data_wires=12,
    frequency_hz=16e9,
    name="ucie-standard-package",
)

#: Micro-bumps on a silicon interposer (UCIe "advanced package"): the paper
#: quotes a 30–60 um micro-bump pitch; 45 um is used as the representative
#: value.  The non-data wire count and frequency follow the same UCIe
#: specification as the standard package.
UCIE_ADVANCED_PACKAGE = LinkParameters(
    bump_pitch_mm=0.045,
    non_data_wires=12,
    frequency_hz=16e9,
    name="ucie-advanced-package",
)


@dataclass(frozen=True)
class EvaluationParameters:
    """The complete parameter set of the paper's evaluation (Section VI-B).

    Parameters
    ----------
    total_chiplet_area_mm2:
        Combined area ``A_all`` of all compute chiplets; the chiplet area is
        ``A_C = A_all / N`` for ``N`` chiplets.
    power_bump_fraction:
        Fraction ``p_p`` of all bumps used for the power supply.
    link:
        Technology constants of the D2D link (pitch, non-data wires,
        frequency).
    endpoints_per_chiplet:
        Number of traffic endpoints attached to each chiplet's router in
        the BookSim2 setup of Section VI-A.
    link_latency_cycles:
        Modelled latency of PHY + D2D link + PHY in router cycles.
    router_latency_cycles:
        Latency of each chiplet's local router.
    num_virtual_channels:
        Virtual channels per router port.
    buffer_depth_flits:
        Flit buffer depth per virtual channel.
    hand_optimized_max_chiplets:
        Designs with at most this many chiplets use the degree-aware
        ("hand-optimised") bump-sector split instead of the closed-form
        4-/6-sector layouts; the paper hand-optimises ``N <= 7``.
    """

    total_chiplet_area_mm2: float = 800.0
    power_bump_fraction: float = 0.4
    link: LinkParameters = UCIE_STANDARD_PACKAGE
    endpoints_per_chiplet: int = 2
    link_latency_cycles: int = 27
    router_latency_cycles: int = 3
    num_virtual_channels: int = 8
    buffer_depth_flits: int = 8
    hand_optimized_max_chiplets: int = 7

    def __post_init__(self) -> None:
        check_positive("total_chiplet_area_mm2", self.total_chiplet_area_mm2)
        check_fraction("power_bump_fraction", self.power_bump_fraction, inclusive=False)
        check_positive_int("endpoints_per_chiplet", self.endpoints_per_chiplet)
        check_non_negative("link_latency_cycles", self.link_latency_cycles)
        check_positive_int("router_latency_cycles", self.router_latency_cycles)
        check_positive_int("num_virtual_channels", self.num_virtual_channels)
        check_positive_int("buffer_depth_flits", self.buffer_depth_flits)
        check_positive_int(
            "hand_optimized_max_chiplets", self.hand_optimized_max_chiplets, minimum=0
        )

    def chiplet_area_mm2(self, num_chiplets: int) -> float:
        """Per-chiplet area ``A_C = A_all / N``."""
        check_positive_int("num_chiplets", num_chiplets)
        return self.total_chiplet_area_mm2 / num_chiplets

    @classmethod
    def paper_defaults(cls) -> "EvaluationParameters":
        """The exact parameter set of Section VI of the paper."""
        return cls()
