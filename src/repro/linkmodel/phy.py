"""PHY companion model.

Every D2D link terminates in a physical-layer interface (PHY) inside both
chiplets.  The PHY converts between on-chip and off-chip protocols, voltage
levels and clock frequencies; it adds latency to every hop and area /
energy overhead to every chiplet compared to a monolithic design
(Section II of the paper).

The paper's simulations fold the PHY latency into a single 27-cycle link
latency (outgoing PHY + D2D link + incoming PHY) and quote the UCIe PHY
latency of 12–16 UI.  This module keeps the individual components explicit
so that the simulator configuration can be derived from them and so that
sensitivity studies (ablations) can vary them independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PhyModel:
    """Latency, area and energy model of one PHY instance.

    Parameters
    ----------
    latency_cycles:
        Latency contributed by one PHY traversal, in router clock cycles.
        UCIe quotes 12–16 UI per PHY; at the paper's operating point this
        folds (together with the wire flight time) into the 27-cycle link
        latency, i.e. 12 cycles per PHY and 3 cycles of wire latency.
    wire_latency_cycles:
        Flight time of the D2D wire itself, in cycles.
    area_overhead_mm2:
        Silicon area one PHY adds to its chiplet.
    energy_per_bit_pj:
        Energy per transferred bit in picojoules (UCIe targets well below
        1 pJ/bit for standard-package links).
    """

    latency_cycles: int = 12
    wire_latency_cycles: int = 3
    area_overhead_mm2: float = 0.25
    energy_per_bit_pj: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative("latency_cycles", self.latency_cycles)
        check_non_negative("wire_latency_cycles", self.wire_latency_cycles)
        check_non_negative("area_overhead_mm2", self.area_overhead_mm2)
        check_non_negative("energy_per_bit_pj", self.energy_per_bit_pj)

    @property
    def link_latency_cycles(self) -> int:
        """Total latency of outgoing PHY + wire + incoming PHY in cycles.

        With the defaults this evaluates to the paper's 27 cycles.
        """
        return 2 * self.latency_cycles + self.wire_latency_cycles

    def phy_area_per_chiplet_mm2(self, num_links: int) -> float:
        """Total PHY area added to a chiplet with ``num_links`` D2D links."""
        if num_links < 0:
            raise ValueError(f"num_links must be >= 0, got {num_links}")
        return num_links * self.area_overhead_mm2

    def phy_area_overhead_fraction(self, num_links: int, chiplet_area_mm2: float) -> float:
        """PHY area as a fraction of the chiplet area."""
        check_positive("chiplet_area_mm2", chiplet_area_mm2)
        return self.phy_area_per_chiplet_mm2(num_links) / chiplet_area_mm2

    def link_energy_watts(self, bandwidth_bps: float, utilization: float = 1.0) -> float:
        """Power drawn by one link at the given bandwidth and utilisation."""
        check_non_negative("bandwidth_bps", bandwidth_bps)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return bandwidth_bps * utilization * self.energy_per_bit_pj * 1e-12

    def max_link_length_mm(self, *, silicon_interposer: bool = False) -> float:
        """Maximum recommended D2D link length for high-frequency operation.

        The paper (and the UCIe specification) note that silicon-interposer
        links should stay below 2 mm; organic-package links may be somewhat
        longer (below 4 mm in the designs the paper considers).
        """
        return 2.0 if silicon_interposer else 4.0

    def supports_link_length(
        self, length_mm: float, *, silicon_interposer: bool = False
    ) -> bool:
        """Whether a link of the given length can run at full frequency."""
        check_non_negative("length_mm", length_mm)
        return length_mm <= self.max_link_length_mm(silicon_interposer=silicon_interposer)


def estimated_link_length_mm(bump_distance_mm: float) -> float:
    """Rough physical length of a D2D link between adjacent chiplets.

    A wire has to travel from a bump (at most ``D_B`` from the edge) across
    the chiplet boundary to a bump of the neighbouring chiplet (again at
    most ``D_B`` from that chiplet's edge), so twice the bump distance is a
    conservative estimate of the link length.
    """
    check_non_negative("bump_distance_mm", bump_distance_mm)
    return 2.0 * bump_distance_mm


def cycles_from_time(duration_s: float, frequency_hz: float) -> int:
    """Convert a wall-clock duration into (rounded-up) clock cycles."""
    check_non_negative("duration_s", duration_s)
    check_positive("frequency_hz", frequency_hz)
    return int(math.ceil(duration_s * frequency_hz))
