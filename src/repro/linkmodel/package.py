"""Package-level feasibility checks.

Section II and Section V of the paper constrain the physical design: D2D
links must stay short (below roughly 2 mm on silicon interposers and 4 mm
on organic substrates) to run at 16 GHz, and the whole compute arrangement
has to fit a realistic package.  This module combines the solved chiplet
shape with an arrangement to estimate link lengths, package dimensions and
bump budgets, and flags configurations that violate the constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrangements.base import Arrangement, ArrangementKind
from repro.linkmodel.parameters import EvaluationParameters
from repro.linkmodel.phy import PhyModel, estimated_link_length_mm
from repro.linkmodel.shape import ChipletShape, solve_chiplet_shape, solve_hand_optimized_shape


@dataclass(frozen=True)
class PackageFeasibility:
    """Physical feasibility summary of one design point.

    Attributes
    ----------
    shape:
        The solved chiplet shape used for the estimates.
    link_length_mm:
        Estimated worst-case D2D link length (twice the bump-to-edge
        distance ``D_B``).
    max_link_length_mm:
        Technology limit for the chosen packaging style.
    package_width_mm / package_height_mm:
        Bounding box of the compute arrangement scaled to the solved
        chiplet dimensions.
    silicon_interposer:
        Whether the limits of a silicon interposer (2 mm) or an organic
        package substrate (4 mm) were applied.
    """

    shape: ChipletShape
    link_length_mm: float
    max_link_length_mm: float
    package_width_mm: float
    package_height_mm: float
    silicon_interposer: bool

    @property
    def link_length_ok(self) -> bool:
        """Whether the worst-case link stays below the technology limit."""
        return self.link_length_mm <= self.max_link_length_mm

    @property
    def package_area_mm2(self) -> float:
        """Area of the compute-arrangement bounding box."""
        return self.package_width_mm * self.package_height_mm

    def violations(self) -> list[str]:
        """Human-readable list of violated constraints (empty when feasible)."""
        problems: list[str] = []
        if not self.link_length_ok:
            problems.append(
                f"estimated D2D link length {self.link_length_mm:.2f} mm exceeds the "
                f"{self.max_link_length_mm:.1f} mm limit"
            )
        return problems


def check_package_feasibility(
    arrangement: Arrangement,
    parameters: EvaluationParameters | None = None,
    *,
    phy: PhyModel | None = None,
    silicon_interposer: bool = False,
) -> PackageFeasibility:
    """Estimate link lengths and package dimensions of a design point.

    Parameters
    ----------
    arrangement:
        The compute arrangement to check.
    parameters:
        Evaluation parameters supplying total silicon area and power-bump
        fraction (defaults to the paper's Section VI values).
    phy:
        PHY model providing the maximum link length; defaults to the paper's
        limits (2 mm for silicon interposers, 4 mm for package substrates).
    silicon_interposer:
        Whether the design targets a silicon interposer.
    """
    if parameters is None:
        parameters = EvaluationParameters()
    if phy is None:
        phy = PhyModel()

    chiplet_area = parameters.chiplet_area_mm2(arrangement.num_chiplets)
    max_degree = arrangement.degree_statistics().maximum
    if (
        arrangement.num_chiplets <= parameters.hand_optimized_max_chiplets
        and max_degree > 0
    ):
        shape = solve_hand_optimized_shape(
            chiplet_area, parameters.power_bump_fraction, max_degree
        )
    else:
        shape = solve_chiplet_shape(
            arrangement.kind, chiplet_area, parameters.power_bump_fraction
        )

    link_length = estimated_link_length_mm(shape.bump_distance_mm)
    limit = phy.max_link_length_mm(silicon_interposer=silicon_interposer)

    if arrangement.placement is not None:
        bounds = arrangement.placement.bounding_box()
        # The generators place unit-sized chiplets; rescale the bounding box
        # to the solved chiplet dimensions.
        width_scale = shape.width_mm / arrangement.chiplet_width
        height_scale = shape.height_mm / arrangement.chiplet_height
        package_width = bounds.width * width_scale
        package_height = bounds.height * height_scale
    else:
        # Honeycomb: approximate with the total area of all chiplets.
        package_width = package_height = (
            arrangement.num_chiplets * chiplet_area
        ) ** 0.5

    return PackageFeasibility(
        shape=shape,
        link_length_mm=link_length,
        max_link_length_mm=limit,
        package_width_mm=package_width,
        package_height_mm=package_height,
        silicon_interposer=silicon_interposer,
    )


def maximum_chiplet_area_for_frequency(
    kind: ArrangementKind | str,
    power_bump_fraction: float,
    *,
    phy: PhyModel | None = None,
    silicon_interposer: bool = False,
) -> float:
    """Largest chiplet area whose D2D links stay within the length limit.

    Inverts the shape solver: the worst-case link length grows with the
    square root of the chiplet area, so there is a maximum chiplet area for
    which adjacent-chiplet links can still run at full frequency.
    """
    if phy is None:
        phy = PhyModel()
    kind = ArrangementKind.from_name(kind)
    limit = phy.max_link_length_mm(silicon_interposer=silicon_interposer)
    # Link length = 2 * D_B and D_B scales with sqrt(area); find the scale
    # factor from a reference solution of unit area.
    reference = solve_chiplet_shape(kind, 1.0, power_bump_fraction)
    reference_length = estimated_link_length_mm(reference.bump_distance_mm)
    if reference_length <= 0.0:
        raise ValueError("the reference link length must be positive")
    scale = limit / reference_length
    return scale * scale
