"""Chiplet-shape solver (Section IV-B of the paper).

Given the chiplet area ``A_C`` and the fraction ``p_p`` of bumps devoted to
the power supply, the solver computes, for each bump layout:

* the chiplet dimensions ``W_C`` × ``H_C``,
* the area ``A_B`` of the bump sector of one D2D link, and
* the maximum distance ``D_B`` between a link bump and the chiplet edge.

**Grid layout** (four link sectors, Figure 5a): the chiplet is square,

.. math::

   W_C = H_C = \\sqrt{A_C}, \\quad
   W_P = H_P = \\sqrt{p_p A_C}, \\quad
   A_B = \\tfrac{1}{4} (1 - p_p) A_C, \\quad
   D_B = (W_C - W_P) / 2.

**Brickwall / HexaMesh layout** (six link sectors, Figure 5b): solving the
paper's equation system (1)–(5) yields

.. math::

   W_C = \\sqrt{\\frac{A_C (2 + 4 p_p)}{3}}, \\quad
   H_C = A_C / W_C, \\quad
   D_B = \\frac{(1 - p_p) A_C}{\\sqrt{A_C (6 + 12 p_p)}}, \\quad
   A_B = \\tfrac{1}{6} (1 - p_p) A_C.

The worked example of the paper (``A_C = 16 mm²``, ``p_p = 0.4``) gives
``W_C = 4.38 mm``, ``H_C = 3.65 mm`` and ``D_B = 0.73 mm``; the unit tests
pin these values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arrangements.base import ArrangementKind
from repro.geometry.primitives import Rect
from repro.geometry.sectors import SectorLayout, grid_sector_layout, hex_sector_layout
from repro.utils.validation import check_fraction, check_positive, check_positive_int


@dataclass(frozen=True)
class ChipletShape:
    """The solved shape and bump-sector geometry of one chiplet.

    Attributes
    ----------
    width_mm, height_mm:
        Chiplet dimensions ``W_C`` and ``H_C``.
    area_mm2:
        Chiplet area ``A_C`` (the product of the dimensions).
    power_bump_fraction:
        The input fraction ``p_p``.
    link_sector_area_mm2:
        Area ``A_B`` available to the bumps of one D2D link.
    bump_distance_mm:
        Maximum link-bump-to-edge distance ``D_B``.
    num_link_sectors:
        Number of link sectors (4 for the grid layout, 6 for the
        brickwall / HexaMesh layout, or the custom count of a
        hand-optimised small design).
    layout_style:
        ``"grid"``, ``"hex"`` or ``"hand-optimized"``.
    """

    width_mm: float
    height_mm: float
    area_mm2: float
    power_bump_fraction: float
    link_sector_area_mm2: float
    bump_distance_mm: float
    num_link_sectors: int
    layout_style: str

    @property
    def aspect_ratio(self) -> float:
        """Ratio of the longer to the shorter chiplet side."""
        return max(self.width_mm, self.height_mm) / min(self.width_mm, self.height_mm)

    @property
    def power_area_mm2(self) -> float:
        """Area of the power-bump sector ``p_p * A_C``."""
        return self.power_bump_fraction * self.area_mm2

    @property
    def total_link_area_mm2(self) -> float:
        """Combined area of all link sectors ``(1 - p_p) * A_C``."""
        return self.num_link_sectors * self.link_sector_area_mm2

    def sector_layout(self) -> SectorLayout:
        """Materialise the geometric bump-sector layout of Figure 5.

        Only defined for the closed-form grid and hex layouts; the
        hand-optimised small-design split has no canonical geometry and
        raises :class:`ValueError`.
        """
        chiplet = Rect(0.0, 0.0, self.width_mm, self.height_mm)
        if self.layout_style == "grid":
            power_width = math.sqrt(self.power_bump_fraction * self.area_mm2)
            return grid_sector_layout(chiplet, power_width)
        if self.layout_style == "hex":
            band_height = self.width_mm / 2.0
            return hex_sector_layout(chiplet, self.bump_distance_mm, band_height)
        raise ValueError(
            "hand-optimised shapes have no canonical sector layout geometry"
        )


def solve_grid_shape(chiplet_area_mm2: float, power_bump_fraction: float) -> ChipletShape:
    """Solve the square chiplet shape of the grid bump layout (Figure 5a)."""
    check_positive("chiplet_area_mm2", chiplet_area_mm2)
    check_fraction("power_bump_fraction", power_bump_fraction, inclusive=False)

    width = math.sqrt(chiplet_area_mm2)
    power_width = math.sqrt(power_bump_fraction * chiplet_area_mm2)
    link_area = (1.0 - power_bump_fraction) * chiplet_area_mm2 / 4.0
    bump_distance = (width - power_width) / 2.0
    return ChipletShape(
        width_mm=width,
        height_mm=width,
        area_mm2=chiplet_area_mm2,
        power_bump_fraction=power_bump_fraction,
        link_sector_area_mm2=link_area,
        bump_distance_mm=bump_distance,
        num_link_sectors=4,
        layout_style="grid",
    )


def solve_hex_shape(chiplet_area_mm2: float, power_bump_fraction: float) -> ChipletShape:
    """Solve the chiplet shape of the brickwall / HexaMesh bump layout (Figure 5b).

    The solution of the paper's equation system (1)–(5):

    * ``W_C = sqrt(A_C (2 + 4 p_p) / 3)``
    * ``H_C = A_C / W_C``
    * ``D_B = (1 - p_p) A_C / sqrt(A_C (6 + 12 p_p))``
    * ``A_B = (1/6) (1 - p_p) A_C``
    """
    check_positive("chiplet_area_mm2", chiplet_area_mm2)
    check_fraction("power_bump_fraction", power_bump_fraction, inclusive=False)

    width = math.sqrt(chiplet_area_mm2 * (2.0 + 4.0 * power_bump_fraction) / 3.0)
    height = chiplet_area_mm2 / width
    bump_distance = (1.0 - power_bump_fraction) * chiplet_area_mm2 / math.sqrt(
        chiplet_area_mm2 * (6.0 + 12.0 * power_bump_fraction)
    )
    link_area = (1.0 - power_bump_fraction) * chiplet_area_mm2 / 6.0
    return ChipletShape(
        width_mm=width,
        height_mm=height,
        area_mm2=chiplet_area_mm2,
        power_bump_fraction=power_bump_fraction,
        link_sector_area_mm2=link_area,
        bump_distance_mm=bump_distance,
        num_link_sectors=6,
        layout_style="hex",
    )


def solve_hand_optimized_shape(
    chiplet_area_mm2: float,
    power_bump_fraction: float,
    num_links: int,
) -> ChipletShape:
    """Degree-aware bump split for very small designs.

    The paper hand-optimises the bump assignment of designs with at most
    seven chiplets.  What the hand optimisation achieves is that the
    non-power bump area is divided among the links each chiplet actually
    has (instead of a fixed four or six sectors).  This helper reproduces
    that: the chiplet stays square and the non-power area is split equally
    into ``num_links`` sectors.
    """
    check_positive("chiplet_area_mm2", chiplet_area_mm2)
    check_fraction("power_bump_fraction", power_bump_fraction, inclusive=False)
    check_positive_int("num_links", num_links)

    width = math.sqrt(chiplet_area_mm2)
    power_width = math.sqrt(power_bump_fraction * chiplet_area_mm2)
    link_area = (1.0 - power_bump_fraction) * chiplet_area_mm2 / num_links
    bump_distance = (width - power_width) / 2.0
    return ChipletShape(
        width_mm=width,
        height_mm=width,
        area_mm2=chiplet_area_mm2,
        power_bump_fraction=power_bump_fraction,
        link_sector_area_mm2=link_area,
        bump_distance_mm=bump_distance,
        num_link_sectors=num_links,
        layout_style="hand-optimized",
    )


def solve_chiplet_shape(
    kind: ArrangementKind | str,
    chiplet_area_mm2: float,
    power_bump_fraction: float,
) -> ChipletShape:
    """Solve the chiplet shape appropriate for an arrangement family.

    The grid uses the four-sector layout; brickwall, honeycomb and HexaMesh
    use the six-sector layout.
    """
    kind = ArrangementKind.from_name(kind)
    if kind is ArrangementKind.GRID:
        return solve_grid_shape(chiplet_area_mm2, power_bump_fraction)
    return solve_hex_shape(chiplet_area_mm2, power_bump_fraction)
