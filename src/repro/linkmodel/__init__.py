"""The D2D link model of the paper (Sections IV-B and V).

This package combines three pieces:

* :mod:`repro.linkmodel.parameters` — the architectural model inputs of
  Table I plus the concrete values used in the evaluation (UCIe-based),
* :mod:`repro.linkmodel.shape` — the chiplet-shape solver that computes
  chiplet dimensions, per-link bump-sector area ``A_B`` and the maximum
  bump-to-edge distance ``D_B`` for the grid and brickwall/HexaMesh bump
  layouts,
* :mod:`repro.linkmodel.bandwidth` — the link-bandwidth estimation
  ``N_w = A_B / P_B²``, ``N_dw = N_w − N_ndw``, ``B = N_dw · f``,
* :mod:`repro.linkmodel.phy` — a PHY latency / energy / area companion
  model used by the simulator configuration.
"""

from repro.linkmodel.bandwidth import (
    D2DLinkModel,
    LinkBandwidthEstimate,
    data_wires,
    link_bandwidth_bps,
    wire_count,
)
from repro.linkmodel.parameters import (
    EvaluationParameters,
    LinkParameters,
    UCIE_ADVANCED_PACKAGE,
    UCIE_STANDARD_PACKAGE,
)
from repro.linkmodel.package import PackageFeasibility, check_package_feasibility
from repro.linkmodel.phy import PhyModel
from repro.linkmodel.shape import (
    ChipletShape,
    solve_chiplet_shape,
    solve_grid_shape,
    solve_hex_shape,
)

__all__ = [
    "ChipletShape",
    "D2DLinkModel",
    "EvaluationParameters",
    "LinkBandwidthEstimate",
    "LinkParameters",
    "PackageFeasibility",
    "PhyModel",
    "check_package_feasibility",
    "UCIE_ADVANCED_PACKAGE",
    "UCIE_STANDARD_PACKAGE",
    "data_wires",
    "link_bandwidth_bps",
    "solve_chiplet_shape",
    "solve_grid_shape",
    "solve_hex_shape",
    "wire_count",
]
