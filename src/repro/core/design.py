"""The :class:`ChipletDesign` facade.

A design point is an arrangement family plus a chiplet count evaluated
under a fixed set of architectural parameters.  The class lazily computes
and caches the quantities of the paper's methodology:

* the arrangement and its graph (Section IV),
* the performance proxies: diameter and bisection bandwidth (Section III-C),
* the chiplet shape and D2D link bandwidth (Sections IV-B and V),
* the zero-load latency and saturation throughput, either analytically or
  with the cycle-accurate simulator (Section VI).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.factory import make_arrangement
from repro.evaluation.proxies import evaluate_arrangement_proxies
from repro.graphs.metrics import GraphMetrics, compute_metrics
from repro.linkmodel.bandwidth import D2DLinkModel, LinkBandwidthEstimate
from repro.linkmodel.parameters import EvaluationParameters
from repro.linkmodel.shape import ChipletShape
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE
from repro.noc.simulator import NocSimulator, SimulationResult
from repro.perfmodel.latency import zero_load_latency_cycles
from repro.perfmodel.throughput import (
    bisection_limited_saturation_fraction,
    saturation_throughput_fraction,
)
from repro.utils.validation import check_in_choices, check_positive_int


class ChipletDesign:
    """One evaluated chiplet design (arrangement family × chiplet count).

    Create instances with :meth:`create` or :meth:`from_arrangement`.
    """

    def __init__(
        self,
        arrangement: Arrangement | None = None,
        parameters: EvaluationParameters | None = None,
        *,
        arrangement_factory: Callable[[], Arrangement] | None = None,
    ) -> None:
        if (arrangement is None) == (arrangement_factory is None):
            raise ValueError(
                "provide exactly one of arrangement or arrangement_factory"
            )
        self._arrangement = arrangement
        self._arrangement_factory = arrangement_factory
        self._parameters = parameters if parameters is not None else EvaluationParameters()
        self._link_model = D2DLinkModel(self._parameters)
        # Lazily computed caches.
        self._metrics: GraphMetrics | None = None
        self._link_estimate: LinkBandwidthEstimate | None = None
        self._bisection: float | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        kind: ArrangementKind | str,
        num_chiplets: int,
        regularity: Regularity | str | None = None,
        *,
        parameters: EvaluationParameters | None = None,
        defer: bool = False,
    ) -> "ChipletDesign":
        """Generate the arrangement and wrap it in a design object.

        With ``defer=True`` the (potentially expensive) arrangement
        generation is postponed until the arrangement is first needed —
        generation errors then surface on first access instead of here.
        """
        check_positive_int("num_chiplets", num_chiplets)
        factory = partial(make_arrangement, kind, num_chiplets, regularity)
        if defer:
            return cls(parameters=parameters, arrangement_factory=factory)
        return cls(factory(), parameters)

    @classmethod
    def from_arrangement(
        cls,
        arrangement: Arrangement,
        *,
        parameters: EvaluationParameters | None = None,
    ) -> "ChipletDesign":
        """Wrap an existing (possibly custom) arrangement."""
        return cls(arrangement, parameters)

    # -- basic structure -------------------------------------------------------

    @property
    def arrangement(self) -> Arrangement:
        """The underlying arrangement (materialised on first access when deferred)."""
        if self._arrangement is None:
            self._arrangement = self._arrangement_factory()
        return self._arrangement

    @property
    def parameters(self) -> EvaluationParameters:
        """The architectural parameters the design is evaluated under."""
        return self._parameters

    @property
    def kind(self) -> ArrangementKind:
        """Arrangement family."""
        return self.arrangement.kind

    @property
    def num_chiplets(self) -> int:
        """Number of compute chiplets."""
        return self.arrangement.num_chiplets

    @property
    def regularity(self) -> Regularity:
        """Regularity class of the arrangement."""
        return self.arrangement.regularity

    @property
    def label(self) -> str:
        """Short human-readable label (e.g. ``"HM-37 (regular)"``)."""
        return self.arrangement.label

    # -- proxies (Section III-C) -----------------------------------------------

    def metrics(self) -> GraphMetrics:
        """Graph metrics of the arrangement (cached)."""
        if self._metrics is None:
            self._metrics = compute_metrics(self.arrangement.graph)
        return self._metrics

    @property
    def diameter(self) -> int:
        """Network diameter (the paper's latency proxy)."""
        return self.metrics().diameter

    @property
    def bisection_bandwidth(self) -> float:
        """Bisection bandwidth in links (the paper's throughput proxy).

        Regular arrangements use the closed-form formula; others are
        estimated with the partitioning portfolio (the METIS substitute).
        """
        if self._bisection is None:
            self._bisection = evaluate_arrangement_proxies(
                self.arrangement
            ).bisection_bandwidth
        return self._bisection

    @property
    def average_neighbors(self) -> float:
        """Average number of neighbours per chiplet."""
        return self.metrics().average_degree

    # -- link model (Sections IV-B and V) -----------------------------------------

    @property
    def chiplet_area_mm2(self) -> float:
        """Per-chiplet area ``A_C = A_all / N``."""
        return self._parameters.chiplet_area_mm2(self.num_chiplets)

    def chiplet_shape(self) -> ChipletShape:
        """Solved chiplet shape (dimensions, sector area, bump distance)."""
        return self.link_estimate().shape

    def link_estimate(self) -> LinkBandwidthEstimate:
        """Full output of the D2D link model (cached)."""
        if self._link_estimate is None:
            self._link_estimate = self._link_model.estimate_for_arrangement(
                self.arrangement
            )
        return self._link_estimate

    @property
    def link_bandwidth_gbps(self) -> float:
        """Per-link bandwidth in Gb/s."""
        return self.link_estimate().bandwidth_gbps

    @property
    def full_global_bandwidth_tbps(self) -> float:
        """Chiplets × endpoints per chiplet × per-link bandwidth, in Tb/s."""
        return (
            self.num_chiplets
            * self._parameters.endpoints_per_chiplet
            * self.link_estimate().bandwidth_bps
            / 1e12
        )

    # -- performance (Section VI) ----------------------------------------------------

    def simulation_config(self, base: SimulationConfig | None = None) -> SimulationConfig:
        """Simulator configuration matching the design's parameters."""
        if base is None:
            base = SimulationConfig()
        return SimulationConfig(
            endpoints_per_chiplet=self._parameters.endpoints_per_chiplet,
            num_virtual_channels=self._parameters.num_virtual_channels,
            buffer_depth_flits=self._parameters.buffer_depth_flits,
            router_latency_cycles=self._parameters.router_latency_cycles,
            link_latency_cycles=self._parameters.link_latency_cycles,
            local_latency_cycles=base.local_latency_cycles,
            packet_size_flits=base.packet_size_flits,
            warmup_cycles=base.warmup_cycles,
            measurement_cycles=base.measurement_cycles,
            drain_cycles=base.drain_cycles,
            seed=base.seed,
        )

    def zero_load_latency(self) -> float:
        """Analytical zero-load latency in cycles."""
        return zero_load_latency_cycles(self.arrangement.graph, self.simulation_config())

    def saturation_fraction(self, *, model: str = "bisection") -> float:
        """Analytical saturation throughput as a fraction of injection capacity.

        ``model`` selects the analytical engine: ``"bisection"``
        (bisection-limited bound, the default) or ``"channel_load"``
        (per-node even-split channel loads).
        """
        check_in_choices("model", model, ("bisection", "channel_load"))
        if model == "bisection":
            return bisection_limited_saturation_fraction(
                self.arrangement.graph,
                self.simulation_config(),
                bisection_links=self.bisection_bandwidth,
            )
        return saturation_throughput_fraction(
            self.arrangement.graph, self.simulation_config()
        )

    def saturation_throughput_tbps(self, *, model: str = "bisection") -> float:
        """Analytical saturation throughput in Tb/s."""
        return self.saturation_fraction(model=model) * self.full_global_bandwidth_tbps

    def simulate(
        self,
        *,
        injection_rate: float = 0.02,
        traffic: str = "uniform",
        config: SimulationConfig | None = None,
        engine: str = DEFAULT_ENGINE,
        telemetry=None,
    ) -> SimulationResult:
        """Run the cycle-accurate simulator on this design.

        Parameters
        ----------
        injection_rate:
            Offered load in flits per cycle per endpoint.
        traffic:
            Traffic pattern name (``"uniform"``, ``"hotspot"``, ...).
        config:
            Optional phase-length / seed override; the architectural
            parameters always come from the design itself.
        engine:
            Cycle-loop engine (``"active"``, ``"vectorized"`` or
            ``"legacy"``; all bit-identical under a fixed seed).
        telemetry:
            Optional :class:`~repro.telemetry.TelemetrySession` observing
            the run (``None`` keeps the hot path observation-free).
        """
        simulator = NocSimulator(
            self.arrangement.graph,
            self.simulation_config(config),
            injection_rate=injection_rate,
            traffic=traffic,
        )
        return simulator.run(engine=engine, telemetry=telemetry)

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Flat summary dictionary of every cached / cheap quantity."""
        metrics = self.metrics()
        shape = self.chiplet_shape()
        return {
            "label": self.label,
            "kind": self.kind.value,
            "regularity": self.regularity.value,
            "num_chiplets": self.num_chiplets,
            "num_links": metrics.num_edges,
            "diameter": metrics.diameter,
            "average_distance": metrics.average_distance,
            "min_neighbors": metrics.degree.minimum,
            "max_neighbors": metrics.degree.maximum,
            "avg_neighbors": metrics.degree.average,
            "bisection_bandwidth_links": self.bisection_bandwidth,
            "chiplet_area_mm2": self.chiplet_area_mm2,
            "chiplet_width_mm": shape.width_mm,
            "chiplet_height_mm": shape.height_mm,
            "bump_distance_mm": shape.bump_distance_mm,
            "link_bandwidth_gbps": self.link_bandwidth_gbps,
            "full_global_bandwidth_tbps": self.full_global_bandwidth_tbps,
            "zero_load_latency_cycles": self.zero_load_latency(),
            "saturation_throughput_tbps": self.saturation_throughput_tbps(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChipletDesign({self.label})"
