"""High-level design API.

:class:`ChipletDesign` is the main entry point of the library: it bundles
an arrangement, the solved chiplet shape, the D2D link model and the
performance proxies / estimates of one design point, and exposes the
paper's methodology (graph proxies, link bandwidth, analytical or
cycle-accurate performance) through a single object.

:class:`DesignSpaceExplorer` sweeps chiplet counts and arrangement families
and ranks the resulting designs, which is how a user of the library would
actually pick an arrangement for a given product.
"""

from repro.core.design import ChipletDesign
from repro.core.explorer import (
    DesignSpaceExplorer,
    ExplorationRecord,
    WorkloadExplorationRecord,
)
from repro.core.parallel import (
    BatchedSweepRunner,
    InFlightRegistry,
    ParallelSweepRunner,
    SweepCandidate,
    SweepRecord,
    derive_candidate_seed,
    is_inline,
    parallel_map,
    resolve_workload_candidate,
)
from repro.core.report import DesignComparison, compare_designs

__all__ = [
    "BatchedSweepRunner",
    "ChipletDesign",
    "DesignComparison",
    "DesignSpaceExplorer",
    "ExplorationRecord",
    "InFlightRegistry",
    "ParallelSweepRunner",
    "SweepCandidate",
    "SweepRecord",
    "WorkloadExplorationRecord",
    "compare_designs",
    "derive_candidate_seed",
    "is_inline",
    "parallel_map",
    "resolve_workload_candidate",
]
