"""Side-by-side comparison of designs (HexaMesh vs. grid style reports)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design import ChipletDesign
from repro.evaluation.tables import format_table


@dataclass(frozen=True)
class DesignComparison:
    """A pairwise comparison of two designs at the same chiplet count."""

    candidate: ChipletDesign
    baseline: ChipletDesign

    def __post_init__(self) -> None:
        if self.candidate.num_chiplets != self.baseline.num_chiplets:
            raise ValueError(
                "designs must have the same chiplet count to be compared "
                f"({self.candidate.num_chiplets} vs {self.baseline.num_chiplets})"
            )

    # -- relative metrics (candidate vs. baseline) ---------------------------------

    @property
    def diameter_reduction_percent(self) -> float:
        """Diameter reduction of the candidate relative to the baseline."""
        return (1.0 - self.candidate.diameter / self.baseline.diameter) * 100.0

    @property
    def bisection_improvement_percent(self) -> float:
        """Bisection-bandwidth improvement of the candidate relative to the baseline."""
        return (
            self.candidate.bisection_bandwidth / self.baseline.bisection_bandwidth - 1.0
        ) * 100.0

    @property
    def latency_reduction_percent(self) -> float:
        """Zero-load latency reduction (analytical engine)."""
        return (
            1.0 - self.candidate.zero_load_latency() / self.baseline.zero_load_latency()
        ) * 100.0

    @property
    def throughput_improvement_percent(self) -> float:
        """Saturation-throughput improvement (analytical engine)."""
        return (
            self.candidate.saturation_throughput_tbps()
            / self.baseline.saturation_throughput_tbps()
            - 1.0
        ) * 100.0

    def as_dict(self) -> dict[str, float]:
        """All relative metrics in one dictionary."""
        return {
            "diameter_reduction_percent": self.diameter_reduction_percent,
            "bisection_improvement_percent": self.bisection_improvement_percent,
            "latency_reduction_percent": self.latency_reduction_percent,
            "throughput_improvement_percent": self.throughput_improvement_percent,
        }

    def render(self) -> str:
        """Human-readable side-by-side table of the two designs."""
        candidate_summary = self.candidate.summary()
        baseline_summary = self.baseline.summary()
        keys = [
            "num_chiplets",
            "num_links",
            "diameter",
            "min_neighbors",
            "max_neighbors",
            "avg_neighbors",
            "bisection_bandwidth_links",
            "link_bandwidth_gbps",
            "full_global_bandwidth_tbps",
            "zero_load_latency_cycles",
            "saturation_throughput_tbps",
        ]
        rows = [
            [key, baseline_summary[key], candidate_summary[key]]
            for key in keys
        ]
        header = ["metric", self.baseline.label, self.candidate.label]
        relative = format_table(
            ["relative metric", "value [%]"],
            [[key, value] for key, value in self.as_dict().items()],
        )
        return format_table(header, rows) + "\n\n" + relative


def compare_designs(candidate: ChipletDesign, baseline: ChipletDesign) -> DesignComparison:
    """Convenience constructor for :class:`DesignComparison`."""
    return DesignComparison(candidate=candidate, baseline=baseline)
