"""Design-space exploration over arrangement families and chiplet counts.

The paper's motivation is that hand-optimising the arrangement becomes
infeasible beyond a few tens of chiplets.  The explorer automates the
choice: it evaluates every candidate design under the paper's methodology
and ranks them by a configurable objective (zero-load latency, saturation
throughput, diameter, bisection bandwidth) or reports the Pareto front of
the latency / throughput trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.arrangements.base import ArrangementKind
from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.core.parallel import ProgressCallback, is_inline, parallel_map
from repro.linkmodel.parameters import EvaluationParameters
from repro.noc.engine import DEFAULT_ENGINE
from repro.utils.validation import check_in_choices
from repro.workloads import (
    available_mappers,
    available_workloads,
    effective_num_tasks,
    evaluate_mapping,
    make_workload,
    map_workload,
)

#: Objectives available to :meth:`DesignSpaceExplorer.rank`.  Each maps a
#: record to a value where *smaller is better*; they read the metrics
#: cached on the record, so ranking never recomputes anything.
_OBJECTIVES: dict[str, Callable[["ExplorationRecord"], float]] = {
    "latency": lambda record: record.zero_load_latency_cycles,
    "throughput": lambda record: -record.saturation_throughput_tbps,
    "diameter": lambda record: float(record.diameter),
    "bisection": lambda record: -record.bisection_bandwidth,
}


@dataclass(frozen=True)
class ExplorationRecord:
    """One evaluated candidate design with its headline metrics."""

    design: ChipletDesign
    zero_load_latency_cycles: float
    saturation_throughput_tbps: float
    diameter: int
    bisection_bandwidth: float

    @property
    def label(self) -> str:
        """Label of the underlying design."""
        return self.design.label


@dataclass(frozen=True)
class WorkloadExplorationRecord:
    """One (arrangement, workload, mapper) candidate with its mapping cost.

    The cost metrics are the static ones of
    :func:`repro.workloads.mapping.evaluate_mapping` — no simulation is
    involved, so whole (kind x count x workload x mapper) grids rank in
    milliseconds; promote interesting points to the trace-driven sweep
    (:meth:`ParallelSweepRunner.workload_grid
    <repro.core.parallel.ParallelSweepRunner.workload_grid>`) afterwards.
    """

    kind: str
    num_chiplets: int
    workload: str
    mapper: str
    num_tasks: int
    weighted_hop_count: float
    max_link_load: float
    local_traffic_fraction: float

    @property
    def label(self) -> str:
        """Human-readable candidate label."""
        return f"{self.kind}-{self.num_chiplets} [{self.workload}/{self.mapper}]"


#: Objectives for :meth:`DesignSpaceExplorer.rank_workloads` (smaller is
#: better, matching the design-objective convention above).
_WORKLOAD_OBJECTIVES: dict[str, Callable[[WorkloadExplorationRecord], float]] = {
    "weighted-hops": lambda record: record.weighted_hop_count,
    "max-link-load": lambda record: record.max_link_load,
}

#: Objectives for :meth:`DesignSpaceExplorer.rank_resilience` (smaller is
#: better).  ``latency-degradation`` ranks by how little the mean latency
#: inflates relative to the healthy baseline; ``throughput-retention`` by
#: how much of the healthy accepted throughput survives.
_RESILIENCE_OBJECTIVES: dict[str, Callable[..., float]] = {
    "latency-degradation": lambda summary: summary.latency_vs_baseline,
    "throughput-retention": lambda summary: -summary.throughput_vs_baseline,
}


def _evaluate_workload_candidate(
    item: tuple[str, int, str, str, int],
) -> tuple[float, float, float]:
    """Static mapping cost of one workload candidate (worker-process safe)."""
    kind_name, count, workload_kind, mapper, num_tasks = item
    graph = make_arrangement(kind_name, count).graph
    workload = make_workload(workload_kind, num_tasks=num_tasks)
    mapping = map_workload(mapper, workload, graph)
    cost = evaluate_mapping(workload, mapping, graph)
    return cost.weighted_hop_count, cost.max_link_load, cost.local_traffic_fraction


def _evaluate_candidate(
    item: tuple[str, int, EvaluationParameters, bool],
) -> tuple[ChipletDesign | None, tuple[float, float, int, float]]:
    """Headline metrics of one candidate (runs inside a worker process).

    Only the plain metric values cross the process boundary; the design is
    returned alongside them only when ``ship_design`` is set, which the
    explorer does exclusively on the inline (``jobs=1``) path where no
    boundary exists — parallel runs rebuild a deferred facade instead, so
    records stay cheap to ship regardless of the arrangement size.
    """
    kind_name, count, parameters, ship_design = item
    design = ChipletDesign.create(kind_name, count, parameters=parameters)
    metrics = (
        design.zero_load_latency(),
        design.saturation_throughput_tbps(),
        design.diameter,
        design.bisection_bandwidth,
    )
    return (design if ship_design else None), metrics


class DesignSpaceExplorer:
    """Evaluate and rank designs across kinds and chiplet counts.

    Parameters
    ----------
    kinds:
        Arrangement families to consider (default: grid, brickwall,
        HexaMesh — the three the paper compares; any catalog kind,
        including the honeycomb, is accepted).
    parameters:
        Architectural parameters shared by all candidates.
    jobs:
        Default number of worker processes for :meth:`evaluate` (may be
        overridden per call).
    """

    def __init__(
        self,
        kinds: Sequence[ArrangementKind | str] = ("grid", "brickwall", "hexamesh"),
        *,
        parameters: EvaluationParameters | None = None,
        jobs: int = 1,
    ) -> None:
        self._kinds = [ArrangementKind.from_name(kind) for kind in kinds]
        if not self._kinds:
            raise ValueError("the explorer needs at least one arrangement kind")
        self._parameters = parameters if parameters is not None else EvaluationParameters()
        self._jobs = jobs
        self._records: list[ExplorationRecord] = []
        self._workload_records: list[WorkloadExplorationRecord] = []
        self._resilience_records: list = []

    @property
    def records(self) -> list[ExplorationRecord]:
        """All records evaluated so far."""
        return list(self._records)

    @property
    def workload_records(self) -> list[WorkloadExplorationRecord]:
        """All workload-mapping records evaluated so far."""
        return list(self._workload_records)

    @property
    def resilience_records(self) -> list:
        """All resilience summaries evaluated so far.

        Items are :class:`repro.resilience.sweep.ResilienceSummary`
        instances (annotated loosely to keep the resilience package a
        lazy import of :meth:`evaluate_resilience`).
        """
        return list(self._resilience_records)

    def evaluate(
        self,
        chiplet_counts: Iterable[int],
        *,
        jobs: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> list[ExplorationRecord]:
        """Evaluate every (kind, chiplet count) candidate and cache the records.

        With ``jobs > 1`` candidates are fanned across worker processes via
        :func:`repro.core.parallel.parallel_map`; records come back in the
        same (count-major, kind-minor) order as the serial path.  Each
        candidate's arrangement is built exactly once: inline runs reuse
        the evaluated design directly, parallel runs attach a deferred
        design that regenerates the arrangement only if it is accessed.
        """
        jobs = self._jobs if jobs is None else jobs
        grid = [
            (kind.value, count)
            for count in chiplet_counts
            for kind in self._kinds
        ]
        # The design is shipped exactly when parallel_map runs inline (no
        # process boundary) — the predicate is owned by repro.core.parallel
        # so the two decisions cannot drift apart.
        inline = is_inline(jobs, len(grid))
        candidates = [
            (kind_name, count, self._parameters, inline)
            for kind_name, count in grid
        ]
        outcomes = parallel_map(
            _evaluate_candidate, candidates, jobs=jobs, progress=progress
        )
        new_records: list[ExplorationRecord] = []
        for (kind_name, count, _, _), (design, values) in zip(candidates, outcomes):
            latency, throughput, diameter_value, bisection = values
            if design is None:
                design = ChipletDesign.create(
                    kind_name, count, parameters=self._parameters, defer=True
                )
            new_records.append(
                ExplorationRecord(
                    design=design,
                    zero_load_latency_cycles=latency,
                    saturation_throughput_tbps=throughput,
                    diameter=diameter_value,
                    bisection_bandwidth=bisection,
                )
            )
        self._records.extend(new_records)
        return new_records

    def evaluate_workloads(
        self,
        chiplet_counts: Iterable[int],
        workloads: Sequence[str] = ("dnn-pipeline",),
        *,
        mappers: Sequence[str] = ("partition",),
        num_tasks: int | None = None,
        jobs: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> list[WorkloadExplorationRecord]:
        """Score every (kind, count, workload, mapper) candidate statically.

        Each candidate's workload is sized through
        :func:`repro.workloads.effective_num_tasks` (the same helper the
        trace-driven sweep grid uses, so static ranking and simulation
        always describe identical workloads) and mapped onto the
        arrangement; the records carry the static cost metrics and are
        cached on the explorer for :meth:`rank_workloads`.  ``jobs > 1``
        fans candidates across worker processes via
        :func:`repro.core.parallel.parallel_map`.
        """
        jobs = self._jobs if jobs is None else jobs
        for workload in workloads:
            check_in_choices("workload", workload, available_workloads())
        for mapper in mappers:
            check_in_choices("mapper", mapper, available_mappers())
        candidates = [
            (
                kind.value,
                count,
                workload,
                mapper,
                effective_num_tasks(workload, num_tasks, count),
            )
            for count in chiplet_counts
            for kind in self._kinds
            for workload in workloads
            for mapper in mappers
        ]
        costs = parallel_map(
            _evaluate_workload_candidate, candidates, jobs=jobs, progress=progress
        )
        new_records = [
            WorkloadExplorationRecord(
                kind=kind_name,
                num_chiplets=count,
                workload=workload,
                mapper=mapper,
                num_tasks=tasks,
                weighted_hop_count=weighted_hops,
                max_link_load=max_link,
                local_traffic_fraction=local_fraction,
            )
            for (kind_name, count, workload, mapper, tasks),
                (weighted_hops, max_link, local_fraction)
            in zip(candidates, costs)
        ]
        self._workload_records.extend(new_records)
        return new_records

    def rank_workloads(
        self, objective: str = "weighted-hops"
    ) -> list[WorkloadExplorationRecord]:
        """All workload records sorted from best to worst for ``objective``."""
        check_in_choices("objective", objective, sorted(_WORKLOAD_OBJECTIVES))
        return sorted(self._workload_records, key=_WORKLOAD_OBJECTIVES[objective])

    def evaluate_resilience(
        self,
        num_chiplets: int,
        failure_counts: Iterable[int] = (0, 1, 2, 4),
        *,
        samples: int = 2,
        fault_type: str = "link",
        injection_rate: float = 0.1,
        traffic: str = "uniform",
        config=None,
        jobs: int | None = None,
        cache_dir: str | None = None,
        engine: str = DEFAULT_ENGINE,
        batch: bool = False,
        progress: ProgressCallback | None = None,
    ) -> list:
        """Simulate degradation curves of every kind under injected faults.

        Runs :func:`repro.resilience.sweep.run_resilience_sweep` over the
        explorer's arrangement kinds at ``num_chiplets`` chiplets: for
        every failure count, ``samples`` survivable fault sets are drawn
        deterministically (yield-style seeding via SHA-256), simulated
        cycle-accurately on the degraded topology, and aggregated into
        per-kind :class:`~repro.resilience.sweep.ResilienceSummary`
        records, which are cached on the explorer for
        :meth:`rank_resilience`.  Include ``0`` in ``failure_counts`` so
        the ``*_vs_baseline`` ratios are anchored.  ``batch=True`` shares
        each fault arrangement's degraded-topology build across its
        points (bit-identical, just faster).
        """
        # Imported lazily: repro.core is imported by repro.resilience.
        from repro.resilience.sweep import run_resilience_sweep

        jobs = self._jobs if jobs is None else jobs
        result = run_resilience_sweep(
            [kind.value for kind in self._kinds],
            num_chiplets,
            failure_counts,
            samples=samples,
            fault_type=fault_type,
            config=config,
            injection_rate=injection_rate,
            traffic=traffic,
            jobs=jobs,
            cache_dir=cache_dir,
            engine=engine,
            batch=batch,
            progress=progress,
        )
        self._resilience_records.extend(result.summaries)
        return list(result.summaries)

    def rank_resilience(self, objective: str = "latency-degradation") -> list:
        """Faulted resilience summaries sorted from most to least graceful.

        Only summaries with at least one failure participate (the healthy
        baselines rank trivially at ratio 1.0); summaries whose ratio is
        ``NaN`` (no baseline anchor in the sweep) sort last.
        """
        check_in_choices("objective", objective, sorted(_RESILIENCE_OBJECTIVES))
        key = _RESILIENCE_OBJECTIVES[objective]

        def sort_key(summary) -> tuple[bool, float]:
            value = key(summary)
            return (value != value, value)  # NaN-last, then ascending

        return sorted(
            (s for s in self._resilience_records if s.num_failures > 0),
            key=sort_key,
        )

    def spot_check(
        self,
        record: ExplorationRecord,
        *,
        injection_rate: float = 0.02,
        rates: Sequence[float] | None = None,
        config=None,
        engine: str = DEFAULT_ENGINE,
        batch: bool = True,
        cache_dir: str | None = None,
    ):
        """Cycle-accurately validate one explored record.

        The explorer's own metrics are analytical; this runs the
        cycle-accurate simulator on the record's design (any cycle-loop
        engine — ``"active"``, ``"vectorized"`` or ``"legacy"``, all
        bit-identical) so interesting candidates can be confirmed the same
        way the paper spot-checks its Figure 7 points with BookSim2.

        With ``rates`` the spot check becomes a whole latency/throughput
        curve: an injection sweep over the design, returned as an
        :class:`~repro.noc.sweep.InjectionSweepResult`.  ``batch``
        (default on) evaluates all points of the curve over one shared
        topology / routing / flat-state build — bit-identical to
        per-point runs, typically severalfold faster.  ``cache_dir``
        points the curve path at a persistent result store
        (:mod:`repro.store`), so spot checks share results with every
        other execution path using the same store.
        """
        if rates is not None:
            # Imported lazily to keep repro.core free of a hard noc.sweep
            # dependency at import time.
            from repro.noc.sweep import run_injection_sweep

            design = record.design
            return run_injection_sweep(
                design.arrangement.graph,
                design.simulation_config(config),
                rates=rates,
                engine=engine,
                batch=batch,
                cache_dir=cache_dir,
            )
        return record.design.simulate(
            injection_rate=injection_rate, config=config, engine=engine
        )

    def rank(self, objective: str = "latency") -> list[ExplorationRecord]:
        """All evaluated records sorted from best to worst for ``objective``."""
        check_in_choices("objective", objective, sorted(_OBJECTIVES))
        return sorted(self._records, key=_OBJECTIVES[objective])

    def best(self, objective: str = "latency") -> ExplorationRecord:
        """The best record for the given objective."""
        ranked = self.rank(objective)
        if not ranked:
            raise ValueError("no designs have been evaluated yet")
        return ranked[0]

    def best_for_count(self, num_chiplets: int, objective: str = "latency") -> ExplorationRecord:
        """The best record among candidates with exactly ``num_chiplets`` chiplets."""
        candidates = [
            record for record in self.rank(objective)
            if record.design.num_chiplets == num_chiplets
        ]
        if not candidates:
            raise ValueError(f"no evaluated designs with {num_chiplets} chiplets")
        return candidates[0]

    def pareto_front(self) -> list[ExplorationRecord]:
        """Latency / throughput Pareto-optimal records.

        A record is Pareto-optimal when no other record has both lower
        zero-load latency and higher saturation throughput.
        """
        front: list[ExplorationRecord] = []
        for candidate in self._records:
            dominated = False
            for other in self._records:
                if other is candidate:
                    continue
                better_latency = (
                    other.zero_load_latency_cycles <= candidate.zero_load_latency_cycles
                )
                better_throughput = (
                    other.saturation_throughput_tbps >= candidate.saturation_throughput_tbps
                )
                strictly_better = (
                    other.zero_load_latency_cycles < candidate.zero_load_latency_cycles
                    or other.saturation_throughput_tbps > candidate.saturation_throughput_tbps
                )
                if better_latency and better_throughput and strictly_better:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda record: record.zero_load_latency_cycles)
