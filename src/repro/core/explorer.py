"""Design-space exploration over arrangement families and chiplet counts.

The paper's motivation is that hand-optimising the arrangement becomes
infeasible beyond a few tens of chiplets.  The explorer automates the
choice: it evaluates every candidate design under the paper's methodology
and ranks them by a configurable objective (zero-load latency, saturation
throughput, diameter, bisection bandwidth) or reports the Pareto front of
the latency / throughput trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.arrangements.base import ArrangementKind
from repro.core.design import ChipletDesign
from repro.core.parallel import ProgressCallback, parallel_map
from repro.linkmodel.parameters import EvaluationParameters
from repro.utils.validation import check_in_choices

#: Objectives available to :meth:`DesignSpaceExplorer.rank`.  Each maps a
#: record to a value where *smaller is better*; they read the metrics
#: cached on the record, so ranking never recomputes anything.
_OBJECTIVES: dict[str, Callable[["ExplorationRecord"], float]] = {
    "latency": lambda record: record.zero_load_latency_cycles,
    "throughput": lambda record: -record.saturation_throughput_tbps,
    "diameter": lambda record: float(record.diameter),
    "bisection": lambda record: -record.bisection_bandwidth,
}


@dataclass(frozen=True)
class ExplorationRecord:
    """One evaluated candidate design with its headline metrics."""

    design: ChipletDesign
    zero_load_latency_cycles: float
    saturation_throughput_tbps: float
    diameter: int
    bisection_bandwidth: float

    @property
    def label(self) -> str:
        """Label of the underlying design."""
        return self.design.label


def _evaluate_candidate(
    item: tuple[str, int, EvaluationParameters, bool],
) -> tuple[ChipletDesign | None, tuple[float, float, int, float]]:
    """Headline metrics of one candidate (runs inside a worker process).

    Only the plain metric values cross the process boundary; the design is
    returned alongside them only when ``ship_design`` is set, which the
    explorer does exclusively on the inline (``jobs=1``) path where no
    boundary exists — parallel runs rebuild a deferred facade instead, so
    records stay cheap to ship regardless of the arrangement size.
    """
    kind_name, count, parameters, ship_design = item
    design = ChipletDesign.create(kind_name, count, parameters=parameters)
    metrics = (
        design.zero_load_latency(),
        design.saturation_throughput_tbps(),
        design.diameter,
        design.bisection_bandwidth,
    )
    return (design if ship_design else None), metrics


class DesignSpaceExplorer:
    """Evaluate and rank designs across kinds and chiplet counts.

    Parameters
    ----------
    kinds:
        Arrangement families to consider (default: grid, brickwall,
        HexaMesh — the three the paper compares; any catalog kind,
        including the honeycomb, is accepted).
    parameters:
        Architectural parameters shared by all candidates.
    jobs:
        Default number of worker processes for :meth:`evaluate` (may be
        overridden per call).
    """

    def __init__(
        self,
        kinds: Sequence[ArrangementKind | str] = ("grid", "brickwall", "hexamesh"),
        *,
        parameters: EvaluationParameters | None = None,
        jobs: int = 1,
    ) -> None:
        self._kinds = [ArrangementKind.from_name(kind) for kind in kinds]
        if not self._kinds:
            raise ValueError("the explorer needs at least one arrangement kind")
        self._parameters = parameters if parameters is not None else EvaluationParameters()
        self._jobs = jobs
        self._records: list[ExplorationRecord] = []

    @property
    def records(self) -> list[ExplorationRecord]:
        """All records evaluated so far."""
        return list(self._records)

    def evaluate(
        self,
        chiplet_counts: Iterable[int],
        *,
        jobs: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> list[ExplorationRecord]:
        """Evaluate every (kind, chiplet count) candidate and cache the records.

        With ``jobs > 1`` candidates are fanned across worker processes via
        :func:`repro.core.parallel.parallel_map`; records come back in the
        same (count-major, kind-minor) order as the serial path.  Each
        candidate's arrangement is built exactly once: inline runs reuse
        the evaluated design directly, parallel runs attach a deferred
        design that regenerates the arrangement only if it is accessed.
        """
        jobs = self._jobs if jobs is None else jobs
        grid = [
            (kind.value, count)
            for count in chiplet_counts
            for kind in self._kinds
        ]
        # Mirrors parallel_map's inline fallback (jobs <= 1 OR a single
        # item), so the design is shipped exactly when no boundary exists.
        inline = jobs <= 1 or len(grid) <= 1
        candidates = [
            (kind_name, count, self._parameters, inline)
            for kind_name, count in grid
        ]
        outcomes = parallel_map(
            _evaluate_candidate, candidates, jobs=jobs, progress=progress
        )
        new_records: list[ExplorationRecord] = []
        for (kind_name, count, _, _), (design, values) in zip(candidates, outcomes):
            latency, throughput, diameter_value, bisection = values
            if design is None:
                design = ChipletDesign.create(
                    kind_name, count, parameters=self._parameters, defer=True
                )
            new_records.append(
                ExplorationRecord(
                    design=design,
                    zero_load_latency_cycles=latency,
                    saturation_throughput_tbps=throughput,
                    diameter=diameter_value,
                    bisection_bandwidth=bisection,
                )
            )
        self._records.extend(new_records)
        return new_records

    def rank(self, objective: str = "latency") -> list[ExplorationRecord]:
        """All evaluated records sorted from best to worst for ``objective``."""
        check_in_choices("objective", objective, sorted(_OBJECTIVES))
        return sorted(self._records, key=_OBJECTIVES[objective])

    def best(self, objective: str = "latency") -> ExplorationRecord:
        """The best record for the given objective."""
        ranked = self.rank(objective)
        if not ranked:
            raise ValueError("no designs have been evaluated yet")
        return ranked[0]

    def best_for_count(self, num_chiplets: int, objective: str = "latency") -> ExplorationRecord:
        """The best record among candidates with exactly ``num_chiplets`` chiplets."""
        candidates = [
            record for record in self.rank(objective)
            if record.design.num_chiplets == num_chiplets
        ]
        if not candidates:
            raise ValueError(f"no evaluated designs with {num_chiplets} chiplets")
        return candidates[0]

    def pareto_front(self) -> list[ExplorationRecord]:
        """Latency / throughput Pareto-optimal records.

        A record is Pareto-optimal when no other record has both lower
        zero-load latency and higher saturation throughput.
        """
        front: list[ExplorationRecord] = []
        for candidate in self._records:
            dominated = False
            for other in self._records:
                if other is candidate:
                    continue
                better_latency = (
                    other.zero_load_latency_cycles <= candidate.zero_load_latency_cycles
                )
                better_throughput = (
                    other.saturation_throughput_tbps >= candidate.saturation_throughput_tbps
                )
                strictly_better = (
                    other.zero_load_latency_cycles < candidate.zero_load_latency_cycles
                    or other.saturation_throughput_tbps > candidate.saturation_throughput_tbps
                )
                if better_latency and better_throughput and strictly_better:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda record: record.zero_load_latency_cycles)
