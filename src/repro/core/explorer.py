"""Design-space exploration over arrangement families and chiplet counts.

The paper's motivation is that hand-optimising the arrangement becomes
infeasible beyond a few tens of chiplets.  The explorer automates the
choice: it evaluates every candidate design under the paper's methodology
and ranks them by a configurable objective (zero-load latency, saturation
throughput, diameter, bisection bandwidth) or reports the Pareto front of
the latency / throughput trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.arrangements.base import ArrangementKind
from repro.core.design import ChipletDesign
from repro.linkmodel.parameters import EvaluationParameters
from repro.utils.validation import check_in_choices

#: Objectives available to :meth:`DesignSpaceExplorer.rank`.  Each maps a
#: design to a value where *smaller is better*.
_OBJECTIVES: dict[str, Callable[[ChipletDesign], float]] = {
    "latency": lambda design: design.zero_load_latency(),
    "throughput": lambda design: -design.saturation_throughput_tbps(),
    "diameter": lambda design: float(design.diameter),
    "bisection": lambda design: -design.bisection_bandwidth,
}


@dataclass(frozen=True)
class ExplorationRecord:
    """One evaluated candidate design with its headline metrics."""

    design: ChipletDesign
    zero_load_latency_cycles: float
    saturation_throughput_tbps: float
    diameter: int
    bisection_bandwidth: float

    @property
    def label(self) -> str:
        """Label of the underlying design."""
        return self.design.label


class DesignSpaceExplorer:
    """Evaluate and rank designs across kinds and chiplet counts.

    Parameters
    ----------
    kinds:
        Arrangement families to consider (default: grid, brickwall,
        HexaMesh — the three the paper compares).
    parameters:
        Architectural parameters shared by all candidates.
    """

    def __init__(
        self,
        kinds: Sequence[ArrangementKind | str] = ("grid", "brickwall", "hexamesh"),
        *,
        parameters: EvaluationParameters | None = None,
    ) -> None:
        self._kinds = [ArrangementKind.from_name(kind) for kind in kinds]
        if not self._kinds:
            raise ValueError("the explorer needs at least one arrangement kind")
        self._parameters = parameters if parameters is not None else EvaluationParameters()
        self._records: list[ExplorationRecord] = []

    @property
    def records(self) -> list[ExplorationRecord]:
        """All records evaluated so far."""
        return list(self._records)

    def evaluate(self, chiplet_counts: Iterable[int]) -> list[ExplorationRecord]:
        """Evaluate every (kind, chiplet count) candidate and cache the records."""
        new_records: list[ExplorationRecord] = []
        for count in chiplet_counts:
            for kind in self._kinds:
                design = ChipletDesign.create(kind, count, parameters=self._parameters)
                record = ExplorationRecord(
                    design=design,
                    zero_load_latency_cycles=design.zero_load_latency(),
                    saturation_throughput_tbps=design.saturation_throughput_tbps(),
                    diameter=design.diameter,
                    bisection_bandwidth=design.bisection_bandwidth,
                )
                new_records.append(record)
        self._records.extend(new_records)
        return new_records

    def rank(self, objective: str = "latency") -> list[ExplorationRecord]:
        """All evaluated records sorted from best to worst for ``objective``."""
        check_in_choices("objective", objective, sorted(_OBJECTIVES))
        key = _OBJECTIVES[objective]
        return sorted(self._records, key=lambda record: key(record.design))

    def best(self, objective: str = "latency") -> ExplorationRecord:
        """The best record for the given objective."""
        ranked = self.rank(objective)
        if not ranked:
            raise ValueError("no designs have been evaluated yet")
        return ranked[0]

    def best_for_count(self, num_chiplets: int, objective: str = "latency") -> ExplorationRecord:
        """The best record among candidates with exactly ``num_chiplets`` chiplets."""
        candidates = [
            record for record in self.rank(objective)
            if record.design.num_chiplets == num_chiplets
        ]
        if not candidates:
            raise ValueError(f"no evaluated designs with {num_chiplets} chiplets")
        return candidates[0]

    def pareto_front(self) -> list[ExplorationRecord]:
        """Latency / throughput Pareto-optimal records.

        A record is Pareto-optimal when no other record has both lower
        zero-load latency and higher saturation throughput.
        """
        front: list[ExplorationRecord] = []
        for candidate in self._records:
            dominated = False
            for other in self._records:
                if other is candidate:
                    continue
                better_latency = (
                    other.zero_load_latency_cycles <= candidate.zero_load_latency_cycles
                )
                better_throughput = (
                    other.saturation_throughput_tbps >= candidate.saturation_throughput_tbps
                )
                strictly_better = (
                    other.zero_load_latency_cycles < candidate.zero_load_latency_cycles
                    or other.saturation_throughput_tbps > candidate.saturation_throughput_tbps
                )
                if better_latency and better_throughput and strictly_better:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda record: record.zero_load_latency_cycles)
