"""Parallel design-space sweeps over multiprocessing workers.

This module is the fan-out layer of the exploration subsystem: it takes a
grid of simulation candidates — ``(kind, chiplet count, injection rate,
traffic pattern)`` tuples — and evaluates them across worker processes
with chunked dispatch, deterministic per-candidate seeding, an on-disk
result cache and a progress callback.

Invariants the rest of the code base relies on:

* **Determinism.**  A candidate's seed is derived solely from the base
  seed and the candidate's identity (via SHA-256, never Python's
  process-randomised ``hash``), so ``jobs=1`` and ``jobs=N`` runs return
  identical records in identical order, across processes and machines.
* **Cache transparency.**  Cached results live in the persistent
  content-addressed result store (:mod:`repro.store`), keyed by a hash of
  the full candidate + simulation configuration, so a cache hit returns
  exactly what the simulation would have produced; the cycle-loop engines
  (legacy, active-set, vectorized) are bit-identical by construction (see
  :mod:`repro.noc.engine` and :mod:`repro.noc.vec_engine`), so cached
  results are shared between them — and between processes, runs and
  machines sharing one store directory.
* **Order preservation.**  Workers may finish out of order (unordered
  chunked dispatch keeps them busy), but results are always returned in
  candidate order.

:func:`parallel_map` is the underlying generic helper; the
:class:`DesignSpaceExplorer <repro.core.explorer.DesignSpaceExplorer>`,
:func:`run_figure7 <repro.evaluation.performance.run_figure7>` and
:func:`run_injection_sweep <repro.noc.sweep.run_injection_sweep>` all fan
out through it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
from dataclasses import asdict, dataclass, field, replace
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.arrangements.factory import make_arrangement
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig, config_identity_dict
from repro.noc.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.noc.faults import FaultedTopologyError, FaultSet
from repro.noc.simulator import BatchPoint, NocSimulator, SimulationResult
from repro.noc.stats import LatencyStatistics, ThroughputStatistics
from repro.store import ResultStore, result_key
from repro.utils.mathutils import mix_seed
from repro.utils.validation import check_fraction, check_in_choices, check_positive_int
from repro.workloads import (
    effective_num_tasks,
    make_workload,
    map_workload,
    trace_traffic_for,
)

#: Progress callbacks receive ``(completed, total, latest)`` where
#: ``latest`` is the item that just finished (a :class:`SweepRecord` for
#: :class:`ParallelSweepRunner`, the mapped value for :func:`parallel_map`).
ProgressCallback = Callable[[int, int, Any], None]


# ---------------------------------------------------------------------------
# Generic ordered parallel map with chunked dispatch
# ---------------------------------------------------------------------------


def _apply_chunk(payload: tuple[Callable[[Any], Any], list[tuple[int, Any]]]):
    """Worker entry point: apply ``function`` to an indexed chunk of items."""
    function, chunk = payload
    return [(index, function(item)) for index, item in chunk]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits the loaded modules) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def default_chunk_size(num_items: int, jobs: int) -> int:
    """Chunk size balancing dispatch overhead against load-balancing slack.

    Aim for roughly four chunks per worker so that slow candidates (large
    networks, saturated loads) can be compensated by idle workers picking
    up remaining chunks.
    """
    return max(1, num_items // max(1, jobs * 4))


def is_inline(jobs: int, num_items: int) -> bool:
    """Whether :func:`parallel_map` will run inline (no worker pool).

    Single-job runs and single-item grids never cross a process boundary.
    Callers that need to know whether values will be shipped between
    processes (e.g. the explorer deciding whether to return heavyweight
    designs) must use this exact predicate so they cannot drift from the
    dispatch decision below.
    """
    return jobs <= 1 or num_items <= 1


def parallel_map(
    function: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[Any]:
    """Apply ``function`` to every item, optionally across worker processes.

    Results are returned in input order regardless of completion order.
    ``jobs`` must be >= 1; with ``jobs=1`` (or fewer than two items)
    everything runs inline in the calling process, which keeps single-job
    runs trivially identical to the parallel path and friendly to
    debuggers and profilers.
    """
    work = list(items)
    total = len(work)
    check_positive_int("jobs", jobs)
    if is_inline(jobs, total):
        results: list[Any] = []
        for index, item in enumerate(work):
            value = function(item)
            results.append(value)
            if progress is not None:
                progress(index + 1, total, value)
        return results

    size = chunk_size if chunk_size is not None else default_chunk_size(total, jobs)
    check_positive_int("chunk_size", size)
    indexed = list(enumerate(work))
    chunks = [indexed[start:start + size] for start in range(0, total, size)]

    ordered: list[Any] = [None] * total
    completed = 0
    context = _pool_context()
    with context.Pool(processes=jobs) as pool:
        payloads = [(function, chunk) for chunk in chunks]
        for chunk_results in pool.imap_unordered(_apply_chunk, payloads):
            for index, value in chunk_results:
                ordered[index] = value
                completed += 1
                if progress is not None:
                    progress(completed, total, value)
    return ordered


# ---------------------------------------------------------------------------
# Sweep candidates and records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCandidate:
    """One point of the exploration grid.

    Attributes
    ----------
    kind:
        Arrangement family name (``"grid"``, ``"brickwall"``,
        ``"honeycomb"``, ``"hexamesh"``) — or ``"custom"`` when
        ``graph_edges`` carries an explicit topology.
    num_chiplets:
        Chiplet count (the number of graph nodes for custom topologies).
    injection_rate:
        Offered load in flits per cycle per endpoint.
    traffic:
        Traffic pattern name (resolved per worker via
        :func:`repro.noc.traffic.make_traffic_pattern`).
    regularity:
        Optional regularity class override for the arrangement generator.
    graph_edges:
        Explicit edge list for custom topologies; when set, workers build
        the :class:`ChipGraph` directly instead of generating the
        arrangement.
    workload:
        Optional application-workload kind (``"dnn-pipeline"``, ...); when
        set, the candidate runs trace-driven — ``traffic`` is ignored and
        workers build a :class:`~repro.workloads.trace.TraceTraffic` from
        the mapped workload instead.
    workload_params:
        Sorted ``(name, value)`` pairs forwarded to the workload generator
        (``(("num_tasks", 37),)``); part of the candidate identity.
    mapper:
        Task-to-chiplet mapper name (defaults to ``"partition"`` when a
        workload is set).
    failed_links / failed_routers:
        Optional fault injection (see :class:`repro.noc.faults.FaultSet`):
        the candidate simulates the *degraded* topology — failed routers
        and links removed, survivors relabeled — so routing tables and
        every engine rebuild automatically.  Normalised at construction;
        they join :meth:`key_dict` only when non-empty, so the cache keys
        and derived seeds of healthy candidates are unchanged.
    """

    kind: str
    num_chiplets: int
    injection_rate: float
    traffic: str = "uniform"
    regularity: str | None = None
    graph_edges: tuple[tuple[int, int], ...] | None = None
    workload: str | None = None
    workload_params: tuple[tuple[str, Any], ...] | None = None
    mapper: str | None = None
    failed_links: tuple[tuple[int, int], ...] = ()
    failed_routers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_positive_int("num_chiplets", self.num_chiplets)
        check_fraction("injection_rate", self.injection_rate)
        if self.workload is None and (
            self.workload_params is not None or self.mapper is not None
        ):
            raise ValueError(
                "workload_params / mapper are only meaningful together with "
                "a workload kind"
            )
        # Normalising through FaultSet canonicalises the tuples (sorted,
        # deduplicated, pairs ordered) and rejects malformed fault specs,
        # so equal fault sets always produce equal candidates, seeds and
        # cache keys.
        faults = FaultSet(
            failed_links=self.failed_links, failed_routers=self.failed_routers
        )
        object.__setattr__(self, "failed_links", faults.failed_links)
        object.__setattr__(self, "failed_routers", faults.failed_routers)

    @property
    def fault_set(self) -> FaultSet:
        """The candidate's fault set (empty for healthy candidates)."""
        return FaultSet(
            failed_links=self.failed_links, failed_routers=self.failed_routers
        )

    @property
    def label(self) -> str:
        """Human-readable candidate label for progress reporting."""
        faults = self.fault_set
        suffix = "" if faults.is_empty else f" !{faults.label}"
        if self.workload is not None:
            return (
                f"{self.kind}-{self.num_chiplets} "
                f"@{self.injection_rate:g} [{self.workload}/{self.effective_mapper}]"
                f"{suffix}"
            )
        return (
            f"{self.kind}-{self.num_chiplets} "
            f"@{self.injection_rate:g} [{self.traffic}]{suffix}"
        )

    @property
    def effective_mapper(self) -> str:
        """The mapper a workload candidate runs with (default: partition)."""
        return self.mapper if self.mapper is not None else "partition"

    def key_dict(self) -> dict[str, Any]:
        """Canonical JSON-able identity used for seeding and cache keys.

        Workload fields join the identity only when a workload is set, so
        the keys (and hence the derived seeds and cache entries) of plain
        synthetic-traffic candidates are unchanged from earlier versions.
        """
        key = {
            "kind": self.kind,
            "num_chiplets": self.num_chiplets,
            "injection_rate": repr(self.injection_rate),
            "traffic": self.traffic,
            "regularity": self.regularity,
            "graph_edges": [list(edge) for edge in self.graph_edges]
            if self.graph_edges is not None
            else None,
        }
        if self.workload is not None:
            key["workload"] = self.workload
            key["workload_params"] = (
                [[name, value] for name, value in self.workload_params]
                if self.workload_params is not None
                else None
            )
            key["mapper"] = self.effective_mapper
        if self.failed_links or self.failed_routers:
            # Fault fields join the identity only when present, keeping
            # the keys (and hence seeds / cache entries) of healthy
            # candidates unchanged from earlier versions.
            key.update(self.fault_set.key_dict())
        return key

    def batch_key(self) -> str:
        """Canonical identity of everything the candidate *shares* in a batch.

        Two candidates with equal batch keys differ at most in their
        injection rate, so one batched run can evaluate both over a single
        topology / routing-table / trace build
        (:meth:`repro.noc.simulator.NocSimulator.run_batch`).  Seeds stay
        per-(candidate, point): :func:`derive_candidate_seed` hashes the
        *full* identity including the rate, so batching can never change a
        point's RNG stream or outcome.
        """
        key = self.key_dict()
        del key["injection_rate"]
        return json.dumps(key, sort_keys=True)

    def build_graph(self) -> ChipGraph:
        """Materialise the candidate's topology graph (degraded if faulted).

        Raises :class:`repro.noc.faults.FaultedTopologyError` (annotated
        with the candidate label) when the fault set would disconnect the
        topology or isolate an endpoint's router — callers fail fast
        instead of simulating an unusable network.
        """
        if self.graph_edges is not None:
            base = ChipGraph(nodes=range(self.num_chiplets), edges=self.graph_edges)
        else:
            base = make_arrangement(self.kind, self.num_chiplets, self.regularity).graph
        faults = self.fault_set
        if faults.is_empty:
            return base
        try:
            return faults.apply(base).graph
        except FaultedTopologyError as error:
            raise FaultedTopologyError(f"candidate {self.label!r}: {error}") from error


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated candidate: the candidate, its seed and its result.

    ``wall_time_s`` is the simulation wall time of a freshly computed
    record (``None`` for cache hits) and, like ``from_cache``, is
    excluded from equality — records stay interchangeable between
    runners, job counts and cache states.
    """

    candidate: SweepCandidate
    seed: int
    result: SimulationResult
    from_cache: bool = field(default=False, compare=False)
    wall_time_s: float | None = field(default=None, compare=False)


def derive_candidate_seed(base_seed: int, candidate: SweepCandidate) -> int:
    """Deterministic per-candidate seed.

    Mixing a SHA-256 digest of the candidate identity into the base seed
    decorrelates the RNG streams of neighbouring grid points while staying
    reproducible across processes and machines (``PYTHONHASHSEED`` does
    not affect it).
    """
    key = json.dumps(candidate.key_dict(), sort_keys=True).encode("utf-8")
    # Seed 0 is fine for random.Random but mix_seed keeps seeds strictly
    # positive so the per-endpoint derivation in Network never collapses
    # to 0.
    return mix_seed(base_seed, key)


# ---------------------------------------------------------------------------
# Result (de)serialisation for the on-disk cache
# ---------------------------------------------------------------------------


def simulation_result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """Convert a :class:`SimulationResult` into a JSON-serialisable dict."""
    return {
        "injection_rate": result.injection_rate,
        "packet_latency": asdict(result.packet_latency),
        "network_latency": asdict(result.network_latency),
        "throughput": asdict(result.throughput),
        "average_hops": result.average_hops,
        "cycles_simulated": result.cycles_simulated,
        "num_routers": result.num_routers,
        "num_endpoints": result.num_endpoints,
        "measured_packets_created": result.measured_packets_created,
        "measured_packets_ejected": result.measured_packets_ejected,
    }


def simulation_result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from its dictionary form."""
    return SimulationResult(
        injection_rate=data["injection_rate"],
        packet_latency=LatencyStatistics(**data["packet_latency"]),
        network_latency=LatencyStatistics(**data["network_latency"]),
        throughput=ThroughputStatistics(**data["throughput"]),
        average_hops=data["average_hops"],
        cycles_simulated=data["cycles_simulated"],
        num_routers=data["num_routers"],
        num_endpoints=data["num_endpoints"],
        measured_packets_created=data["measured_packets_created"],
        measured_packets_ejected=data["measured_packets_ejected"],
    )


# ---------------------------------------------------------------------------
# Worker entry point
# ---------------------------------------------------------------------------


def resolve_workload_candidate(candidate: SweepCandidate, config: SimulationConfig):
    """Materialise the trace-driven setup of a workload candidate.

    Returns ``(graph, workload, mapping, traffic)``; deterministic for a
    given candidate identity, so workers and the coordinating process
    always agree on the trace.  Raises :class:`ValueError` for candidates
    without a workload.
    """
    if candidate.workload is None:
        raise ValueError(f"candidate {candidate.label!r} has no workload")
    graph = candidate.build_graph()
    params = dict(candidate.workload_params or ())
    workload = make_workload(candidate.workload, **params)
    mapping = map_workload(candidate.effective_mapper, workload, graph)
    traffic = trace_traffic_for(
        workload, mapping, endpoints_per_chiplet=config.endpoints_per_chiplet
    )
    return graph, workload, mapping, traffic


def _evaluate_batch_item(
    item: tuple[list[tuple[int, SweepCandidate, int]], SimulationConfig, str],
) -> list[tuple[int, SimulationResult, float, str]]:
    """Simulate one batch of same-structure candidates in a worker process.

    ``item`` carries ``(entries, base_config, engine)`` where every entry
    is ``(candidate_index, candidate, seed)`` and all candidates share a
    :meth:`SweepCandidate.batch_key`.  The batch builds the (degraded)
    topology, the routing tables and — for workload candidates — the
    trace exactly once and evaluates every injection-rate point through
    :meth:`NocSimulator.run_batch`, which is bit-identical to per-point
    evaluation under the per-(candidate, point) seeds.

    Each returned tuple carries the point's wall time (the first point of
    a batch honestly includes the shared build it triggered) and the
    engine that *actually* ran — ``vectorized`` falls back to ``active``
    under a staged router pipeline, and manifests must record the truth.
    """
    entries, config, engine = item
    effective_engine = NocSimulator.resolve_engine(engine, config)
    start = perf_counter()
    first = entries[0][1]
    if first.workload is not None:
        graph, _, _, traffic = resolve_workload_candidate(first, config)
    else:
        graph = first.build_graph()
        traffic = first.traffic
    points = [
        BatchPoint(candidate.injection_rate, seed=seed)
        for _, candidate, seed in entries
    ]
    walls: list[float] = []

    def _mark(_index: int, _network, _result) -> None:
        nonlocal start
        now = perf_counter()
        walls.append(now - start)
        start = now

    results = NocSimulator.run_batch(
        graph, points, config=config, traffic=traffic, engine=engine,
        on_point=_mark,
    )
    return [
        (index, result, wall, effective_engine)
        for (index, _, _), result, wall in zip(entries, results, walls)
    ]


def _evaluate_work_item(
    item: tuple[int, SweepCandidate, SimulationConfig, str],
) -> tuple[int, SimulationResult, float, str]:
    """Simulate one candidate (runs inside a worker process).

    The returned tuple carries the engine that *actually* ran
    (:attr:`NocSimulator.last_engine`) so manifests record the truth when
    ``vectorized`` falls back to ``active`` under a staged pipeline.
    """
    index, candidate, config, engine = item
    start = perf_counter()
    if candidate.workload is not None:
        graph, _, _, traffic = resolve_workload_candidate(candidate, config)
        simulator = NocSimulator(
            graph,
            config,
            injection_rate=candidate.injection_rate,
            traffic=traffic,
        )
        result = simulator.run(engine=engine)
    else:
        simulator = NocSimulator(
            candidate.build_graph(),
            config,
            injection_rate=candidate.injection_rate,
            traffic=candidate.traffic,
        )
        result = simulator.run(engine=engine)
    return index, result, perf_counter() - start, simulator.last_engine


# ---------------------------------------------------------------------------
# Cross-job in-flight deduplication
# ---------------------------------------------------------------------------


class _InFlightEntry:
    """One in-flight computation a follower can wait on."""

    __slots__ = ("event", "record")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: SweepRecord | None = None


class InFlightRegistry:
    """Single-flight registry deduplicating concurrent identical candidates.

    Concurrent sweeps (e.g. jobs of the exploration service sharing one
    process) frequently overlap: two jobs submitted at the same moment may
    both miss the store on the same ``result_key`` and simulate it twice.
    Runners handed a shared registry *claim* each store key before
    dispatching it; the first claimant becomes the **owner** and simulates
    as usual, every later claimant becomes a **follower** that waits for
    the owner's published record instead of simulating — one simulation,
    many subscribers.

    The registry is in-process (``threading``-based): it complements the
    cross-process safety of :class:`repro.store.ResultStore` (atomic
    publication, last-writer-wins) rather than replacing it.  Owners that
    fail or are cancelled release their claims, waking followers with no
    record; followers then fall back to the store (the owner may have
    published before dying) or simulate locally, so a crashed owner can
    never strand its subscribers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _InFlightEntry] = {}

    def claim(self, key: str) -> _InFlightEntry | None:
        """Claim ``key`` for computation.

        Returns ``None`` when the caller is now the owner (and must later
        :meth:`publish` or :meth:`release` the key), or the existing
        entry to wait on when another runner already owns it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = _InFlightEntry()
                return None
            return entry

    def publish(self, key: str, record: SweepRecord | None) -> None:
        """Fulfil ``key``: hand ``record`` to every waiting follower.

        Publishing ``None`` releases the claim without a result (owner
        failed); followers recover via the store or local evaluation.
        Unclaimed keys are ignored, so double publication is harmless.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is not None:
            entry.record = record
            entry.event.set()

    def release(self, keys: Iterable[str]) -> None:
        """Release unfulfilled claims (owner failed or was cancelled)."""
        for key in keys:
            self.publish(key, None)

    def in_flight(self) -> int:
        """Number of keys currently claimed (diagnostics only)."""
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class ParallelSweepRunner:
    """Fan a grid of simulation candidates across worker processes.

    Parameters
    ----------
    config:
        Base simulation configuration shared by every candidate (phase
        lengths, VC counts, ...).  Each candidate runs with this
        configuration and its own derived seed.
    jobs:
        Number of worker processes; ``1`` evaluates inline (identical
        results, no multiprocessing).
    cache_dir:
        Optional root directory of the persistent result store
        (:class:`repro.store.ResultStore`).  Entries are content-addressed
        by a SHA-256 hash of the candidate + configuration, so re-running
        an overlapping grid only simulates the new points — across runs,
        job counts, runners and concurrent processes sharing the
        directory.  Legacy flat cache directories are migrated in place
        the first time a store opens them.
    chunk_size:
        Candidates per dispatch unit; defaults to
        :func:`default_chunk_size`.
    engine:
        Cycle-loop engine passed to :meth:`NocSimulator.run`.
    derive_seeds:
        When ``True`` (default) every candidate gets a seed derived from
        ``config.seed`` and its identity via
        :func:`derive_candidate_seed`; when ``False`` all candidates use
        ``config.seed`` unchanged (used by the figure sweeps, whose serial
        reference path runs every point with the base seed).
    in_flight:
        Optional shared :class:`InFlightRegistry`.  When several runners
        in one process (e.g. concurrent service jobs) share a registry,
        overlapping cache misses are simulated exactly once — the first
        runner to claim a store key owns the simulation, the others wait
        for its record.  Requires ``cache_dir`` (claims are keyed by the
        store key); ignored for uncached runners.
    """

    def __init__(
        self,
        config: SimulationConfig | None = None,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        chunk_size: int | None = None,
        engine: str = DEFAULT_ENGINE,
        derive_seeds: bool = True,
        in_flight: InFlightRegistry | None = None,
    ) -> None:
        check_positive_int("jobs", jobs)
        check_in_choices("engine", engine, ENGINE_NAMES)
        self._config = config if config is not None else SimulationConfig()
        self._jobs = jobs
        self._cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self._chunk_size = chunk_size
        self._engine = engine
        self._derive_seeds = derive_seeds
        self._in_flight = in_flight
        self._store: ResultStore | None = None

    @property
    def jobs(self) -> int:
        """Configured number of worker processes."""
        return self._jobs

    @property
    def config(self) -> SimulationConfig:
        """Base simulation configuration."""
        return self._config

    @property
    def store(self) -> ResultStore | None:
        """The persistent result store backing this runner, or ``None``.

        Opened lazily on first use so constructing an uncached runner
        never touches the filesystem; opening validates/migrates the
        on-disk schema and sweeps orphaned temp files of dead writers.
        """
        if self._cache_dir is None:
            return None
        if self._store is None:
            self._store = ResultStore(self._cache_dir)
        return self._store

    # -- grid construction ---------------------------------------------------

    @staticmethod
    def grid(
        kinds: Sequence[str],
        chiplet_counts: Iterable[int],
        injection_rates: Iterable[float],
        traffics: Sequence[str] = ("uniform",),
        *,
        regularity: str | None = None,
    ) -> list[SweepCandidate]:
        """The full cartesian candidate grid, in deterministic order.

        ``regularity`` requests one regularity class for every
        arrangement (``None`` keeps the per-count best available class,
        and the candidates' cache keys unchanged).
        """
        return [
            SweepCandidate(
                kind=kind,
                num_chiplets=count,
                injection_rate=rate,
                traffic=traffic,
                regularity=regularity,
            )
            for count in chiplet_counts
            for kind in kinds
            for rate in injection_rates
            for traffic in traffics
        ]

    @staticmethod
    def workload_grid(
        kinds: Sequence[str],
        chiplet_counts: Iterable[int],
        workloads: Sequence[str],
        mappers: Sequence[str] = ("partition",),
        *,
        injection_rates: Iterable[float] = (0.1,),
        num_tasks: int | None = None,
        regularity: str | None = None,
    ) -> list[SweepCandidate]:
        """The trace-driven candidate grid: (arrangement x count x workload x mapper).

        ``num_tasks`` sizes every workload through
        :func:`repro.workloads.effective_num_tasks`: ``None`` scales each
        workload with its candidate's chiplet count (about one task per
        chiplet), while an explicit value below a generator's minimum
        fails fast at grid construction.  ``regularity`` requests one
        regularity class for every arrangement (``None`` keeps the best
        available class per count).
        """
        return [
            SweepCandidate(
                kind=kind,
                num_chiplets=count,
                injection_rate=rate,
                workload=workload,
                workload_params=(
                    ("num_tasks", effective_num_tasks(workload, num_tasks, count)),
                ),
                mapper=mapper,
                regularity=regularity,
            )
            for count in chiplet_counts
            for kind in kinds
            for workload in workloads
            for mapper in mappers
            for rate in injection_rates
        ]

    # -- cache ---------------------------------------------------------------

    def cache_key(self, candidate: SweepCandidate, config: SimulationConfig) -> str:
        """Stable hash identifying one (candidate, configuration) result.

        Delegates to :func:`repro.store.result_key`, which preserves the
        exact key computation of the earlier flat cache — previously
        computed results keep their addresses across the store migration.
        The config enters through
        :func:`repro.noc.config.config_identity_dict`, which omits
        ``router_pipeline`` at its single-stage default for the same
        reason: keys minted before the knob existed stay valid, staged
        runs key distinctly.
        """
        return result_key(candidate.key_dict(), config_identity_dict(config))

    def _cache_load(self, key: str) -> SimulationResult | None:
        store = self.store
        if store is None:
            return None
        entry = store.load(key)
        if entry is None:
            return None
        try:
            return simulation_result_from_dict(entry.result)
        except (ValueError, KeyError, TypeError):
            # A structurally valid entry whose result payload does not
            # rebuild (e.g. written by a different result layout):
            # recompute and overwrite.
            return None

    def _cache_store(
        self,
        key: str,
        candidate: SweepCandidate,
        result: SimulationResult,
        *,
        seed: int | None = None,
        wall_time_s: float | None = None,
        engine: str | None = None,
    ) -> None:
        """Publish one fresh result into the store, provenance embedded.

        The manifest (git revision, library versions, engine, derived
        seed, configuration, wall time) travels inside the entry — the
        store is self-describing, which is what lets ``hexamesh store
        verify`` replay any entry bit-for-bit later.  ``engine`` is the
        engine that *actually* ran (reported by the worker); it can
        differ from the runner's requested engine when ``vectorized``
        falls back to ``active`` under a staged router pipeline, and the
        manifest must record the truth for verify to replay it.
        """
        store = self.store
        if store is None or key is None:
            return
        from repro.telemetry.provenance import build_manifest

        # The manifest embeds the *identity* rendering of the config (the
        # exact dict the cache key hashes), so `hexamesh store verify`
        # can re-derive the entry key from the manifest bit-for-bit;
        # SimulationConfig(**manifest_config) still reconstructs exactly
        # (omitted-at-default fields come back as their defaults).
        manifest = build_manifest(
            config=config_identity_dict(
                replace(self._config, seed=seed) if seed is not None else self._config
            ),
            engine=engine if engine is not None else self._engine,
            seed=seed,
            wall_time_s=wall_time_s,
            extra={"candidate": candidate.key_dict(), "cache_key": key},
        )
        store.store(
            key,
            candidate=candidate.key_dict(),
            result=simulation_result_to_dict(result),
            manifest=manifest,
        )

    # -- running -------------------------------------------------------------

    def candidate_seed(self, candidate: SweepCandidate) -> int:
        """The seed this runner assigns to ``candidate``."""
        if self._derive_seeds:
            return derive_candidate_seed(self._config.seed, candidate)
        return self._config.seed

    def run(
        self,
        candidates: Iterable[SweepCandidate],
        *,
        progress: ProgressCallback | None = None,
    ) -> list[SweepRecord]:
        """Evaluate every candidate and return records in candidate order.

        The cache scan, record assembly, progress reporting and the
        lost-results guard are shared scaffolding; only the dispatch of
        cache misses (:meth:`_dispatch`) differs between the per-point and
        the batched runner, so the two can never drift apart in the parts
        that make their records interchangeable.
        """
        ordered = list(candidates)
        total = len(ordered)
        records: list[SweepRecord | None] = [None] * total
        completed = 0

        def _finish(index: int, record: SweepRecord) -> None:
            nonlocal completed
            records[index] = record
            completed += 1
            if progress is not None:
                progress(completed, total, record)

        caching = self._cache_dir is not None
        in_flight = self._in_flight if caching else None
        pending: dict[int, tuple[SweepCandidate, int, str | None]] = {}
        followed: list[tuple[int, SweepCandidate, int, str, _InFlightEntry]] = []
        owned_keys: set[str] = set()
        for index, candidate in enumerate(ordered):
            seed = self.candidate_seed(candidate)
            config = replace(self._config, seed=seed)
            key = self.cache_key(candidate, config) if caching else None
            cached = self._cache_load(key) if caching else None
            if cached is not None:
                _finish(index, SweepRecord(candidate, seed, cached, from_cache=True))
                continue
            if in_flight is not None and key is not None and key not in owned_keys:
                entry = in_flight.claim(key)
                if entry is not None:
                    # Another runner in this process is already simulating
                    # this exact (candidate, config): subscribe to its
                    # result instead of duplicating the work.
                    followed.append((index, candidate, seed, key, entry))
                    continue
                owned_keys.add(key)
            pending[index] = (candidate, seed, key)

        published: set[str] = set()

        def _finish_owned(index: int, record: SweepRecord) -> None:
            key = pending[index][2]
            if in_flight is not None and key is not None and key in owned_keys:
                published.add(key)
                in_flight.publish(key, record)
            _finish(index, record)

        try:
            if pending:
                self._dispatch(pending, _finish_owned)
        finally:
            # Wake followers of any claim we failed to fulfil (dispatch
            # raised, e.g. a cancelled job) so they can recover instead of
            # waiting forever.
            if in_flight is not None:
                in_flight.release(owned_keys - published)

        for index, candidate, seed, key, entry in followed:
            entry.event.wait()
            record = entry.record
            if record is not None:
                _finish(index, SweepRecord(candidate, seed, record.result,
                                           from_cache=True))
                continue
            # The owner released without publishing (failed or cancelled).
            # It may still have stored some results before dying; fall
            # back to the store, then to evaluating locally.
            cached = self._cache_load(key)
            if cached is not None:
                _finish(index, SweepRecord(candidate, seed, cached, from_cache=True))
                continue
            config = replace(self._config, seed=seed)
            _, result, wall, effective = _evaluate_work_item(
                (index, candidate, config, self._engine)
            )
            self._cache_store(
                key, candidate, result, seed=seed, wall_time_s=wall, engine=effective
            )
            _finish(index, SweepRecord(candidate, seed, result, wall_time_s=wall))

        missing = [index for index, record in enumerate(records) if record is None]
        if missing:  # pragma: no cover - defensive; parallel_map is exhaustive
            raise RuntimeError(f"sweep lost results for candidate indices {missing}")
        return list(records)  # type: ignore[arg-type]

    def _dispatch(
        self,
        pending: dict[int, tuple[SweepCandidate, int, str | None]],
        finish: Callable[[int, SweepRecord], None],
    ) -> None:
        """Simulate the cache misses; call ``finish`` per completed record.

        ``pending`` maps candidate index to ``(candidate, seed, cache
        key)``.  The base implementation fans individual candidates across
        the workers; :class:`BatchedSweepRunner` overrides this with
        whole-batch dispatch.
        """
        items = [
            (index, candidate, replace(self._config, seed=seed), self._engine)
            for index, (candidate, seed, _) in pending.items()
        ]

        def _on_complete(_done: int, _total: int, value: Any) -> None:
            index, result, wall, engine = value
            candidate, seed, key = pending[index]
            self._cache_store(
                key, candidate, result, seed=seed, wall_time_s=wall, engine=engine
            )
            finish(
                index,
                SweepRecord(candidate, seed, result, wall_time_s=wall),
            )

        parallel_map(
            _evaluate_work_item,
            items,
            jobs=self._jobs,
            chunk_size=self._chunk_size,
            progress=_on_complete,
        )


class BatchedSweepRunner(ParallelSweepRunner):
    """A sweep runner that ships *batches* of same-structure candidates.

    Candidates whose identities differ only in the injection rate (equal
    :meth:`SweepCandidate.batch_key`: same arrangement, traffic or
    workload, and fault set) share their expensive build state — topology
    graph, routing tables, degraded topology, trace schedules and the
    vectorized engine's flat-state layout — so the runner groups them and
    dispatches whole batches to the workers, which evaluate them through
    :meth:`NocSimulator.run_batch <repro.noc.simulator.NocSimulator.run_batch>`
    instead of rebuilding everything per point.

    The contract of :class:`ParallelSweepRunner` is preserved exactly:
    records come back in candidate order, per-candidate seeds are derived
    from the full identity (rate included — effectively per-(candidate,
    point)), and cache entries are interchangeable between the two
    runners, so results are bit-identical whichever runner (or ``jobs``
    count, or engine) produced them.

    Batching and worker fan-out compose rather than compete: with
    ``jobs > 1`` a group larger than its fair share is split into
    consecutive sub-batches (each still amortising one shared build), so
    a single-structure sweep — one arrangement, many rates — keeps every
    worker busy instead of serialising onto one.
    """

    def _dispatch(
        self,
        pending: dict[int, tuple[SweepCandidate, int, str | None]],
        finish: Callable[[int, SweepRecord], None],
    ) -> None:
        """Ship whole batches of same-structure candidates to the workers."""
        # Group the misses into batches of shared structure, keeping
        # first-appearance order of groups and candidate order within.
        groups: dict[str, list[tuple[int, SweepCandidate, int]]] = {}
        for index, (candidate, seed, _) in pending.items():
            groups.setdefault(candidate.batch_key(), []).append(
                (index, candidate, seed)
            )
        # When every group is a singleton (e.g. a single-rate resilience
        # sweep where each fault set is its own structure) there is
        # nothing to amortise: a one-point batch pays the shared-build
        # setup of the batch path for zero reuse.  Fall through to the
        # per-point dispatch, which is exactly what a
        # :class:`ParallelSweepRunner` would do.
        if all(len(entries) == 1 for entries in groups.values()):
            super()._dispatch(pending, finish)
            return
        # With workers available, cap batch size so a few large groups
        # cannot serialise the sweep onto a single process: aim for
        # roughly two work items per worker (the load-balancing slack of
        # default_chunk_size), splitting oversized groups into consecutive
        # sub-batches that each still share one build.  Never drop below
        # two points per batch — a one-point batch pays the shared-build
        # setup without amortising anything and would be strictly worse
        # than per-point dispatch.
        if self._jobs > 1:
            max_batch = max(2, -(-len(pending) // (self._jobs * 2)))
        else:
            max_batch = len(pending)
        items = [
            (entries[start:start + max_batch], self._config, self._engine)
            for entries in groups.values()
            for start in range(0, len(entries), max_batch)
        ]

        def _on_complete(_done: int, _total: int, value: Any) -> None:
            for index, result, wall, engine in value:
                candidate, seed, key = pending[index]
                self._cache_store(
                    key, candidate, result, seed=seed, wall_time_s=wall, engine=engine
                )
                finish(
                    index,
                    SweepRecord(candidate, seed, result, wall_time_s=wall),
                )

        # Batches are the dispatch unit (chunk_size=1): splitting a batch
        # further would forfeit the shared build it exists for.
        parallel_map(
            _evaluate_batch_item,
            items,
            jobs=self._jobs,
            chunk_size=1,
            progress=_on_complete,
        )
