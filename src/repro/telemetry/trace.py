"""Flit-lifecycle tracing: per-packet event streams and trace exports.

A :class:`FlitTracer` records one event per lifecycle step of every flit:

* ``inject`` — the flit leaves its source endpoint,
* ``link_traverse`` — the flit arrives in a router input buffer,
* ``vc_grant`` — the packet's head is granted an output VC,
* ``sa_grant`` — the flit wins switch allocation and is forwarded,
* ``eject`` — the flit arrives at its destination endpoint.

Events carry the globally unique, engine-independent ``packet_id`` plus
the flit index, so the *canonically sorted* event stream of a run is a
bit-identical artifact across all engines under a fixed seed — a far
sharper correctness check than comparing final latency histograms.
(Within a cycle the engines process components in different orders, so
the raw append order differs; :meth:`FlitTracer.canonical_events` sorts
by ``(cycle, packet_id, flit_index, kind, ...)`` to erase exactly that
immaterial difference and nothing else.)

Exports: JSONL (one event object per line) and Chrome trace-event JSON
(the ``traceEvents`` format Perfetto and ``chrome://tracing`` load):
packets appear as async spans from injection to ejection, and every
lifecycle event as an instant on its router's or endpoint's track.
"""

from __future__ import annotations

import json
from typing import TextIO

#: Event-kind names, indexed by the integer codes stored in the tuples.
#: The order is the canonical within-(cycle, flit) sort order: a flit is
#: injected before it traverses a link, a head arrival precedes its VC
#: grant in the same cycle, and a grant precedes the (later) SA win.
TRACE_KINDS = ("inject", "link_traverse", "vc_grant", "sa_grant", "eject")

_K_INJECT = 0
_K_LINK = 1
_K_VC_GRANT = 2
_K_SA_GRANT = 3
_K_EJECT = 4

TRACE_SCHEMA = 1

#: Field names of one event tuple, in order.
EVENT_FIELDS = ("cycle", "packet", "flit", "kind", "node", "port", "vc")


class FlitTracer:
    """Record the lifecycle events of every flit of one run.

    Events are stored as plain tuples
    ``(cycle, packet_id, flit_index, kind, node, port, vc)`` where
    ``node`` is a router id (``link_traverse`` / ``vc_grant`` /
    ``sa_grant``) or an endpoint id (``inject`` / ``eject``) and
    ``port`` is the router-local port (``-1`` for endpoint events).
    A tracer is single-use: create a fresh one per run.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple[int, int, int, int, int, int, int]] = []

    # -- recording seams (called by the engines and probe hooks) ------------

    def inject(
        self, cycle: int, packet_id: int, flit_index: int, endpoint: int, vc: int
    ) -> None:
        self.events.append((cycle, packet_id, flit_index, _K_INJECT, endpoint, -1, vc))

    def link_traverse(
        self,
        cycle: int,
        packet_id: int,
        flit_index: int,
        router: int,
        port: int,
        vc: int,
    ) -> None:
        self.events.append((cycle, packet_id, flit_index, _K_LINK, router, port, vc))

    def vc_grant(
        self,
        cycle: int,
        packet_id: int,
        flit_index: int,
        router: int,
        out_port: int,
        out_vc: int,
    ) -> None:
        self.events.append(
            (cycle, packet_id, flit_index, _K_VC_GRANT, router, out_port, out_vc)
        )

    def sa_grant(
        self,
        cycle: int,
        packet_id: int,
        flit_index: int,
        router: int,
        port: int,
        vc: int,
    ) -> None:
        self.events.append((cycle, packet_id, flit_index, _K_SA_GRANT, router, port, vc))

    def eject(
        self, cycle: int, packet_id: int, flit_index: int, endpoint: int, vc: int
    ) -> None:
        self.events.append((cycle, packet_id, flit_index, _K_EJECT, endpoint, -1, vc))

    # -- canonical view -----------------------------------------------------

    def canonical_events(self) -> list[tuple[int, int, int, int, int, int, int]]:
        """The events in canonical order — the cross-engine comparison key."""
        return sorted(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- exports ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One canonical event per line, as compact JSON objects."""
        lines = []
        for event in self.canonical_events():
            record = dict(zip(EVENT_FIELDS, event))
            record["kind"] = TRACE_KINDS[record["kind"]]
            lines.append(json.dumps(record, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_chrome_trace(self, *, metadata: dict | None = None) -> dict:
        """Chrome trace-event JSON, loadable in Perfetto.

        One microsecond of trace time per simulated cycle.  Packets are
        async ``b``/``e`` spans (pid 1) from head injection to tail
        ejection; every lifecycle event is an instant on the track of
        its router (pid 2) or endpoint (pid 3).
        """
        events = self.canonical_events()
        trace_events: list[dict] = [
            {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "packets"}},
            {"ph": "M", "pid": 2, "name": "process_name", "args": {"name": "routers"}},
            {
                "ph": "M",
                "pid": 3,
                "name": "process_name",
                "args": {"name": "endpoints"},
            },
        ]
        first_inject: dict[int, int] = {}
        last_eject: dict[int, int] = {}
        for cycle, packet_id, _flit, kind, _node, _port, _vc in events:
            if kind == _K_INJECT and packet_id not in first_inject:
                first_inject[packet_id] = cycle
            elif kind == _K_EJECT:
                last_eject[packet_id] = cycle
        for packet_id, start in first_inject.items():
            end = last_eject.get(packet_id)
            if end is None:
                continue
            name = f"packet-{packet_id}"
            common = {
                "cat": "packet",
                "id": packet_id,
                "name": name,
                "pid": 1,
                "tid": 0,
            }
            trace_events.append({"ph": "b", "ts": start, **common})
            trace_events.append({"ph": "e", "ts": end, **common})
        for cycle, packet_id, flit_index, kind, node, port, vc in events:
            endpoint_event = kind in (_K_INJECT, _K_EJECT)
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": TRACE_KINDS[kind],
                    "cat": "flit",
                    "ts": cycle,
                    "pid": 3 if endpoint_event else 2,
                    "tid": node,
                    "args": {
                        "packet": packet_id,
                        "flit": flit_index,
                        "port": port,
                        "vc": vc,
                    },
                }
            )
        document = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "clock": "1us per simulated cycle"},
        }
        if metadata:
            document["otherData"].update(metadata)
        return document

    def write_chrome_trace(self, path, *, metadata: dict | None = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(metadata=metadata), handle)
            handle.write("\n")


def read_jsonl(handle: TextIO) -> list[tuple[int, int, int, int, int, int, int]]:
    """Parse a JSONL export back into canonical event tuples."""
    events = []
    for line in handle:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(
            (
                record["cycle"],
                record["packet"],
                record["flit"],
                TRACE_KINDS.index(record["kind"]),
                record["node"],
                record["port"],
                record["vc"],
            )
        )
    return sorted(events)
