"""Per-cycle metric time series of one simulation run.

A :class:`MetricsCollector` records five series, one value per simulated
cycle, identically across every engine (legacy dense loop, active-set,
vectorized, batched):

* ``buffer_occupancy`` — flits stored in router input buffers,
* ``link_flits`` — flit deliveries completing on channels this cycle
  (router-to-router, injection and ejection links alike),
* ``vc_stalls`` — input VCs waiting in the VC-allocation state,
* ``in_flight`` — flits injected but not yet ejected (buffered plus
  on-channel),
* ``injection_backlog`` — packets waiting in endpoint source queues
  (a partially injected packet counts once, like
  ``Endpoint.source_queue_length``).

The collector is fed from two directions.  The *flow* counters
(``_link``, ``_inj``, ``_ej``) accumulate within the current cycle —
the object-model probe seams on :class:`~repro.noc.router.Router` and
:class:`~repro.noc.endpoint.Endpoint` increment them per flit, the
array kernel adds whole delivery batches — and :meth:`record_cycle`
then closes the cycle with the sampled *state* values.  Engines that
exit early call :meth:`finalize`, which pads the series to the
configured horizon exactly as a full run would have recorded them
(state series hold their final value, flow series read zero), so the
series are bit-identical across engines regardless of early exit.
"""

from __future__ import annotations

#: Names of the recorded series, in canonical export order.
SERIES_NAMES = (
    "buffer_occupancy",
    "link_flits",
    "vc_stalls",
    "in_flight",
    "injection_backlog",
)

METRICS_SCHEMA = 1


class MetricsCollector:
    """Collect the per-cycle series of a single simulation run.

    A collector is single-use: create a fresh one per run (or call
    :meth:`reset` in between).  The within-cycle flow counters are
    public single-underscore attributes by design — the per-flit probe
    seams increment them directly to keep the enabled path cheap.
    """

    __slots__ = (
        "buffer_occupancy",
        "link_flits",
        "vc_stalls",
        "in_flight",
        "injection_backlog",
        "total_cycles",
        "_link",
        "_inj",
        "_ej",
        "_in_flight",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Return the collector to its just-built (empty) state."""
        self.buffer_occupancy: list[int] = []
        self.link_flits: list[int] = []
        self.vc_stalls: list[int] = []
        self.in_flight: list[int] = []
        self.injection_backlog: list[int] = []
        self.total_cycles = 0
        self._link = 0
        self._inj = 0
        self._ej = 0
        self._in_flight = 0

    # -- recording ----------------------------------------------------------

    def record_cycle(self, *, buffered: int, vc_stalls: int, backlog: int) -> None:
        """Close the current cycle with the sampled state values.

        ``buffered``, ``vc_stalls`` and ``backlog`` are the network
        state at the end of the cycle; the flow counters accumulated
        since the previous call provide the link-utilisation and
        in-flight values, then reset for the next cycle.
        """
        self._in_flight += self._inj - self._ej
        self.buffer_occupancy.append(buffered)
        self.link_flits.append(self._link)
        self.vc_stalls.append(vc_stalls)
        self.in_flight.append(self._in_flight)
        self.injection_backlog.append(backlog)
        self._link = 0
        self._inj = 0
        self._ej = 0

    def finalize(self, total_cycles: int) -> None:
        """Pad the series to ``total_cycles`` after an early exit.

        An engine only exits early once the network can never change
        again (drained, no pending deliveries, sources stopped), so the
        skipped cycles would have recorded the final state values and
        zero flow — which is exactly what the padding appends.
        """
        self.total_cycles = total_cycles
        pad = total_cycles - len(self.link_flits)
        if pad <= 0:
            return
        for series in (
            self.buffer_occupancy,
            self.vc_stalls,
            self.in_flight,
            self.injection_backlog,
        ):
            last = series[-1] if series else 0
            series.extend([last] * pad)
        self.link_flits.extend([0] * pad)

    # -- introspection ------------------------------------------------------

    @property
    def cycles_recorded(self) -> int:
        """Number of cycles currently held (padding included)."""
        return len(self.link_flits)

    def series(self) -> dict[str, list[int]]:
        """The five series keyed by their canonical names."""
        return {name: getattr(self, name) for name in SERIES_NAMES}

    def as_dict(self) -> dict:
        """JSON-ready representation (schema, horizon, series)."""
        return {
            "schema": METRICS_SCHEMA,
            "total_cycles": self.total_cycles,
            "cycles_recorded": self.cycles_recorded,
            "series": self.series(),
        }

    def summary(self) -> dict[str, float]:
        """Headline aggregates of the recorded series (peaks and means)."""
        out: dict[str, float] = {}
        for name, values in self.series().items():
            if values:
                out[f"peak_{name}"] = float(max(values))
                out[f"mean_{name}"] = sum(values) / len(values)
            else:
                out[f"peak_{name}"] = 0.0
                out[f"mean_{name}"] = 0.0
        return out


def sample_object_cycle(routers, endpoints, metrics: MetricsCollector) -> None:
    """Sample end-of-cycle state from the object model and close the cycle.

    Shared by the legacy and active-set engines so the two can never
    diverge in what they feed the collector.
    """
    buffered = 0
    stalls = 0
    for router in routers:
        buffered += router.buffered_flits
        stalls += router.vc_alloc_stalls()
    backlog = 0
    for endpoint in endpoints:
        backlog += endpoint.source_queue_length
    metrics.record_cycle(buffered=buffered, vc_stalls=stalls, backlog=backlog)
