"""Run-provenance manifests.

A manifest records everything needed to re-run (or distrust) a cached
simulation artifact: the exact configuration and its content hash, the
seed and engine, the code revision, and the library versions the run was
produced with.  The sweep runners write one next to every fresh cache
entry, and the bench harness embeds one in every ``BENCH_*.json``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path

MANIFEST_SCHEMA = 1


def git_revision(default: str = "unknown", *, cwd: Path | None = None) -> str:
    """The short git revision of the working tree (``default`` outside git)."""
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return default
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else default


def config_digest(config) -> str:
    """Stable 16-hex-digit content hash of a configuration.

    Accepts a dataclass (``SimulationConfig``) or any JSON-serialisable
    mapping; the digest is over the sorted-key JSON rendering, so two
    configurations hash equal exactly when their fields are equal.
    """
    payload = asdict(config) if is_dataclass(config) else dict(config)
    rendered = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    *,
    config=None,
    engine: str | None = None,
    seed: int | None = None,
    wall_time_s: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a provenance manifest (JSON-ready).

    ``extra`` entries are merged at the top level (callers add e.g. the
    candidate identity or the cache key) and must not collide with the
    standard fields.
    """
    import numpy

    manifest: dict = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "git_revision": git_revision(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }
    if config is not None:
        manifest["config"] = asdict(config) if is_dataclass(config) else dict(config)
        manifest["config_hash"] = config_digest(config)
    if engine is not None:
        manifest["engine"] = engine
    if seed is not None:
        manifest["seed"] = seed
    if wall_time_s is not None:
        manifest["wall_time_s"] = wall_time_s
    if extra:
        overlap = set(extra) & set(manifest)
        if overlap:
            raise ValueError(f"manifest extra keys collide: {sorted(overlap)}")
        manifest.update(extra)
    return manifest


def write_manifest(path, manifest: dict) -> None:
    """Write a manifest as indented JSON (atomic enough for a sidecar)."""
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
