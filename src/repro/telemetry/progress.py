"""Structured sweep-progress telemetry.

:class:`SweepProgressTracker` sits on the sweep runners' existing
``progress(done, total, record)`` callback seam and turns the raw
completion stream into rates, ETAs and cache statistics the CLI (or any
other front-end) can render: candidates per second, estimated time
remaining, cache-hit ratio, accumulated simulation wall time and an
approximate worker-utilisation figure (simulated seconds per elapsed
worker-second).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any


@dataclass(frozen=True)
class SweepProgress:
    """One snapshot of a sweep's progress, derived per completion."""

    done: int
    total: int
    elapsed_s: float
    candidates_per_s: float
    eta_s: float | None
    cache_hits: int
    fresh: int
    cache_hit_ratio: float
    sim_wall_s: float
    worker_utilization: float | None
    last_from_cache: bool
    last_wall_s: float | None

    @property
    def finished(self) -> bool:
        return self.done >= self.total

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (for JSONL streaming over sockets).

        ``finished`` is included redundantly so stream consumers need no
        knowledge of the dataclass; :func:`progress_from_dict` inverts.
        """
        data = asdict(self)
        data["finished"] = self.finished
        return data


def progress_from_dict(data: dict[str, Any]) -> SweepProgress:
    """Rebuild a :class:`SweepProgress` from its :meth:`~SweepProgress.as_dict` form."""
    fields = dict(data)
    fields.pop("finished", None)
    return SweepProgress(**fields)


class SweepProgressTracker:
    """Derive :class:`SweepProgress` snapshots from completion callbacks.

    Create one immediately before starting the sweep (the elapsed clock
    starts at construction) and call :meth:`update` with every
    ``progress(done, total, record)`` invocation.  Records are duck-typed:
    ``from_cache`` and ``wall_time_s`` attributes are used when present,
    so the tracker works with any record type the runners emit.
    """

    def __init__(self, *, jobs: int = 1, clock=time.perf_counter) -> None:
        self._jobs = max(1, int(jobs))
        self._clock = clock
        self._start = clock()
        self._cache_hits = 0
        self._fresh = 0
        self._sim_wall_s = 0.0

    def update(self, done: int, total: int, record) -> SweepProgress:
        """Fold one completion into the running statistics."""
        from_cache = bool(getattr(record, "from_cache", False))
        wall = getattr(record, "wall_time_s", None)
        if from_cache:
            self._cache_hits += 1
        else:
            self._fresh += 1
        if wall is not None:
            self._sim_wall_s += wall
        elapsed = max(self._clock() - self._start, 1e-9)
        rate = done / elapsed
        remaining = max(total - done, 0)
        eta = remaining / rate if rate > 0 and remaining else (0.0 if done else None)
        utilization = None
        if self._sim_wall_s:
            utilization = min(self._sim_wall_s / (elapsed * self._jobs), 1.0)
        seen = self._cache_hits + self._fresh
        return SweepProgress(
            done=done,
            total=total,
            elapsed_s=elapsed,
            candidates_per_s=rate,
            eta_s=eta,
            cache_hits=self._cache_hits,
            fresh=self._fresh,
            cache_hit_ratio=self._cache_hits / seen if seen else 0.0,
            sim_wall_s=self._sim_wall_s,
            worker_utilization=utilization,
            last_from_cache=from_cache,
            last_wall_s=wall,
        )


def format_duration(seconds: float) -> str:
    """Render a duration compactly (``850ms``, ``12.3s``, ``2m05s``)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:02.0f}s"


def format_progress(progress: SweepProgress, label: str = "") -> str:
    """One progress line: position, source, rate, ETA and cache ratio."""
    source = "cache" if progress.last_from_cache else "sim"
    if progress.last_wall_s is not None:
        source += f" {format_duration(progress.last_wall_s)}"
    parts = [f"[{progress.done}/{progress.total}]"]
    if label:
        parts.append(label)
    parts.append(f"({source})")
    detail = [f"{progress.candidates_per_s:.1f} cand/s"]
    if progress.eta_s is not None and not progress.finished:
        detail.append(f"ETA {format_duration(progress.eta_s)}")
    detail.append(f"cache {progress.cache_hit_ratio:.0%}")
    return " ".join(parts) + " | " + ", ".join(detail)


def format_summary(progress: SweepProgress) -> str:
    """End-of-sweep summary: totals, rates, cache and utilisation."""
    lines = [
        f"completed {progress.done}/{progress.total} candidates in "
        f"{format_duration(progress.elapsed_s)} "
        f"({progress.candidates_per_s:.2f} candidates/s)",
        f"cache: {progress.cache_hits} hits / {progress.fresh} simulated "
        f"({progress.cache_hit_ratio:.0%} hit ratio)",
    ]
    if progress.fresh:
        lines.append(
            f"simulation wall time: {format_duration(progress.sim_wall_s)} total, "
            f"{format_duration(progress.sim_wall_s / progress.fresh)} "
            "per fresh candidate"
        )
    if progress.worker_utilization is not None:
        lines.append(f"worker utilisation: {progress.worker_utilization:.0%}")
    return "\n".join(lines)
