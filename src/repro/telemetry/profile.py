"""Kernel-stage wall-time profiling.

A :class:`StageProfiler` accumulates wall seconds per named pipeline
stage.  The array kernel times its four per-cycle stages (channel
delivery/traversal, generation + injection, route computation + VC
allocation, switch allocation + forwarding) plus the ejection flush when
a profiler is attached, and the bench harness surfaces the totals in a
report's ``extras`` so a regression in one stage is visible without
re-running under an external profiler.
"""

from __future__ import annotations

from time import perf_counter

#: Canonical kernel stage names, in pipeline order.
KERNEL_STAGES = ("deliver", "inject", "va", "sa", "flush")


class StageProfiler:
    """Accumulate wall seconds per stage name."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, stage: str, dt: float) -> None:
        """Credit ``dt`` seconds to ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt
        self.calls[stage] = self.calls.get(stage, 0) + 1

    def time(self, stage: str):
        """Context manager timing one stage invocation."""
        return _StageTimer(self, stage)

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, float]:
        """Stage → accumulated seconds, sorted by descending cost."""
        return dict(sorted(self.seconds.items(), key=lambda kv: -kv[1]))


class _StageTimer:
    __slots__ = ("_profiler", "_stage", "_t0")

    def __init__(self, profiler: StageProfiler, stage: str) -> None:
        self._profiler = profiler
        self._stage = stage

    def __enter__(self) -> "_StageTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add(self._stage, perf_counter() - self._t0)
