"""Observability for the simulator: metrics, tracing, provenance, progress.

The telemetry subsystem is a cross-cutting layer over the four execution
paths (legacy dense loop, active-set engine, vectorized engine, batched
array kernel):

* :class:`MetricsCollector` — per-cycle time series (buffer occupancy,
  link utilisation, VC-allocation stalls, in-flight flits, injection
  backlog), bit-identical across engines under a fixed seed;
* :class:`FlitTracer` — flit-lifecycle event streams (inject, VC grant,
  SA grant, link traverse, eject) exportable as JSONL and Chrome
  trace-event JSON (Perfetto-loadable), whose canonical order is a
  cross-engine equality artifact;
* :mod:`~repro.telemetry.provenance` — run manifests (config hash, seed,
  engine, git revision, library versions, wall time) written next to
  sweep cache entries and embedded in bench reports;
* :class:`SweepProgressTracker` — structured progress telemetry
  (candidates/s, ETA, cache-hit ratio, worker utilisation) on the sweep
  runners' callback seam;
* :class:`StageProfiler` — kernel-stage wall-time accounting surfaced in
  bench extras.

Everything is opt-in through a :class:`TelemetrySession`; passing
``telemetry=None`` (the default everywhere) keeps the simulation hot
paths strictly observation-free.
"""

from repro.telemetry.metrics import (
    METRICS_SCHEMA,
    SERIES_NAMES,
    MetricsCollector,
    sample_object_cycle,
)
from repro.telemetry.profile import KERNEL_STAGES, StageProfiler
from repro.telemetry.progress import (
    SweepProgress,
    SweepProgressTracker,
    format_duration,
    format_progress,
    format_summary,
    progress_from_dict,
)
from repro.telemetry.provenance import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    git_revision,
    write_manifest,
)
from repro.telemetry.session import (
    TelemetrySession,
    install_probes,
    uninstall_probes,
)
from repro.telemetry.trace import (
    EVENT_FIELDS,
    TRACE_KINDS,
    TRACE_SCHEMA,
    FlitTracer,
    read_jsonl,
)

__all__ = [
    "EVENT_FIELDS",
    "KERNEL_STAGES",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "SERIES_NAMES",
    "TRACE_KINDS",
    "TRACE_SCHEMA",
    "FlitTracer",
    "MetricsCollector",
    "StageProfiler",
    "SweepProgress",
    "SweepProgressTracker",
    "TelemetrySession",
    "build_manifest",
    "config_digest",
    "format_duration",
    "format_progress",
    "format_summary",
    "git_revision",
    "install_probes",
    "progress_from_dict",
    "read_jsonl",
    "sample_object_cycle",
    "uninstall_probes",
    "write_manifest",
]
