"""The telemetry session: one bundle of probes handed to an engine run.

A :class:`TelemetrySession` groups the optional observers of one
simulation run — metrics collector, flit tracer, stage profiler — behind
a single ``telemetry=`` parameter that threads from the public entry
points (:meth:`NocSimulator.run`, :meth:`NocSimulator.run_batch`,
``simulate_workload``, the CLI) down to the cycle loops.  ``None``
anywhere along the way means *strictly no observation*: the engines only
ever test attributes against ``None``, so the disabled path adds no
per-flit work (guarded by the ``telemetry-overhead`` bench scenario).

The object-model engines observe through class-attribute probe seams on
:class:`~repro.noc.router.Router` and :class:`~repro.noc.endpoint.Endpoint`
(``tracer`` / ``metrics``, both ``None`` by default);
:func:`install_probes` sets them per run and
:func:`uninstall_probes` always clears them again, so a network is never
left observed after the run that attached the probes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.metrics import MetricsCollector
from repro.telemetry.profile import StageProfiler
from repro.telemetry.trace import FlitTracer


@dataclass
class TelemetrySession:
    """The optional observers of one simulation run (all default off)."""

    metrics: MetricsCollector | None = None
    tracer: FlitTracer | None = None
    profiler: StageProfiler | None = None

    @classmethod
    def full(cls) -> "TelemetrySession":
        """A session with every observer enabled."""
        return cls(
            metrics=MetricsCollector(), tracer=FlitTracer(), profiler=StageProfiler()
        )

    @property
    def observes_network(self) -> bool:
        """Whether any per-network probe (metrics or tracer) is attached."""
        return self.metrics is not None or self.tracer is not None


def install_probes(routers, endpoints, session: TelemetrySession) -> None:
    """Attach the session's metrics/tracer to the object-model probe seams."""
    for router in routers:
        router.metrics = session.metrics
        router.tracer = session.tracer
    for endpoint in endpoints:
        endpoint.metrics = session.metrics
        endpoint.tracer = session.tracer


def uninstall_probes(routers, endpoints) -> None:
    """Detach every probe installed by :func:`install_probes`."""
    for router in routers:
        router.metrics = None
        router.tracer = None
    for endpoint in endpoints:
        endpoint.metrics = None
        endpoint.tracer = None
