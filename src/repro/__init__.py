"""HexaMesh reproduction library.

This package reproduces the system described in *"HexaMesh: Scaling to
Hundreds of Chiplets with an Optimized Chiplet Arrangement"* (DAC 2023).
It provides:

* generators for chiplet arrangements (grid, brickwall, honeycomb, HexaMesh)
  in regular, semi-regular and irregular variants (:mod:`repro.arrangements`),
* a planar-graph representation with network metrics and the paper's
  closed-form proxy formulas (:mod:`repro.graphs`),
* balanced graph-bisection algorithms used to estimate bisection bandwidth
  of irregular arrangements (:mod:`repro.partition`),
* the chiplet shape solver and D2D link-bandwidth model (:mod:`repro.linkmodel`),
* a cycle-accurate inter-chiplet network simulator that substitutes for
  BookSim2 (:mod:`repro.noc`) plus fast analytical performance models
  (:mod:`repro.perfmodel`),
* a manufacturing cost extension (:mod:`repro.cost`),
* fault injection and yield-coupled resilience sweeps
  (:mod:`repro.noc.faults`, :mod:`repro.resilience`),
* application workloads — task graphs, chiplet mappers and trace-driven
  traffic for the simulator (:mod:`repro.workloads`),
* experiment runners that regenerate every figure of the paper's evaluation
  (:mod:`repro.evaluation`), and
* a high-level design API (:mod:`repro.core`).

Quickstart
----------

>>> from repro import ChipletDesign
>>> design = ChipletDesign.create("hexamesh", 37)
>>> design.diameter
6
"""

from repro.arrangements import (
    Arrangement,
    ArrangementKind,
    Regularity,
    make_arrangement,
)
from repro.core import ChipletDesign, DesignComparison, DesignSpaceExplorer
from repro.graphs import ChipGraph
from repro.linkmodel import (
    ChipletShape,
    D2DLinkModel,
    EvaluationParameters,
    LinkParameters,
)
from repro.noc.faults import FaultSet
from repro.workloads import (
    TaskGraph,
    TraceTraffic,
    WorkloadMapping,
    make_workload,
    map_workload,
    simulate_workload,
)

__version__ = "1.1.0"

__all__ = [
    "Arrangement",
    "ArrangementKind",
    "ChipGraph",
    "ChipletDesign",
    "ChipletShape",
    "D2DLinkModel",
    "DesignComparison",
    "DesignSpaceExplorer",
    "EvaluationParameters",
    "FaultSet",
    "LinkParameters",
    "Regularity",
    "TaskGraph",
    "TraceTraffic",
    "WorkloadMapping",
    "make_arrangement",
    "make_workload",
    "map_workload",
    "simulate_workload",
    "__version__",
]
