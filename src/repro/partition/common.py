"""Shared helpers for the bisection algorithms."""

from __future__ import annotations

from repro.graphs.model import ChipGraph, Node


def validate_partition(graph: ChipGraph, part: set[Node]) -> None:
    """Check that ``part`` is a non-trivial subset of the graph's nodes."""
    nodes = set(graph.nodes())
    if not part:
        raise ValueError("a partition side must not be empty")
    if not part <= nodes:
        unknown = part - nodes
        raise ValueError(f"partition contains unknown nodes: {sorted(unknown, key=repr)!r}")
    if part == nodes:
        raise ValueError("a partition side must not contain every node")


def cut_size(graph: ChipGraph, part: set[Node]) -> int:
    """Number of edges with exactly one endpoint inside ``part``."""
    validate_partition(graph, part)
    return graph.cut_size(part)


def is_balanced(graph: ChipGraph, part: set[Node], *, tolerance: int = 0) -> bool:
    """Check the bisection balance constraint.

    A bisection is balanced when the two sides differ by at most one node
    (for odd node counts) plus the optional extra ``tolerance``.
    """
    total = graph.num_nodes
    other = total - len(part)
    allowed = total % 2 + tolerance
    return abs(len(part) - other) <= allowed


def balanced_target_size(num_nodes: int) -> int:
    """Size of the smaller side of a perfectly balanced bisection."""
    return num_nodes // 2


def complement(graph: ChipGraph, part: set[Node]) -> set[Node]:
    """Nodes of the graph that are not in ``part``."""
    return set(graph.nodes()) - set(part)
