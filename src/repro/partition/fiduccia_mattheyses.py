"""Fiduccia–Mattheyses (FM) refinement with gain buckets.

FM moves one vertex at a time (instead of swapping pairs like
Kernighan–Lin), tracks per-vertex gains in bucket lists for O(1) selection
and allows a configurable balance tolerance.  One FM pass tentatively moves
every vertex once and then rolls back to the prefix of moves with the best
cumulative gain.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphs.model import ChipGraph, Node
from repro.partition.common import complement, validate_partition


class _GainBuckets:
    """Bucket structure mapping gain values to the unlocked nodes having them."""

    def __init__(self) -> None:
        self._buckets: dict[int, list[Node]] = defaultdict(list)
        self._gain_of: dict[Node, int] = {}

    def insert(self, node: Node, gain: int) -> None:
        self._buckets[gain].append(node)
        self._gain_of[node] = gain

    def remove(self, node: Node) -> None:
        gain = self._gain_of.pop(node)
        self._buckets[gain].remove(node)
        if not self._buckets[gain]:
            del self._buckets[gain]

    def update(self, node: Node, new_gain: int) -> None:
        self.remove(node)
        self.insert(node, new_gain)

    def pop_best(self) -> tuple[Node, int] | None:
        if not self._buckets:
            return None
        best_gain = max(self._buckets)
        node = self._buckets[best_gain][-1]
        self.remove(node)
        return node, best_gain

    def __contains__(self, node: Node) -> bool:
        return node in self._gain_of

    def gain(self, node: Node) -> int:
        return self._gain_of[node]


def _node_gain(graph: ChipGraph, node: Node, side_of: dict[Node, int]) -> int:
    """Cut-size reduction achieved by moving ``node`` to the other side."""
    own = side_of[node]
    external = 0
    internal = 0
    for neighbour in graph.neighbors(node):
        if side_of[neighbour] == own:
            internal += 1
        else:
            external += 1
    return external - internal


def fiduccia_mattheyses_refine(
    graph: ChipGraph,
    part: set[Node],
    *,
    max_passes: int = 10,
    balance_tolerance: int = 0,
) -> set[Node]:
    """Improve a balanced bisection with Fiduccia–Mattheyses passes.

    Parameters
    ----------
    graph:
        The graph to bisect.
    part:
        One side of the initial bisection (not modified).
    max_passes:
        Upper bound on the number of FM passes; refinement stops early when
        a pass yields no improvement.
    balance_tolerance:
        Additional allowed imbalance (in nodes) beyond the natural
        ``n mod 2``.  The default of 0 keeps the bisection perfectly
        balanced, which is what the bisection-bandwidth definition needs.

    Returns
    -------
    set
        The refined side; its size differs from ``len(part)`` by at most
        ``balance_tolerance``.
    """
    validate_partition(graph, set(part))
    total = graph.num_nodes
    min_side = total // 2 - balance_tolerance
    max_side = total - min_side

    side_a = set(part)
    side_b = complement(graph, side_a)

    for _ in range(max_passes):
        side_of: dict[Node, int] = {}
        for node in side_a:
            side_of[node] = 0
        for node in side_b:
            side_of[node] = 1
        sizes = [len(side_a), len(side_b)]

        buckets = _GainBuckets()
        for node in graph.nodes():
            buckets.insert(node, _node_gain(graph, node, side_of))

        moves: list[tuple[Node, int]] = []
        cumulative = 0
        best_cumulative = 0
        best_prefix = 0
        locked: set[Node] = set()

        while True:
            # Choose the best unlocked node whose move keeps the balance legal.
            candidate: tuple[Node, int] | None = None
            skipped: list[tuple[Node, int]] = []
            while True:
                popped = buckets.pop_best()
                if popped is None:
                    break
                node, gain = popped
                source = side_of[node]
                if sizes[source] - 1 >= min_side and sizes[1 - source] + 1 <= max_side:
                    candidate = (node, gain)
                    break
                skipped.append((node, gain))
            for node, gain in skipped:
                buckets.insert(node, gain)
            if candidate is None:
                break

            node, gain = candidate
            source = side_of[node]
            side_of[node] = 1 - source
            sizes[source] -= 1
            sizes[1 - source] += 1
            locked.add(node)
            moves.append((node, gain))
            cumulative += gain
            if cumulative > best_cumulative or (
                cumulative == best_cumulative and best_prefix == 0
            ):
                if cumulative > best_cumulative:
                    best_cumulative = cumulative
                    best_prefix = len(moves)
            # Update the gains of the unlocked neighbours.
            for neighbour in graph.neighbors(node):
                if neighbour in buckets:
                    buckets.update(neighbour, _node_gain(graph, neighbour, side_of))

        if best_prefix == 0 or best_cumulative <= 0:
            break

        # Apply the best prefix of moves to the real partition.
        for node, _ in moves[:best_prefix]:
            if node in side_a:
                side_a.discard(node)
                side_b.add(node)
            else:
                side_b.discard(node)
                side_a.add(node)

    return side_a
