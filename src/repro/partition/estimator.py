"""Bisection-bandwidth estimation (drop-in replacement for METIS).

Figure 6b of the paper obtains the bisection bandwidth of regular
arrangements from closed-form formulas and estimates that of semi-regular
and irregular arrangements with METIS.  :func:`estimate_bisection_bandwidth`
plays the METIS role here: it runs a small portfolio of bisection
algorithms (spectral, BFS region growing from several seeds, each followed
by Kernighan–Lin and Fiduccia–Mattheyses refinement) and returns the best
balanced cut found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.model import ChipGraph, Node
from repro.partition.common import cut_size, is_balanced
from repro.partition.fiduccia_mattheyses import fiduccia_mattheyses_refine
from repro.partition.greedy import bfs_grow_partition, random_balanced_partition
from repro.partition.kernighan_lin import kernighan_lin_refine
from repro.partition.spectral import spectral_bisection
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BisectionResult:
    """The outcome of a balanced-bisection search."""

    cut_edges: int
    part: frozenset[Node]
    method: str

    @property
    def bisection_bandwidth(self) -> int:
        """The paper's bisection-bandwidth proxy: number of links cut."""
        return self.cut_edges


def _refined_candidates(
    graph: ChipGraph, initial: set[Node], method: str
) -> list[tuple[str, set[Node]]]:
    """The initial partition plus its KL- and FM-refined versions."""
    candidates = [(method, initial)]
    candidates.append((f"{method}+kl", kernighan_lin_refine(graph, initial)))
    candidates.append((f"{method}+fm", fiduccia_mattheyses_refine(graph, initial)))
    return candidates


def find_best_bisection(
    graph: ChipGraph,
    *,
    num_seeds: int = 4,
    seed: int = 0,
    use_spectral: bool = True,
) -> BisectionResult:
    """Search for the balanced bisection with the smallest cut.

    Parameters
    ----------
    graph:
        Graph to bisect; must have at least two nodes.
    num_seeds:
        Number of BFS-grown and random starting partitions (each refined
        with KL and FM).
    seed:
        Seed of the pseudo-random generator, for reproducible estimates.
    use_spectral:
        Include the spectral bisection (recommended; it is usually the
        strongest starting point on mesh-like graphs).
    """
    check_positive_int("num_seeds", num_seeds)
    if graph.num_nodes < 2:
        raise ValueError("cannot bisect a graph with fewer than two nodes")

    rng = random.Random(seed)
    nodes = graph.nodes()
    candidates: list[tuple[str, set[Node]]] = []

    if use_spectral:
        candidates.extend(_refined_candidates(graph, spectral_bisection(graph), "spectral"))

    seed_nodes = list(nodes)
    rng.shuffle(seed_nodes)
    for index in range(min(num_seeds, len(seed_nodes))):
        grown = bfs_grow_partition(graph, seed_nodes[index], rng=rng)
        if grown:
            candidates.extend(_refined_candidates(graph, grown, f"bfs[{index}]"))
    for index in range(num_seeds):
        random_part = random_balanced_partition(graph, rng)
        if random_part:
            candidates.extend(_refined_candidates(graph, random_part, f"random[{index}]"))

    best: BisectionResult | None = None
    for method, part in candidates:
        if not part or len(part) == graph.num_nodes:
            continue
        if not is_balanced(graph, part):
            continue
        cut = cut_size(graph, part)
        if best is None or cut < best.cut_edges:
            best = BisectionResult(cut_edges=cut, part=frozenset(part), method=method)
    if best is None:
        raise RuntimeError("no balanced bisection candidate was produced")
    return best


def estimate_bisection_bandwidth(
    graph: ChipGraph,
    *,
    num_seeds: int = 4,
    seed: int = 0,
) -> int:
    """Estimate the bisection bandwidth (minimum balanced cut) of a graph.

    This is the library's substitute for the METIS call in the paper: the
    number of D2D links that must be cut to split the chip into two halves
    of (nearly) equal chiplet count.
    """
    if graph.num_nodes == 1:
        return 0
    return find_best_bisection(graph, num_seeds=num_seeds, seed=seed).cut_edges
