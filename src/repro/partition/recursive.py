"""Recursive-bisection building blocks on node subsets.

The bisection portfolio of :mod:`repro.partition.estimator` operates on a
whole graph; recursive mappers (see :mod:`repro.workloads.mapping`) need to
bisect arbitrary *subsets* of a graph's nodes, including subsets whose
induced subgraph is disconnected or edge-free — situations the spectral
starting point was never designed for.  :func:`bisect_nodes` wraps the
portfolio with the induced-subgraph plumbing, a deterministic orientation
of the two sides and a plain sorted-half fallback so that recursion never
dies halfway down the tree.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.model import ChipGraph, Node
from repro.partition.estimator import find_best_bisection


def bisect_nodes(
    graph: ChipGraph,
    nodes: list[Node] | set[Node],
    *,
    seed: int = 0,
    num_seeds: int = 4,
) -> tuple[list[Node], list[Node]]:
    """Balanced bisection of the subgraph induced by ``nodes``.

    Returns two sorted node lists whose sizes differ by at most one.  The
    side containing the smallest node always comes first, which makes the
    recursion deterministic regardless of set iteration order.  Subsets the
    portfolio cannot handle (fewer than two nodes, numerically degenerate
    spectral problems) fall back to trivial or sorted-half splits.
    """
    ordered = sorted(nodes)
    if len(ordered) < 2:
        return ordered, []
    if len(ordered) == 2:
        return [ordered[0]], [ordered[1]]

    subgraph = graph.subgraph(ordered)
    part: set[Node]
    if subgraph.num_edges == 0:
        # Edge-free subgraphs make every balanced cut equivalent; skip the
        # portfolio entirely.
        part = set(ordered[: len(ordered) // 2])
    else:
        try:
            part = set(find_best_bisection(subgraph, seed=seed, num_seeds=num_seeds).part)
        except (ValueError, RuntimeError, FloatingPointError, np.linalg.LinAlgError):
            part = set(ordered[: len(ordered) // 2])

    side_a = sorted(part)
    side_b = sorted(set(ordered) - part)
    if side_b and (not side_a or side_b[0] < side_a[0]):
        side_a, side_b = side_b, side_a
    return side_a, side_b
