"""BFS region-growing partitions.

Growing one half of the bisection as a breadth-first region around a seed
vertex produces geometrically compact halves, which is an excellent
starting point for the refinement passes (and often already optimal on the
mesh-like graphs of chiplet arrangements).
"""

from __future__ import annotations

import random
from collections import deque

from repro.graphs.model import ChipGraph, Node
from repro.partition.common import balanced_target_size


def bfs_grow_partition(
    graph: ChipGraph,
    seed_node: Node | None = None,
    *,
    rng: random.Random | None = None,
) -> set[Node]:
    """Grow one balanced half of the graph by BFS from ``seed_node``.

    The returned set has exactly ``floor(n / 2)`` nodes.  When the BFS
    frontier empties before the target size is reached (disconnected
    graphs), arbitrary remaining nodes are added to reach the target size.
    """
    nodes = graph.nodes()
    if not nodes:
        raise ValueError("cannot partition an empty graph")
    if rng is None:
        rng = random.Random(0)
    if seed_node is None:
        seed_node = rng.choice(nodes)
    elif not graph.has_node(seed_node):
        raise KeyError(f"seed node {seed_node!r} is not in the graph")

    target = balanced_target_size(len(nodes))
    if target == 0:
        return set()

    part: set[Node] = set()
    visited: set[Node] = {seed_node}
    queue: deque[Node] = deque([seed_node])
    while queue and len(part) < target:
        current = queue.popleft()
        part.add(current)
        neighbours = graph.neighbors(current)
        rng.shuffle(neighbours)
        for neighbour in neighbours:
            if neighbour not in visited:
                visited.add(neighbour)
                queue.append(neighbour)
    if len(part) < target:
        for node in nodes:
            if node not in part:
                part.add(node)
                if len(part) == target:
                    break
    return part


def random_balanced_partition(graph: ChipGraph, rng: random.Random | None = None) -> set[Node]:
    """A uniformly random balanced half of the graph's nodes."""
    if rng is None:
        rng = random.Random(0)
    nodes = graph.nodes()
    if not nodes:
        raise ValueError("cannot partition an empty graph")
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    return set(shuffled[: balanced_target_size(len(nodes))])
