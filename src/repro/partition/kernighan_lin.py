"""Kernighan–Lin refinement of a balanced bisection.

The classic KL heuristic repeatedly finds a sequence of vertex *swaps*
(one vertex from each side) with maximum cumulative gain and applies the
best prefix of the sequence.  Because vertices are always exchanged in
pairs, the balance of the bisection is preserved exactly.
"""

from __future__ import annotations

from repro.graphs.model import ChipGraph, Node
from repro.partition.common import complement, validate_partition


def _gain(graph: ChipGraph, node: Node, own_side: set[Node]) -> int:
    """External minus internal degree of ``node`` with respect to its side."""
    external = 0
    internal = 0
    for neighbour in graph.neighbors(node):
        if neighbour in own_side:
            internal += 1
        else:
            external += 1
    return external - internal


def kernighan_lin_refine(
    graph: ChipGraph,
    part: set[Node],
    *,
    max_passes: int = 10,
) -> set[Node]:
    """Improve a balanced bisection with Kernighan–Lin passes.

    Parameters
    ----------
    graph:
        The graph to bisect.
    part:
        One side of the initial bisection (not modified).
    max_passes:
        Upper bound on the number of full KL passes; the refinement stops
        earlier as soon as a pass yields no improvement.

    Returns
    -------
    set
        The refined side with exactly ``len(part)`` nodes.
    """
    validate_partition(graph, set(part))
    side_a = set(part)
    side_b = complement(graph, side_a)

    for _ in range(max_passes):
        gains = {node: _gain(graph, node, side_a) for node in side_a}
        gains.update({node: _gain(graph, node, side_b) for node in side_b})
        locked: set[Node] = set()
        swap_sequence: list[tuple[Node, Node, int]] = []
        work_a, work_b = set(side_a), set(side_b)

        # Build the swap sequence for this pass.
        for _ in range(min(len(work_a), len(work_b))):
            best_swap: tuple[Node, Node] | None = None
            best_gain = None
            for node_a in work_a - locked:
                for node_b in work_b - locked:
                    connection = 1 if graph.has_edge(node_a, node_b) else 0
                    swap_gain = gains[node_a] + gains[node_b] - 2 * connection
                    if best_gain is None or swap_gain > best_gain:
                        best_gain = swap_gain
                        best_swap = (node_a, node_b)
            if best_swap is None:
                break
            node_a, node_b = best_swap
            swap_sequence.append((node_a, node_b, int(best_gain)))
            locked.update(best_swap)
            # Update gains as if the swap had been applied.
            work_a.discard(node_a)
            work_b.discard(node_b)
            work_a.add(node_b)
            work_b.add(node_a)
            for node in set(graph.neighbors(node_a)) | set(graph.neighbors(node_b)):
                if node in locked:
                    continue
                own_side = work_a if node in work_a else work_b
                gains[node] = _gain(graph, node, own_side)

        if not swap_sequence:
            break

        # Apply the prefix of the swap sequence with the best cumulative gain.
        cumulative = 0
        best_cumulative = 0
        best_prefix = 0
        for index, (_, _, swap_gain) in enumerate(swap_sequence, start=1):
            cumulative += swap_gain
            if cumulative > best_cumulative:
                best_cumulative = cumulative
                best_prefix = index
        if best_prefix == 0:
            break
        for node_a, node_b, _ in swap_sequence[:best_prefix]:
            side_a.discard(node_a)
            side_a.add(node_b)
            side_b.discard(node_b)
            side_b.add(node_a)

    return side_a
