"""Spectral (Fiedler-vector) bisection.

The eigenvector of the graph Laplacian associated with the second-smallest
eigenvalue (the Fiedler vector) orders the vertices along the "smoothest"
cut direction of the graph.  Splitting the ordering in the middle yields a
balanced bisection that is close to optimal on mesh-like graphs.  The dense
eigen-decomposition used here is entirely adequate for graphs with a few
hundred vertices.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.model import ChipGraph, Node
from repro.partition.common import balanced_target_size


def fiedler_vector(graph: ChipGraph) -> tuple[list[Node], np.ndarray]:
    """Return the node ordering and the Fiedler vector of the graph.

    The result is a pair ``(nodes, vector)`` where ``vector[i]`` is the
    Fiedler-vector entry of ``nodes[i]``.  Graphs with fewer than two nodes
    raise :class:`ValueError`.
    """
    nodes = graph.nodes()
    count = len(nodes)
    if count < 2:
        raise ValueError("the Fiedler vector requires at least two nodes")
    index = {node: i for i, node in enumerate(nodes)}
    laplacian = np.zeros((count, count), dtype=float)
    for first, second in graph.edges():
        i, j = index[first], index[second]
        laplacian[i, j] -= 1.0
        laplacian[j, i] -= 1.0
        laplacian[i, i] += 1.0
        laplacian[j, j] += 1.0
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # The smallest eigenvalue is (numerically) zero; the Fiedler vector is
    # the eigenvector of the second-smallest eigenvalue.
    order = np.argsort(eigenvalues)
    fiedler = eigenvectors[:, order[1]]
    return nodes, fiedler


def spectral_bisection(graph: ChipGraph) -> set[Node]:
    """Balanced bisection obtained by thresholding the Fiedler vector.

    The nodes are sorted by their Fiedler-vector entry and the first
    ``floor(n / 2)`` of them form the returned half.  Ties are broken by
    node order to keep the result deterministic.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise ValueError("cannot bisect a graph with fewer than two nodes")
    ordered_nodes, vector = fiedler_vector(graph)
    ranking = sorted(range(len(ordered_nodes)), key=lambda i: (vector[i], i))
    target = balanced_target_size(len(nodes))
    return {ordered_nodes[i] for i in ranking[:target]}
