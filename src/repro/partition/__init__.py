"""Balanced graph bisection (the library's METIS substitute).

The paper estimates the bisection bandwidth of semi-regular and irregular
arrangements with METIS [13].  METIS is a compiled C library; this package
provides a pure-Python portfolio of balanced-bisection algorithms that is
more than adequate for the small planar graphs of interest (at most a few
hundred vertices):

* :mod:`repro.partition.spectral` — Fiedler-vector (spectral) bisection,
* :mod:`repro.partition.kernighan_lin` — classic Kernighan–Lin swapping,
* :mod:`repro.partition.fiduccia_mattheyses` — FM single-move refinement
  with gain buckets,
* :mod:`repro.partition.greedy` — BFS region-growing used as a seed
  generator,
* :mod:`repro.partition.estimator` — the multi-start portfolio that keeps
  the best balanced cut; :func:`estimate_bisection_bandwidth` is the
  drop-in replacement for the paper's METIS call,
* :mod:`repro.partition.recursive` — node-subset bisection with robust
  fallbacks, the building block of recursive mappers
  (:mod:`repro.workloads.mapping`).
"""

from repro.partition.estimator import (
    BisectionResult,
    estimate_bisection_bandwidth,
    find_best_bisection,
)
from repro.partition.fiduccia_mattheyses import fiduccia_mattheyses_refine
from repro.partition.greedy import bfs_grow_partition
from repro.partition.kernighan_lin import kernighan_lin_refine
from repro.partition.recursive import bisect_nodes
from repro.partition.spectral import spectral_bisection

__all__ = [
    "BisectionResult",
    "bfs_grow_partition",
    "bisect_nodes",
    "estimate_bisection_bandwidth",
    "fiduccia_mattheyses_refine",
    "find_best_bisection",
    "kernighan_lin_refine",
    "spectral_bisection",
]
