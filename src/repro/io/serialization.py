"""JSON (de)serialisation of arrangements, design summaries and workloads."""

from __future__ import annotations

import json
from typing import Any

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.core.design import ChipletDesign
from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect
from repro.graphs.model import ChipGraph
from repro.workloads.taskgraph import TaskGraph


def arrangement_to_dict(arrangement: Arrangement) -> dict[str, Any]:
    """Convert an arrangement into a JSON-serialisable dictionary."""
    placement_data = None
    if arrangement.placement is not None:
        placement_data = [
            {
                "chiplet_id": chiplet.chiplet_id,
                "x": chiplet.rect.x,
                "y": chiplet.rect.y,
                "width": chiplet.rect.width,
                "height": chiplet.rect.height,
                "role": chiplet.role,
                "lattice_position": list(chiplet.lattice_position)
                if chiplet.lattice_position is not None
                else None,
            }
            for chiplet in arrangement.placement
        ]
    return {
        "kind": arrangement.kind.value,
        "regularity": arrangement.regularity.value,
        "num_chiplets": arrangement.num_chiplets,
        "chiplet_width": arrangement.chiplet_width,
        "chiplet_height": arrangement.chiplet_height,
        "violates_shape_constraints": arrangement.violates_shape_constraints,
        "edges": [[int(a), int(b)] for a, b in sorted(arrangement.graph.edges())],
        "placement": placement_data,
        "metadata": _jsonable_metadata(arrangement.metadata),
    }


def _jsonable_metadata(metadata: dict[str, Any]) -> dict[str, Any]:
    """Keep only JSON-representable metadata entries."""
    cleaned: dict[str, Any] = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        cleaned[key] = value
    return cleaned


def arrangement_from_dict(data: dict[str, Any]) -> Arrangement:
    """Rebuild an arrangement from :func:`arrangement_to_dict` output."""
    graph = ChipGraph(nodes=range(data["num_chiplets"]))
    for first, second in data["edges"]:
        graph.add_edge(int(first), int(second))

    placement = None
    if data.get("placement") is not None:
        placement = ChipletPlacement()
        for entry in data["placement"]:
            lattice = entry.get("lattice_position")
            placement.add(
                PlacedChiplet(
                    chiplet_id=int(entry["chiplet_id"]),
                    rect=Rect(
                        float(entry["x"]),
                        float(entry["y"]),
                        float(entry["width"]),
                        float(entry["height"]),
                    ),
                    role=entry.get("role", "compute"),
                    lattice_position=tuple(lattice) if lattice is not None else None,
                )
            )

    return Arrangement(
        kind=ArrangementKind.from_name(data["kind"]),
        regularity=Regularity.from_name(data["regularity"]),
        num_chiplets=int(data["num_chiplets"]),
        graph=graph,
        placement=placement,
        chiplet_width=float(data.get("chiplet_width", 1.0)),
        chiplet_height=float(data.get("chiplet_height", 1.0)),
        violates_shape_constraints=bool(data.get("violates_shape_constraints", False)),
        metadata=dict(data.get("metadata", {})),
    )


def save_arrangement_json(arrangement: Arrangement, path: str) -> None:
    """Write an arrangement to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(arrangement_to_dict(arrangement), handle, indent=2, sort_keys=True)


def load_arrangement_json(path: str) -> Arrangement:
    """Load an arrangement from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return arrangement_from_dict(json.load(handle))


def workload_to_dict(workload: TaskGraph) -> dict[str, Any]:
    """Convert a task graph into a JSON-serialisable dictionary."""
    return {
        "name": workload.name,
        "tasks": [
            {
                "task_id": task.task_id,
                "name": task.name,
                "compute_weight": task.compute_weight,
            }
            for task in workload.tasks()
        ],
        "edges": [
            {
                "source": edge.source,
                "destination": edge.destination,
                "traffic_flits": edge.traffic_flits,
            }
            for edge in workload.edges()
        ],
    }


def workload_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Rebuild a task graph from :func:`workload_to_dict` output."""
    workload = TaskGraph(str(data.get("name", "workload")))
    for entry in data["tasks"]:
        workload.add_task(
            int(entry["task_id"]),
            name=str(entry.get("name", "")),
            compute_weight=float(entry.get("compute_weight", 1.0)),
        )
    for entry in data["edges"]:
        workload.add_edge(
            int(entry["source"]),
            int(entry["destination"]),
            int(entry.get("traffic_flits", 1)),
        )
    workload.validate()
    return workload


def save_workload_json(workload: TaskGraph, path: str) -> None:
    """Write a task graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(workload_to_dict(workload), handle, indent=2, sort_keys=True)


def load_workload_json(path: str) -> TaskGraph:
    """Load a task graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return workload_from_dict(json.load(handle))


def design_to_dict(design: ChipletDesign) -> dict[str, Any]:
    """Serialise a design summary together with its arrangement."""
    return {
        "summary": design.summary(),
        "arrangement": arrangement_to_dict(design.arrangement),
        "parameters": {
            "total_chiplet_area_mm2": design.parameters.total_chiplet_area_mm2,
            "power_bump_fraction": design.parameters.power_bump_fraction,
            "bump_pitch_mm": design.parameters.link.bump_pitch_mm,
            "non_data_wires": design.parameters.link.non_data_wires,
            "frequency_hz": design.parameters.link.frequency_hz,
            "endpoints_per_chiplet": design.parameters.endpoints_per_chiplet,
            "link_latency_cycles": design.parameters.link_latency_cycles,
            "router_latency_cycles": design.parameters.router_latency_cycles,
        },
    }
