"""CSV helpers for experiment data series."""

from __future__ import annotations

import csv

from repro.evaluation.series import DataSeries


def write_series_csv(series_list: list[DataSeries], path: str, *, x_label: str = "x",
                     y_label: str = "y") -> None:
    """Write a list of series to a CSV file (columns: series, x, y)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, y_label])
        for series in series_list:
            for point in series.points:
                writer.writerow([series.name, point.x, point.y])


def read_series_csv(path: str) -> list[DataSeries]:
    """Read a CSV file produced by :func:`write_series_csv`."""
    series_map: dict[str, DataSeries] = {}
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or len(header) < 3:
            raise ValueError(f"{path} is not a series CSV file")
        for row in reader:
            if len(row) < 3:
                continue
            name, x, y = row[0], float(row[1]), float(row[2])
            series_map.setdefault(name, DataSeries(name=name)).add(x, y)
    return list(series_map.values())
