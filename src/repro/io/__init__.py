"""Serialisation and interoperability.

* :mod:`repro.io.serialization` — JSON round-trips of arrangements,
  design summaries and workload task graphs,
* :mod:`repro.io.booksim_export` — export of an arrangement as BookSim2
  ``anynet`` topology and configuration files, so the original simulator
  used by the paper can be run on exactly the topologies generated here,
* :mod:`repro.io.csvio` — CSV helpers for experiment results.
"""

from repro.io.booksim_export import booksim_anynet_file, booksim_config_file
from repro.io.csvio import read_series_csv, write_series_csv
from repro.io.serialization import (
    arrangement_from_dict,
    arrangement_to_dict,
    design_to_dict,
    load_arrangement_json,
    load_workload_json,
    save_arrangement_json,
    save_workload_json,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "arrangement_from_dict",
    "arrangement_to_dict",
    "booksim_anynet_file",
    "booksim_config_file",
    "design_to_dict",
    "load_arrangement_json",
    "load_workload_json",
    "read_series_csv",
    "save_arrangement_json",
    "save_workload_json",
    "workload_from_dict",
    "workload_to_dict",
    "write_series_csv",
]
