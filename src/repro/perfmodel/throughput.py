"""Channel-load saturation-throughput model.

Under uniform random traffic every endpoint sends to every other endpoint
with equal probability.  With minimal routing that splits evenly over all
shortest paths, the expected load of each directed inter-chiplet channel
can be computed exactly; the network saturates when the most-loaded channel
reaches unit utilisation (one flit per cycle), so

.. math::

   \\lambda_{sat} = \\frac{1}{\\max_c \\gamma_c}

where ``γ_c`` is the load of channel ``c`` per unit of per-endpoint
injection rate.  The result is the saturation throughput as a fraction of
the aggregate endpoint injection capacity — directly comparable to the
relative saturation throughput reported by the cycle-accurate simulator
and by BookSim2.
"""

from __future__ import annotations

from repro.graphs.metrics import bfs_distances
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig


def channel_loads_per_unit_injection(
    graph: ChipGraph, *, endpoints_per_chiplet: int = 2
) -> dict[tuple[int, int], float]:
    """Expected load of every directed channel per unit injection rate.

    The load is expressed in flits per cycle on the channel when every
    endpoint injects one flit per cycle (uniform random destinations,
    minimal routing with even splitting over shortest paths).

    Returns a mapping ``(u, v) -> load`` for every directed inter-chiplet
    channel.
    """
    if endpoints_per_chiplet < 1:
        raise ValueError("endpoints_per_chiplet must be >= 1")
    routers = sorted(graph.nodes())
    num_routers = len(routers)
    if routers != list(range(num_routers)):
        raise ValueError("channel-load analysis requires router ids 0 .. n-1")
    num_endpoints = num_routers * endpoints_per_chiplet
    if num_endpoints < 2:
        raise ValueError("channel-load analysis requires at least two endpoints")

    loads: dict[tuple[int, int], float] = {}
    for u in routers:
        for v in graph.neighbors(u):
            loads[(u, v)] = 0.0

    # Per-endpoint injection of 1 flit/cycle, uniformly spread over the
    # other endpoints: the flow from router s to a *different* router d is
    # e_per_chiplet (sources) * e_per_chiplet (destinations) / (E - 1).
    pair_flow = endpoints_per_chiplet * endpoints_per_chiplet / (num_endpoints - 1)

    for destination in routers:
        distances = bfs_distances(graph, destination)
        if len(distances) != num_routers:
            raise ValueError("channel-load analysis is undefined for disconnected graphs")
        # Process sources from the farthest to the nearest so that flow
        # accumulated at a node is complete before it is forwarded.
        order = sorted(
            (node for node in routers if node != destination),
            key=lambda node: -distances[node],
        )
        incoming = {node: 0.0 for node in routers}
        for node in order:
            flow = incoming[node] + pair_flow
            next_hops = [
                neighbour
                for neighbour in graph.neighbors(node)
                if distances[neighbour] == distances[node] - 1
            ]
            share = flow / len(next_hops)
            for neighbour in next_hops:
                loads[(node, neighbour)] += share
                if neighbour != destination:
                    incoming[neighbour] += share
    return loads


def saturation_throughput_fraction(
    graph: ChipGraph,
    config: SimulationConfig | None = None,
) -> float:
    """Saturation throughput as a fraction of the endpoint injection capacity.

    A value of ``x`` means the network can sustain every endpoint injecting
    ``x`` flits per cycle under uniform random traffic.  Single-chiplet
    networks (no inter-chiplet channel) are only limited by their local
    ports and return 1.0.
    """
    if config is None:
        config = SimulationConfig()
    if graph.num_edges == 0:
        return 1.0
    loads = channel_loads_per_unit_injection(
        graph, endpoints_per_chiplet=config.endpoints_per_chiplet
    )
    worst = max(loads.values())
    if worst <= 0.0:
        return 1.0
    return min(1.0, 1.0 / worst)


def bisection_limited_saturation_fraction(
    graph: ChipGraph,
    config: SimulationConfig | None = None,
    *,
    bisection_links: float | None = None,
    partition_seed: int = 0,
) -> float:
    """Bisection-limited saturation throughput fraction.

    Under uniform random traffic half of all traffic crosses any balanced
    bisection of the chip, split evenly between the two directions, so a
    bisection of ``B`` links bounds the per-endpoint injection rate at

    .. math::

       \\lambda_{sat} = \\min\\!\\left(1, \\frac{4 B}{E}\\right)

    with ``E`` endpoints.  This is the classical upper bound a well-balanced
    routing function can approach (dimension-ordered routing reaches it on a
    mesh); it is the throughput proxy the paper's discussion of Figure 7d is
    phrased in, so it is the default analytical throughput engine of the
    evaluation harness.  The more conservative
    :func:`saturation_throughput_fraction` (per-node even-split channel
    loads) and the cycle-accurate simulator are available as alternatives.

    Parameters
    ----------
    graph:
        Inter-chiplet topology.
    config:
        Simulation configuration (supplies the endpoints per chiplet).
    bisection_links:
        Pre-computed bisection bandwidth in links; when ``None`` it is
        estimated with the partitioning portfolio (the METIS substitute).
    partition_seed:
        Seed of the bisection estimator when it has to run.
    """
    if config is None:
        config = SimulationConfig()
    if graph.num_edges == 0 or graph.num_nodes < 2:
        return 1.0
    if bisection_links is None:
        # Imported lazily: repro.partition does not depend on repro.noc and
        # keeping it out of module import time avoids a cycle with callers
        # that only need the latency model.
        from repro.partition.estimator import estimate_bisection_bandwidth

        bisection_links = float(
            estimate_bisection_bandwidth(graph, seed=partition_seed)
        )
    num_endpoints = graph.num_nodes * config.endpoints_per_chiplet
    return min(1.0, 4.0 * bisection_links / num_endpoints)
