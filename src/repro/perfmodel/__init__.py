"""Analytical performance models.

The cycle-accurate simulator of :mod:`repro.noc` is the reference
methodology (it substitutes for BookSim2), but sweeping all chiplet counts
from 2 to 100 for three arrangement families is expensive in pure Python.
This package provides closed-form companions that capture the same
first-order behaviour:

* :func:`zero_load_latency_cycles` — average packet latency of an empty
  network: hop count times per-hop latency plus the endpoint overheads.
  At very low load the cycle-accurate simulator converges to exactly this
  value (the test-suite checks it).
* :func:`saturation_throughput_fraction` — the classical channel-load
  bound: under uniform traffic with minimal routing the network saturates
  when the most-loaded channel reaches unit utilisation.

The evaluation harness can use either engine (``mode="analytical"`` or
``mode="simulation"``); EXPERIMENTS.md records which one produced each
reported number.
"""

from repro.perfmodel.latency import zero_load_latency_cycles
from repro.perfmodel.throughput import (
    bisection_limited_saturation_fraction,
    channel_loads_per_unit_injection,
    saturation_throughput_fraction,
)

__all__ = [
    "bisection_limited_saturation_fraction",
    "channel_loads_per_unit_injection",
    "saturation_throughput_fraction",
    "zero_load_latency_cycles",
]
