"""Closed-form zero-load latency.

In an empty network a packet experiences no contention, so its latency is
fully determined by its path:

* one local (endpoint-to-router) channel traversal on injection and one
  (router-to-endpoint) on ejection,
* one router traversal per router on the path (``hops + 1`` routers),
* one inter-chiplet link traversal per hop, and
* the serialisation delay of its body flits.

Averaging over all ordered endpoint pairs — including the pairs that share
a chiplet and therefore traverse a single router — gives the value the
cycle-accurate simulator converges to at very low injection rates.
"""

from __future__ import annotations

from repro.graphs.metrics import bfs_distances
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig


def packet_path_latency_cycles(hops: int, config: SimulationConfig) -> float:
    """Zero-load latency of a packet whose routers are ``hops`` links apart."""
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    routers_on_path = hops + 1
    return (
        2 * config.local_latency_cycles
        + routers_on_path * config.router_latency_cycles
        + hops * config.link_latency_cycles
        + (config.packet_size_flits - 1)
    )


def zero_load_latency_cycles(
    graph: ChipGraph, config: SimulationConfig | None = None
) -> float:
    """Average zero-load packet latency over all ordered endpoint pairs.

    Parameters
    ----------
    graph:
        Inter-chiplet topology (one router per chiplet).
    config:
        Simulation configuration supplying the latency components and the
        number of endpoints per chiplet.  Defaults to the paper's setup.
    """
    if config is None:
        config = SimulationConfig()
    num_routers = graph.num_nodes
    endpoints_per_chiplet = config.endpoints_per_chiplet
    num_endpoints = num_routers * endpoints_per_chiplet
    if num_endpoints < 2:
        raise ValueError("zero-load latency requires at least two endpoints")

    total_latency = 0.0
    total_pairs = 0

    # Pairs of endpoints sharing a chiplet: zero network hops.
    same_router_pairs = num_routers * endpoints_per_chiplet * (endpoints_per_chiplet - 1)
    if same_router_pairs:
        total_latency += same_router_pairs * packet_path_latency_cycles(0, config)
        total_pairs += same_router_pairs

    # Pairs on different chiplets: weight each router pair by the number of
    # endpoint pairs it carries.
    pair_weight = endpoints_per_chiplet * endpoints_per_chiplet
    for source in graph.nodes():
        distances = bfs_distances(graph, source)
        if len(distances) != num_routers:
            raise ValueError("zero-load latency is undefined for disconnected graphs")
        for destination, hops in distances.items():
            if destination == source:
                continue
            total_latency += pair_weight * packet_path_latency_cycles(hops, config)
            total_pairs += pair_weight

    return total_latency / total_pairs
