"""Distance and degree metrics of inter-chiplet graphs.

The paper uses the *network diameter* as the latency proxy and degree
statistics ("average number of neighbours per chiplet") to motivate the
brickwall and HexaMesh arrangements.  All metrics are computed with plain
breadth-first searches, which is exact and fast for the graph sizes of
interest (hundreds of nodes).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.graphs.model import ChipGraph, Node


def bfs_distances(graph: ChipGraph, source: Node) -> dict[Node, int]:
    """Hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise KeyError(f"source node {source!r} is not in the graph")
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbour in graph.neighbors(current):
            if neighbour not in distances:
                distances[neighbour] = distances[current] + 1
                queue.append(neighbour)
    return distances


def all_pairs_distances(graph: ChipGraph) -> dict[Node, dict[Node, int]]:
    """Hop distances between every pair of nodes (BFS from every node)."""
    return {node: bfs_distances(graph, node) for node in graph.nodes()}


def is_connected(graph: ChipGraph) -> bool:
    """Return ``True`` if the graph is connected (or has at most one node)."""
    nodes = graph.nodes()
    if len(nodes) <= 1:
        return True
    return len(bfs_distances(graph, nodes[0])) == len(nodes)


def eccentricities(graph: ChipGraph) -> dict[Node, int]:
    """Eccentricity of every node (max distance to any other node).

    Raises :class:`ValueError` for disconnected graphs because eccentricity
    is undefined there.
    """
    nodes = graph.nodes()
    result: dict[Node, int] = {}
    for node in nodes:
        distances = bfs_distances(graph, node)
        if len(distances) != len(nodes):
            raise ValueError("eccentricities are undefined for disconnected graphs")
        result[node] = max(distances.values()) if distances else 0
    return result


def diameter(graph: ChipGraph) -> int:
    """Network diameter: the largest hop distance between any two nodes.

    A single-node graph has diameter 0.  Disconnected graphs raise
    :class:`ValueError`.
    """
    if graph.num_nodes == 0:
        raise ValueError("the diameter of an empty graph is undefined")
    if graph.num_nodes == 1:
        return 0
    return max(eccentricities(graph).values())


def radius(graph: ChipGraph) -> int:
    """Network radius: the smallest eccentricity over all nodes."""
    if graph.num_nodes == 0:
        raise ValueError("the radius of an empty graph is undefined")
    if graph.num_nodes == 1:
        return 0
    return min(eccentricities(graph).values())


def average_distance(graph: ChipGraph) -> float:
    """Mean hop distance over all ordered pairs of distinct nodes.

    This is the quantity that dominates zero-load latency under uniform
    random traffic.  Single-node graphs return ``0.0``.
    """
    nodes = graph.nodes()
    if len(nodes) <= 1:
        return 0.0
    total = 0
    pairs = 0
    for node in nodes:
        distances = bfs_distances(graph, node)
        if len(distances) != len(nodes):
            raise ValueError("average distance is undefined for disconnected graphs")
        total += sum(d for other, d in distances.items() if other != node)
        pairs += len(nodes) - 1
    return total / pairs


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of the node-degree distribution of a graph."""

    minimum: int
    maximum: int
    average: float

    @classmethod
    def of(cls, graph: ChipGraph) -> "DegreeStatistics":
        """Compute the degree statistics of ``graph``."""
        degrees = list(graph.degrees().values())
        if not degrees:
            raise ValueError("degree statistics of an empty graph are undefined")
        return cls(
            minimum=min(degrees),
            maximum=max(degrees),
            average=sum(degrees) / len(degrees),
        )


def degree_statistics(graph: ChipGraph) -> DegreeStatistics:
    """Convenience wrapper around :meth:`DegreeStatistics.of`."""
    return DegreeStatistics.of(graph)


def planar_average_degree_bound(num_nodes: int) -> float:
    """Upper bound ``6 - 12/v`` on the average degree of a planar graph.

    Derived in Section IV-A of the paper from ``e <= 3 v - 6``.  Only valid
    for ``v >= 3``.
    """
    if num_nodes < 3:
        raise ValueError("the planar bound 6 - 12/v requires at least 3 vertices")
    return 6.0 - 12.0 / num_nodes


@dataclass(frozen=True)
class GraphMetrics:
    """Bundle of the graph-level metrics the evaluation reports."""

    num_nodes: int
    num_edges: int
    diameter: int
    radius: int
    average_distance: float
    degree: DegreeStatistics

    @property
    def average_degree(self) -> float:
        """Average number of neighbours per chiplet."""
        return self.degree.average


def compute_metrics(graph: ChipGraph) -> GraphMetrics:
    """Compute every metric of :class:`GraphMetrics` in one pass."""
    if graph.num_nodes == 0:
        raise ValueError("metrics of an empty graph are undefined")
    if graph.num_nodes == 1:
        return GraphMetrics(
            num_nodes=1,
            num_edges=0,
            diameter=0,
            radius=0,
            average_distance=0.0,
            degree=DegreeStatistics(minimum=0, maximum=0, average=0.0),
        )
    nodes = graph.nodes()
    eccentricity_values: list[int] = []
    total_distance = 0
    pair_count = 0
    for node in nodes:
        distances = bfs_distances(graph, node)
        if len(distances) != len(nodes):
            raise ValueError("metrics are undefined for disconnected graphs")
        eccentricity_values.append(max(distances.values()))
        total_distance += sum(d for other, d in distances.items() if other != node)
        pair_count += len(nodes) - 1
    return GraphMetrics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        diameter=max(eccentricity_values),
        radius=min(eccentricity_values),
        average_distance=total_distance / pair_count,
        degree=DegreeStatistics.of(graph),
    )


def hop_histogram(graph: ChipGraph) -> dict[int, int]:
    """Histogram of hop distances over all unordered node pairs.

    Useful to reason about latency distributions rather than just the mean.
    """
    nodes = graph.nodes()
    histogram: dict[int, int] = {}
    for index, node in enumerate(nodes):
        distances = bfs_distances(graph, node)
        for other in nodes[index + 1 :]:
            if other not in distances:
                raise ValueError("hop histogram is undefined for disconnected graphs")
            hops = distances[other]
            histogram[hops] = histogram.get(hops, 0) + 1
    return dict(sorted(histogram.items()))


def path_length_percentile(graph: ChipGraph, percentile: float) -> int:
    """The ``percentile``-th percentile (0..100) of pairwise hop distances."""
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    histogram = hop_histogram(graph)
    if not histogram:
        return 0
    total = sum(histogram.values())
    threshold = math.ceil(total * percentile / 100.0)
    cumulative = 0
    for hops, count in histogram.items():
        cumulative += count
        if cumulative >= threshold:
            return hops
    return max(histogram)
