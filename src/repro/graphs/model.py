"""A light-weight undirected graph used to represent inter-chiplet networks.

The class deliberately avoids depending on ``networkx`` so that the hot
paths of the library (arrangement sweeps, BFS metrics, partitioning and the
cycle-accurate simulator) operate on plain dictionaries and lists.  A
converter to ``networkx`` is provided for interoperability and for
cross-checking results in the test-suite.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable


class ChipGraph:
    """An undirected simple graph with hashable node identifiers.

    Nodes are usually the integer chiplet ids produced by the arrangement
    generators.  Self-loops and parallel edges are rejected because they
    have no physical meaning for inter-chiplet links.
    """

    def __init__(self, nodes: Iterable[Node] | None = None,
                 edges: Iterable[tuple[Node, Node]] | None = None) -> None:
        self._adjacency: dict[Node, set[Node]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for first, second in edges:
                self.add_edge(first, second)

    # -- construction ---------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Insert a node; adding an existing node is a no-op."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, first: Node, second: Node) -> None:
        """Insert an undirected edge, creating the endpoints if needed."""
        if first == second:
            raise ValueError(f"self-loops are not allowed (node {first!r})")
        self.add_node(first)
        self.add_node(second)
        self._adjacency[first].add(second)
        self._adjacency[second].add(first)

    def remove_edge(self, first: Node, second: Node) -> None:
        """Remove an undirected edge; raises ``KeyError`` if it is absent."""
        if second not in self._adjacency.get(first, set()):
            raise KeyError(f"edge ({first!r}, {second!r}) is not in the graph")
        self._adjacency[first].discard(second)
        self._adjacency[second].discard(first)

    @classmethod
    def from_edge_list(cls, edges: Iterable[tuple[Node, Node]],
                       nodes: Iterable[Node] | None = None) -> "ChipGraph":
        """Build a graph from an edge list (and optional isolated nodes)."""
        return cls(nodes=nodes, edges=edges)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[Node, Iterable[Node]]) -> "ChipGraph":
        """Build a graph from an adjacency mapping ``node -> neighbours``."""
        graph = cls(nodes=adjacency.keys())
        for node, neighbours in adjacency.items():
            for neighbour in neighbours:
                if node != neighbour:
                    graph.add_edge(node, neighbour)
        return graph

    def copy(self) -> "ChipGraph":
        """Return an independent copy of the graph."""
        clone = ChipGraph()
        clone._adjacency = {node: set(neigh) for node, neigh in self._adjacency.items()}
        return clone

    # -- basic queries --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neigh) for neigh in self._adjacency.values()) // 2

    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._adjacency.keys())

    def edges(self) -> list[tuple[Node, Node]]:
        """All undirected edges, each reported once as a sorted pair."""
        seen: set[frozenset[Node]] = set()
        result: list[tuple[Node, Node]] = []
        for node, neighbours in self._adjacency.items():
            for neighbour in neighbours:
                key = frozenset((node, neighbour))
                if key not in seen:
                    seen.add(key)
                    pair = tuple(sorted((node, neighbour), key=repr))
                    result.append((pair[0], pair[1]))
        result.sort(key=repr)
        return result

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if the node is present."""
        return node in self._adjacency

    def has_edge(self, first: Node, second: Node) -> bool:
        """Return ``True`` if the undirected edge is present."""
        return second in self._adjacency.get(first, set())

    def neighbors(self, node: Node) -> list[Node]:
        """Neighbours of a node (raises ``KeyError`` for unknown nodes)."""
        if node not in self._adjacency:
            raise KeyError(f"node {node!r} is not in the graph")
        return list(self._adjacency[node])

    def degree(self, node: Node) -> int:
        """Number of neighbours of a node."""
        if node not in self._adjacency:
            raise KeyError(f"node {node!r} is not in the graph")
        return len(self._adjacency[node])

    def degrees(self) -> dict[Node, int]:
        """Mapping of every node to its degree."""
        return {node: len(neigh) for node, neigh in self._adjacency.items()}

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChipGraph(nodes={self.num_nodes}, edges={self.num_edges})"

    # -- derived graphs -------------------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "ChipGraph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._adjacency)
        if missing:
            raise KeyError(f"nodes {sorted(missing, key=repr)!r} are not in the graph")
        sub = ChipGraph(nodes=keep)
        for node in keep:
            for neighbour in self._adjacency[node]:
                if neighbour in keep:
                    sub.add_edge(node, neighbour)
        return sub

    def relabeled(self, mapping: Mapping[Node, Node]) -> "ChipGraph":
        """Return a copy with nodes renamed according to ``mapping``."""
        missing = set(self._adjacency) - set(mapping)
        if missing:
            raise KeyError(f"mapping is missing nodes {sorted(missing, key=repr)!r}")
        if len(set(mapping[node] for node in self._adjacency)) != self.num_nodes:
            raise ValueError("relabeling mapping must be injective on the graph nodes")
        relabeled = ChipGraph(nodes=(mapping[node] for node in self._adjacency))
        for first, second in self.edges():
            relabeled.add_edge(mapping[first], mapping[second])
        return relabeled

    def cut_size(self, part: Iterable[Node]) -> int:
        """Number of edges crossing between ``part`` and the rest of the graph."""
        inside = set(part)
        crossing = 0
        for node in inside:
            if node not in self._adjacency:
                raise KeyError(f"node {node!r} is not in the graph")
            for neighbour in self._adjacency[node]:
                if neighbour not in inside:
                    crossing += 1
        return crossing

    # -- interoperability -----------------------------------------------------

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (used for cross-validation)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "ChipGraph":
        """Build a :class:`ChipGraph` from a :class:`networkx.Graph`."""
        return cls(nodes=graph.nodes(), edges=graph.edges())
