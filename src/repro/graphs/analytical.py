"""Closed-form performance-proxy formulas of Section IV-D.

For *regular* arrangements the paper gives exact formulas for the network
diameter and the bisection bandwidth as a function of the chiplet count
``N``:

========== =============================== =============================
Arrangement Diameter                        Bisection bandwidth
========== =============================== =============================
Grid        ``2 sqrt(N) - 2``               ``sqrt(N)``
Brickwall   ``2 sqrt(N) - 2 - floor((sqrt(N)-1)/2)``  ``2 sqrt(N) - 1``
Honeycomb   same as brickwall               same as brickwall
HexaMesh    ``sqrt(12 N - 3)/3 - 1``        ``2 sqrt(12 N - 3)/3 - 1``
========== =============================== =============================

The formulas require ``N`` to admit a regular arrangement (a perfect square
for grid/brickwall/honeycomb, a centred hexagonal number for HexaMesh).
The asymptotic ratios quoted in the abstract (diameter −42 %, bisection
+130 %) follow from the limits ``1/sqrt(3)`` and ``4/sqrt(3)``.
"""

from __future__ import annotations

import math

from repro.utils.mathutils import is_hexamesh_count, is_perfect_square
from repro.utils.validation import check_in_choices, check_positive_int

#: Arrangement identifiers accepted by the formula helpers.
ANALYTICAL_KINDS = ("grid", "brickwall", "honeycomb", "hexamesh")


def _require_regular_count(kind: str, num_chiplets: int) -> None:
    """Validate that ``num_chiplets`` admits a regular ``kind`` arrangement."""
    check_positive_int("num_chiplets", num_chiplets)
    if kind in ("grid", "brickwall", "honeycomb"):
        if not is_perfect_square(num_chiplets):
            raise ValueError(
                f"a regular {kind} requires a perfect-square chiplet count, "
                f"got {num_chiplets}"
            )
    else:
        if not is_hexamesh_count(num_chiplets):
            raise ValueError(
                "a regular hexamesh requires a centred hexagonal chiplet count "
                f"1 + 3r(r+1), got {num_chiplets}"
            )


def grid_diameter(num_chiplets: int) -> int:
    """Diameter of a regular grid: ``2 sqrt(N) - 2``."""
    _require_regular_count("grid", num_chiplets)
    side = math.isqrt(num_chiplets)
    return 2 * side - 2


def brickwall_diameter(num_chiplets: int) -> int:
    """Diameter of a regular brickwall: ``2 sqrt(N) - 2 - floor((sqrt(N)-1)/2)``."""
    _require_regular_count("brickwall", num_chiplets)
    side = math.isqrt(num_chiplets)
    return 2 * side - 2 - (side - 1) // 2


def honeycomb_diameter(num_chiplets: int) -> int:
    """Diameter of a regular honeycomb (identical to the brickwall)."""
    _require_regular_count("honeycomb", num_chiplets)
    return brickwall_diameter(num_chiplets)


def hexamesh_diameter(num_chiplets: int) -> int:
    """Diameter of a regular HexaMesh: ``sqrt(12 N - 3)/3 - 1``.

    For ``N = 1 + 3 r (r + 1)`` the expression simplifies to the integer
    ``2 r`` (opposite corners of the hexagon are ``2 r`` hops apart).
    """
    _require_regular_count("hexamesh", num_chiplets)
    value = math.sqrt(12 * num_chiplets - 3) / 3.0 - 1.0
    return round(value)


def grid_bisection_bandwidth(num_chiplets: int) -> float:
    """Bisection bandwidth (in links) of a regular grid: ``sqrt(N)``."""
    _require_regular_count("grid", num_chiplets)
    return float(math.isqrt(num_chiplets))


def brickwall_bisection_bandwidth(num_chiplets: int) -> float:
    """Bisection bandwidth of a regular brickwall: ``2 sqrt(N) - 1``."""
    _require_regular_count("brickwall", num_chiplets)
    return 2.0 * math.isqrt(num_chiplets) - 1.0


def honeycomb_bisection_bandwidth(num_chiplets: int) -> float:
    """Bisection bandwidth of a regular honeycomb (identical to the brickwall)."""
    _require_regular_count("honeycomb", num_chiplets)
    return brickwall_bisection_bandwidth(num_chiplets)


def hexamesh_bisection_bandwidth(num_chiplets: int) -> float:
    """Bisection bandwidth of a regular HexaMesh: ``2 sqrt(12 N - 3)/3 - 1``."""
    _require_regular_count("hexamesh", num_chiplets)
    return 2.0 * math.sqrt(12 * num_chiplets - 3) / 3.0 - 1.0


_DIAMETER_FORMULAS = {
    "grid": grid_diameter,
    "brickwall": brickwall_diameter,
    "honeycomb": honeycomb_diameter,
    "hexamesh": hexamesh_diameter,
}

_BISECTION_FORMULAS = {
    "grid": grid_bisection_bandwidth,
    "brickwall": brickwall_bisection_bandwidth,
    "honeycomb": honeycomb_bisection_bandwidth,
    "hexamesh": hexamesh_bisection_bandwidth,
}


def diameter_formula(kind: str, num_chiplets: int) -> int:
    """Closed-form diameter of a regular arrangement of the given kind."""
    check_in_choices("kind", kind, ANALYTICAL_KINDS)
    return _DIAMETER_FORMULAS[kind](num_chiplets)


def bisection_bandwidth_formula(kind: str, num_chiplets: int) -> float:
    """Closed-form bisection bandwidth of a regular arrangement of the given kind."""
    check_in_choices("kind", kind, ANALYTICAL_KINDS)
    return _BISECTION_FORMULAS[kind](num_chiplets)


def has_regular_arrangement(kind: str, num_chiplets: int) -> bool:
    """Return ``True`` when ``num_chiplets`` admits a regular arrangement of ``kind``."""
    check_in_choices("kind", kind, ANALYTICAL_KINDS)
    check_positive_int("num_chiplets", num_chiplets)
    if kind in ("grid", "brickwall", "honeycomb"):
        return is_perfect_square(num_chiplets)
    return is_hexamesh_count(num_chiplets)


def asymptotic_diameter_ratio(kind: str) -> float:
    """Limit of ``D_kind(N) / D_grid(N)`` for ``N`` going to infinity.

    The paper derives ``3/4`` for the brickwall (a 25 % reduction) and
    ``1/sqrt(3)`` for the HexaMesh (a 42 % reduction).
    """
    check_in_choices("kind", kind, ANALYTICAL_KINDS)
    if kind == "grid":
        return 1.0
    if kind in ("brickwall", "honeycomb"):
        return 3.0 / 4.0
    return 1.0 / math.sqrt(3.0)


def asymptotic_bisection_ratio(kind: str) -> float:
    """Limit of ``B_kind(N) / B_grid(N)`` for ``N`` going to infinity.

    The paper derives ``2`` for the brickwall (a 100 % improvement) and
    ``4/sqrt(3)`` for the HexaMesh (a 130 % improvement).
    """
    check_in_choices("kind", kind, ANALYTICAL_KINDS)
    if kind == "grid":
        return 1.0
    if kind in ("brickwall", "honeycomb"):
        return 2.0
    return 4.0 / math.sqrt(3.0)


def asymptotic_diameter_reduction_percent(kind: str) -> float:
    """Asymptotic diameter reduction vs. the grid, in percent (42 for HexaMesh)."""
    return (1.0 - asymptotic_diameter_ratio(kind)) * 100.0


def asymptotic_bisection_improvement_percent(kind: str) -> float:
    """Asymptotic bisection-bandwidth improvement vs. the grid, in percent (130 for HexaMesh)."""
    return (asymptotic_bisection_ratio(kind) - 1.0) * 100.0
