"""Graph representation of 2.5D stacked chips and network metrics.

Section III-C of the paper represents a 2.5D chip as a planar graph whose
vertices are chiplets and whose edges are D2D links between chiplets that
share an edge.  This package provides:

* :mod:`repro.graphs.model` — a light-weight undirected graph class,
* :mod:`repro.graphs.metrics` — BFS-based distance metrics (diameter,
  eccentricity, average distance) and degree statistics,
* :mod:`repro.graphs.analytical` — the paper's closed-form formulas for the
  diameter and bisection bandwidth of regular arrangements and their
  asymptotic ratios.
"""

from repro.graphs.analytical import (
    asymptotic_bisection_ratio,
    asymptotic_diameter_ratio,
    bisection_bandwidth_formula,
    diameter_formula,
)
from repro.graphs.metrics import (
    DegreeStatistics,
    GraphMetrics,
    all_pairs_distances,
    average_distance,
    bfs_distances,
    compute_metrics,
    degree_statistics,
    diameter,
    eccentricities,
    is_connected,
)
from repro.graphs.model import ChipGraph

__all__ = [
    "ChipGraph",
    "DegreeStatistics",
    "GraphMetrics",
    "all_pairs_distances",
    "asymptotic_bisection_ratio",
    "asymptotic_diameter_ratio",
    "average_distance",
    "bfs_distances",
    "bisection_bandwidth_formula",
    "compute_metrics",
    "degree_statistics",
    "diameter",
    "diameter_formula",
    "eccentricities",
    "is_connected",
]
