"""Wafer geometry and per-die silicon cost."""

from __future__ import annotations

import math

from repro.utils.validation import check_positive


def dies_per_wafer(die_area_mm2: float, wafer_diameter_mm: float = 300.0) -> int:
    """Gross dies per wafer using the classic edge-corrected approximation.

    ``DPW = π (d/2)² / A − π d / sqrt(2 A)`` — the first term is the wafer
    area divided by the die area, the second corrects for partial dies at
    the wafer edge.
    """
    check_positive("die_area_mm2", die_area_mm2)
    check_positive("wafer_diameter_mm", wafer_diameter_mm)
    radius = wafer_diameter_mm / 2.0
    gross = math.pi * radius * radius / die_area_mm2
    edge_loss = math.pi * wafer_diameter_mm / math.sqrt(2.0 * die_area_mm2)
    return max(0, int(math.floor(gross - edge_loss)))


def die_cost(
    die_area_mm2: float,
    wafer_cost: float,
    die_yield: float,
    *,
    wafer_diameter_mm: float = 300.0,
) -> float:
    """Cost of one *good* die: wafer cost spread over the yielded dies."""
    check_positive("wafer_cost", wafer_cost)
    if not 0.0 < die_yield <= 1.0:
        raise ValueError(f"die_yield must be in (0, 1], got {die_yield}")
    per_wafer = dies_per_wafer(die_area_mm2, wafer_diameter_mm)
    if per_wafer == 0:
        raise ValueError(
            f"a die of {die_area_mm2} mm² does not fit on a {wafer_diameter_mm} mm wafer"
        )
    return wafer_cost / (per_wafer * die_yield)
