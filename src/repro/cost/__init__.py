"""Manufacturing-cost extension.

The paper motivates 2.5D integration economically (Section I) and cites
Chiplet Actuary [17] as an orthogonal cost model that "could be applied
together with our evaluation methodology to compare architectures both in
terms of cost and performance".  This package implements that extension: a
quantitative yield and cost model in the spirit of Chiplet Actuary that can
be combined with the performance results of the evaluation harness.

* :mod:`repro.cost.yield_model` — negative-binomial defect yield and
  known-good-die probability,
* :mod:`repro.cost.wafer` — dies per wafer and per-die silicon cost,
* :mod:`repro.cost.manufacturing` — recurring / non-recurring cost of a
  monolithic chip versus a chiplet-based design, including packaging,
  bonding yield and the PHY area overhead of D2D links.
"""

from repro.cost.manufacturing import (
    ChipletCostBreakdown,
    CostModelParameters,
    MonolithicCostBreakdown,
    compare_monolithic_vs_chiplets,
)
from repro.cost.wafer import die_cost, dies_per_wafer
from repro.cost.yield_model import known_good_die_yield, negative_binomial_yield

__all__ = [
    "ChipletCostBreakdown",
    "CostModelParameters",
    "MonolithicCostBreakdown",
    "compare_monolithic_vs_chiplets",
    "die_cost",
    "dies_per_wafer",
    "known_good_die_yield",
    "negative_binomial_yield",
]
