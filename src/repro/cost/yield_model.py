"""Defect-limited yield models.

The standard negative-binomial yield model expresses the probability that
a die of area ``A`` (cm²) manufactured in a process with defect density
``D0`` (defects/cm²) and clustering parameter ``α`` is functional:

.. math::

   Y = \\left(1 + \\frac{A \\, D_0}{\\alpha}\\right)^{-\\alpha}

Smaller dies yield better, which is the quantitative core of the paper's
"improved yield" argument for 2.5D integration: a single defect kills a
whole monolithic die but only one small chiplet.
"""

from __future__ import annotations

from repro.utils.validation import check_fraction, check_non_negative, check_positive


def negative_binomial_yield(
    die_area_mm2: float,
    defect_density_per_cm2: float,
    clustering_alpha: float = 3.0,
) -> float:
    """Functional-die probability under the negative-binomial model.

    Parameters
    ----------
    die_area_mm2:
        Die area in mm² (converted internally to cm²).
    defect_density_per_cm2:
        Average defect density ``D0`` in defects per cm².
    clustering_alpha:
        Defect-clustering parameter ``α``; 3 is a common default for
        modern processes.
    """
    check_non_negative("die_area_mm2", die_area_mm2)
    check_non_negative("defect_density_per_cm2", defect_density_per_cm2)
    check_positive("clustering_alpha", clustering_alpha)
    area_cm2 = die_area_mm2 / 100.0
    return float(
        (1.0 + area_cm2 * defect_density_per_cm2 / clustering_alpha) ** (-clustering_alpha)
    )


def known_good_die_yield(die_yield: float, test_coverage: float = 1.0) -> float:
    """Probability that a die shipped to assembly is actually good.

    Imperfect wafer-level testing lets a fraction of defective dies slip
    through; with test coverage ``c`` the known-good-die (KGD) probability
    is ``Y / (Y + (1 - Y) * (1 - c))``.
    """
    check_fraction("die_yield", die_yield)
    check_fraction("test_coverage", test_coverage)
    escaped_defects = (1.0 - die_yield) * (1.0 - test_coverage)
    if die_yield + escaped_defects == 0.0:
        return 0.0
    return die_yield / (die_yield + escaped_defects)


def assembly_yield(num_chiplets: int, per_bond_yield: float = 0.99) -> float:
    """Probability that all chiplets of a package are bonded successfully."""
    if num_chiplets < 1:
        raise ValueError(f"num_chiplets must be >= 1, got {num_chiplets}")
    check_fraction("per_bond_yield", per_bond_yield)
    return float(per_bond_yield**num_chiplets)
