"""Monolithic-versus-chiplet manufacturing cost comparison.

A Chiplet Actuary-style recurring-cost model: the total silicon is either
one monolithic die or ``N`` chiplets (plus the PHY area overhead every D2D
link adds to both of its endpoints), assembled on an organic substrate or a
silicon interposer.  Non-recurring engineering (NRE) cost is amortised over
the production volume; chiplet reuse lets several designs share one set of
masks, which the model exposes as a simple reuse factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.wafer import die_cost
from repro.cost.yield_model import assembly_yield, known_good_die_yield, negative_binomial_yield
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class CostModelParameters:
    """Inputs of the cost comparison.

    Parameters
    ----------
    total_logic_area_mm2:
        Silicon area of the functionality itself (excluding PHY overhead);
        the paper's evaluation uses 800 mm².
    defect_density_per_cm2:
        Process defect density used by the yield model.
    wafer_cost:
        Cost of one processed wafer (arbitrary currency unit).
    wafer_diameter_mm:
        Wafer diameter.
    phy_area_per_link_mm2:
        Area one D2D link's PHY adds to each of its two chiplets.
    package_substrate_cost_per_mm2:
        Cost of the package substrate / interposer per mm² of assembled
        silicon.
    bond_yield:
        Per-chiplet bonding success probability during assembly.
    test_coverage:
        Wafer-level test coverage feeding the known-good-die model.
    nre_cost_monolithic / nre_cost_per_chiplet_design:
        Non-recurring cost of designing and masking a monolithic chip or a
        single chiplet design.
    production_volume:
        Number of units over which NRE is amortised.
    chiplet_reuse_factor:
        How many products share the chiplet's NRE (AMD-style reuse).
    """

    total_logic_area_mm2: float = 800.0
    defect_density_per_cm2: float = 0.1
    wafer_cost: float = 10_000.0
    wafer_diameter_mm: float = 300.0
    phy_area_per_link_mm2: float = 0.25
    package_substrate_cost_per_mm2: float = 0.05
    bond_yield: float = 0.99
    test_coverage: float = 0.98
    nre_cost_monolithic: float = 50e6
    nre_cost_per_chiplet_design: float = 20e6
    production_volume: int = 1_000_000
    chiplet_reuse_factor: float = 2.0

    def __post_init__(self) -> None:
        check_positive("total_logic_area_mm2", self.total_logic_area_mm2)
        check_non_negative("defect_density_per_cm2", self.defect_density_per_cm2)
        check_positive("wafer_cost", self.wafer_cost)
        check_positive("wafer_diameter_mm", self.wafer_diameter_mm)
        check_non_negative("phy_area_per_link_mm2", self.phy_area_per_link_mm2)
        check_non_negative("package_substrate_cost_per_mm2", self.package_substrate_cost_per_mm2)
        check_fraction("bond_yield", self.bond_yield)
        check_fraction("test_coverage", self.test_coverage)
        check_non_negative("nre_cost_monolithic", self.nre_cost_monolithic)
        check_non_negative("nre_cost_per_chiplet_design", self.nre_cost_per_chiplet_design)
        check_positive_int("production_volume", self.production_volume)
        check_positive("chiplet_reuse_factor", self.chiplet_reuse_factor)


@dataclass(frozen=True)
class MonolithicCostBreakdown:
    """Per-unit cost of the monolithic reference design."""

    die_area_mm2: float
    die_yield: float
    silicon_cost: float
    packaging_cost: float
    nre_per_unit: float

    @property
    def recurring_cost(self) -> float:
        """Silicon plus packaging cost of one unit."""
        return self.silicon_cost + self.packaging_cost

    @property
    def total_cost(self) -> float:
        """Recurring cost plus amortised NRE."""
        return self.recurring_cost + self.nre_per_unit


@dataclass(frozen=True)
class ChipletCostBreakdown:
    """Per-unit cost of the chiplet-based design."""

    num_chiplets: int
    chiplet_area_mm2: float
    chiplet_yield: float
    known_good_die_probability: float
    assembly_yield: float
    silicon_cost: float
    packaging_cost: float
    nre_per_unit: float

    @property
    def recurring_cost(self) -> float:
        """Silicon plus packaging/assembly cost of one unit."""
        return self.silicon_cost + self.packaging_cost

    @property
    def total_cost(self) -> float:
        """Recurring cost plus amortised NRE."""
        return self.recurring_cost + self.nre_per_unit


def monolithic_cost(parameters: CostModelParameters) -> MonolithicCostBreakdown:
    """Per-unit cost of building the whole design as one die."""
    area = parameters.total_logic_area_mm2
    chip_yield = negative_binomial_yield(area, parameters.defect_density_per_cm2)
    silicon = die_cost(
        area,
        parameters.wafer_cost,
        chip_yield,
        wafer_diameter_mm=parameters.wafer_diameter_mm,
    )
    packaging = area * parameters.package_substrate_cost_per_mm2
    nre_per_unit = parameters.nre_cost_monolithic / parameters.production_volume
    return MonolithicCostBreakdown(
        die_area_mm2=area,
        die_yield=chip_yield,
        silicon_cost=silicon,
        packaging_cost=packaging,
        nre_per_unit=nre_per_unit,
    )


def chiplet_cost(
    parameters: CostModelParameters,
    num_chiplets: int,
    links_per_chiplet: float,
) -> ChipletCostBreakdown:
    """Per-unit cost of building the design as ``num_chiplets`` chiplets.

    Parameters
    ----------
    parameters:
        Cost-model inputs.
    num_chiplets:
        Number of compute chiplets.
    links_per_chiplet:
        Average number of D2D links per chiplet (each adds PHY area);
        obtain it from the arrangement's average degree.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_non_negative("links_per_chiplet", links_per_chiplet)

    logic_area = parameters.total_logic_area_mm2 / num_chiplets
    phy_area = links_per_chiplet * parameters.phy_area_per_link_mm2
    chiplet_area = logic_area + phy_area

    chiplet_yield = negative_binomial_yield(chiplet_area, parameters.defect_density_per_cm2)
    kgd = known_good_die_yield(chiplet_yield, parameters.test_coverage)
    bonded = assembly_yield(num_chiplets, parameters.bond_yield)

    per_chiplet_silicon = die_cost(
        chiplet_area,
        parameters.wafer_cost,
        chiplet_yield,
        wafer_diameter_mm=parameters.wafer_diameter_mm,
    )
    # Every assembled unit consumes N known-good dies; assembly losses scrap
    # the whole package, so divide by the assembly yield (KGD escapes are
    # already scrapped units as well).
    silicon = num_chiplets * per_chiplet_silicon / (bonded * kgd)
    packaging = (
        num_chiplets * chiplet_area * parameters.package_substrate_cost_per_mm2 / bonded
    )
    nre_per_unit = (
        parameters.nre_cost_per_chiplet_design
        / parameters.chiplet_reuse_factor
        / parameters.production_volume
    )
    return ChipletCostBreakdown(
        num_chiplets=num_chiplets,
        chiplet_area_mm2=chiplet_area,
        chiplet_yield=chiplet_yield,
        known_good_die_probability=kgd,
        assembly_yield=bonded,
        silicon_cost=silicon,
        packaging_cost=packaging,
        nre_per_unit=nre_per_unit,
    )


def compare_monolithic_vs_chiplets(
    parameters: CostModelParameters,
    num_chiplets: int,
    links_per_chiplet: float,
) -> dict[str, float]:
    """Summarise the cost comparison as a flat dictionary (for reports)."""
    mono = monolithic_cost(parameters)
    chiplets = chiplet_cost(parameters, num_chiplets, links_per_chiplet)
    return {
        "monolithic_total_cost": mono.total_cost,
        "monolithic_yield": mono.die_yield,
        "chiplet_total_cost": chiplets.total_cost,
        "chiplet_yield": chiplets.chiplet_yield,
        "chiplet_assembly_yield": chiplets.assembly_yield,
        "cost_ratio": chiplets.total_cost / mono.total_cost,
        "num_chiplets": float(num_chiplets),
    }
