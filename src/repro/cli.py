"""Command-line interface.

Installed as the ``hexamesh`` console script (also reachable with
``python -m repro``).  The sub-commands mirror the workflows of the paper:

* ``info``      — evaluate one design point and print its summary,
* ``compare``   — compare an arrangement against the grid baseline,
* ``figure``    — regenerate the data of Figure 6 or Figure 7 as CSV
  (``--jobs N`` fans cycle-accurate points across worker processes),
* ``simulate``  — run the cycle-accurate simulator on one design
  (optionally exporting per-cycle metrics and a flit-lifecycle trace),
* ``trace``     — record the flit-lifecycle trace of one design point and
  write it as Chrome trace-event JSON (Perfetto-loadable) and/or JSONL;
  ``--check`` replays the point on every engine and verifies the
  canonical event streams are bit-identical,
* ``sweep``     — parallel cycle-accurate sweep over the full design grid
  (kinds × chiplet counts × injection rates × traffic patterns) with
  ``--jobs`` workers and an optional ``--cache-dir`` result store,
* ``workload``  — map application task graphs (DNN pipelines, fork-join,
  stencil, all-reduce, client-server) onto arrangements and run the
  trace-driven cycle-accurate simulator, reporting application metrics,
* ``faults``    — fault-injection resilience sweep: simulate degraded
  topologies (failed links / routers, sampled deterministically or given
  explicitly) and report per-arrangement degradation curves,
* ``store``     — inspect and maintain the persistent result store that
  backs ``--cache-dir`` (``stats``, ``ls``, ``gc``, ``migrate``,
  ``verify`` — re-simulate sampled entries and compare bit-for-bit),
* ``serve``     — host the exploration service: accept async sweep /
  workload / resilience / figure-7 jobs over a local Unix socket,
  stream per-job progress, dedupe identical in-flight candidates across
  jobs and serve warm results straight from the shared store,
* ``jobs``      — client for a running service
  (``submit|status|watch|result|cancel|resume|list|ping|shutdown``),
* ``bench``     — run the engine benchmark scenarios and emit a
  machine-readable ``BENCH_<rev>.json`` report (optionally gated against
  the committed baseline, which is how CI tracks perf regressions),
* ``export``    — write BookSim2 input files and/or an SVG top view,
* ``feasibility`` — check link-length / package feasibility.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.core.parallel import (
    BatchedSweepRunner,
    ParallelSweepRunner,
    SweepCandidate,
)
from repro.core.report import compare_designs
from repro.evaluation.performance import run_figure7
from repro.evaluation.proxies import run_figure6
from repro.evaluation.tables import format_table
from repro.io.booksim_export import write_booksim_inputs
from repro.linkmodel.package import check_package_feasibility
from repro.noc.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.noc.faults import FaultSet
from repro.noc.simulator import BatchPoint, NocSimulator
from repro.noc.traffic import available_traffic_patterns
from repro.resilience.sweep import (
    EXPLICIT_FAULT_TYPE,
    FAULT_TYPES,
    normalize_injection_rates,
    run_resilience_sweep,
    summarize_records,
)
from repro.service.specs import phase_config
from repro.service.tables import (
    RESILIENCE_HEADER,
    SWEEP_HEADER,
    WORKLOAD_HEADER,
    render_csv,
    resilience_rows,
    sweep_rows,
    workload_rows,
)
from repro.telemetry import (
    FlitTracer,
    MetricsCollector,
    SweepProgressTracker,
    TelemetrySession,
    build_manifest,
    format_progress,
    format_summary,
    progress_from_dict,
)
from repro.utils.validation import check_in_choices
from repro.viz.svg import placement_svg, save_svg
from repro.workloads import available_mappers, available_workloads

_KINDS = ("grid", "brickwall", "honeycomb", "hexamesh")

#: Regularity classes accepted by ``--regularity`` (paper Section IV-C);
#: omitting the flag keeps the best class each chiplet count admits.
_REGULARITIES = ("regular", "semi-regular", "irregular")


def _parse_list(text: str, *, kind: type, all_values: tuple = ()) -> list:
    """Parse a comma-separated CLI list, expanding the ``"all"`` shorthand."""
    stripped = text.strip()
    if stripped.lower() == "all":
        if not all_values:
            raise ValueError('"all" is not supported for this option; list the values explicitly')
        return list(all_values)
    return [kind(part.strip()) for part in stripped.split(",") if part.strip()]


def _emit_table(output: str | None, header: list[str], rows: list[list]) -> None:
    """Write rows as CSV to ``output``, or print them as a table.

    The CSV bytes come from :func:`repro.service.tables.render_csv`, the
    same renderer the exploration service uses — a service job result
    and the equivalent ``--output`` file are byte-identical.
    """
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(render_csv(header, rows))
        print(f"wrote {output}")
    else:
        print(format_table(header, rows))


# ``simulate``/``sweep``/``workload``/``faults`` and the service's job
# specs share one phase-scaling rule (repro.service.specs.phase_config),
# so a job submitted over the socket runs exactly what the CLI would.
_phase_config = phase_config


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hexamesh",
        description="HexaMesh (DAC 2023) reproduction: chiplet arrangement analysis",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="evaluate one design point")
    info.add_argument("kind", choices=_KINDS)
    info.add_argument("chiplets", type=int)

    compare = subparsers.add_parser("compare", help="compare a design against a baseline")
    compare.add_argument("kind", choices=_KINDS)
    compare.add_argument("chiplets", type=int)
    compare.add_argument("--baseline", choices=_KINDS, default="grid")

    figure = subparsers.add_parser("figure", help="regenerate Figure 6 or Figure 7 data")
    figure.add_argument("number", choices=("6", "7"))
    figure.add_argument("--max-chiplets", type=int, default=100)
    figure.add_argument("--output", default=None, help="CSV output path (default: stdout)")
    figure.add_argument(
        "--mode",
        choices=("analytical", "hybrid", "simulation"),
        default="analytical",
        help="Figure 7 evaluation engine",
    )
    figure.add_argument(
        "--sim-points",
        default=None,
        help="comma list of chiplet counts to simulate (hybrid mode)",
    )
    figure.add_argument(
        "--jobs", type=int, default=1, help="worker processes for cycle-accurate points"
    )
    figure.add_argument(
        "--cache-dir", default=None, help="persistent result store for cycle-accurate results"
    )
    figure.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cycle-loop engine for cycle-accurate points (all engines are bit-identical)",
    )
    figure.add_argument(
        "--batch",
        action="store_true",
        help="batch the cycle-accurate points of each arrangement "
        "over one shared topology build (bit-identical)",
    )

    simulate = subparsers.add_parser("simulate", help="run the cycle-accurate simulator")
    simulate.add_argument("kind", choices=_KINDS)
    simulate.add_argument("chiplets", type=int)
    simulate.add_argument("--injection-rate", type=float, default=0.05)
    simulate.add_argument("--traffic", default="uniform")
    simulate.add_argument(
        "--cycles",
        type=int,
        default=1000,
        help="measurement cycles (warm-up and drain scale with it)",
    )
    simulate.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cycle-loop engine (all engines are bit-identical)",
    )
    simulate.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write per-cycle metric series (buffer occupancy, "
        "link flits, VC stalls, in-flight, backlog) as JSON",
    )
    simulate.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the flit-lifecycle trace as Chrome trace-event JSON (Perfetto-loadable)",
    )
    simulate.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="write the flit-lifecycle trace as JSONL (one canonical event per line)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="record a flit-lifecycle trace (Perfetto/JSONL export, "
        "optional cross-engine equality check)",
    )
    trace.add_argument("kind", choices=_KINDS)
    trace.add_argument("chiplets", type=int)
    trace.add_argument("--injection-rate", type=float, default=0.05)
    trace.add_argument("--traffic", default="uniform")
    trace.add_argument(
        "--cycles",
        type=int,
        default=200,
        help="measurement cycles (warm-up and drain scale with it)",
    )
    trace.add_argument("--seed", type=int, default=1, help="RNG seed")
    trace.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="engine that records the exported trace",
    )
    trace.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="Chrome trace-event JSON output path (default: trace-<kind><chiplets>.json)",
    )
    trace.add_argument("--jsonl", default=None, metavar="PATH", help="also write the trace as JSONL")
    trace.add_argument(
        "--check",
        action="store_true",
        help="replay the point on every engine and fail unless "
        "the canonical event streams and metric series "
        "are bit-identical",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="parallel cycle-accurate sweep over (kind x chiplets x rate x traffic)",
    )
    sweep.add_argument(
        "--kinds",
        default="grid,brickwall,hexamesh",
        help='comma list of arrangement kinds, or "all"',
    )
    sweep.add_argument("--chiplets", default="16,36,64", help="comma list of chiplet counts")
    sweep.add_argument(
        "--rates",
        default="0.02,0.1,0.3,0.5,1.0",
        help="comma list of injection rates (flits/cycle/endpoint)",
    )
    sweep.add_argument(
        "--traffic", default="uniform", help='comma list of traffic patterns, or "all"'
    )
    sweep.add_argument(
        "--regularity",
        choices=_REGULARITIES,
        default=None,
        help="force one regularity class for every arrangement "
        "(default: best available per chiplet count)",
    )
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--cache-dir", default=None, help="persistent result store directory"
    )
    sweep.add_argument(
        "--cycles",
        type=int,
        default=1000,
        help="measurement cycles (warm-up and drain scale with it)",
    )
    sweep.add_argument("--seed", type=int, default=1, help="base RNG seed")
    sweep.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cycle-loop engine (all engines are bit-identical)",
    )
    sweep.add_argument(
        "--batch",
        action="store_true",
        help="batch same-structure candidates (equal kind/count/"
        "traffic/faults) over one shared topology build; "
        "results are bit-identical to per-point runs",
    )
    sweep.add_argument("--output", default=None, help="CSV output path (default: table)")
    sweep.add_argument(
        "--progress",
        choices=("plain", "detail", "quiet"),
        default="plain",
        help="progress rendering: plain per-candidate lines, "
        "detail adds rate/ETA/cache-ratio per line, "
        "quiet suppresses everything but the end summary",
    )

    workload = subparsers.add_parser(
        "workload",
        help="map application task graphs onto arrangements and simulate them",
    )
    workload.add_argument(
        "--kind", default="dnn-pipeline", help='comma list of workload kinds, or "all"'
    )
    workload.add_argument("--chiplets", default="37", help="comma list of chiplet counts")
    workload.add_argument(
        "--arrangement", default="hexamesh", help='comma list of arrangement kinds, or "all"'
    )
    workload.add_argument("--mapper", default="partition", help='comma list of mappers, or "all"')
    workload.add_argument(
        "--regularity",
        choices=_REGULARITIES,
        default=None,
        help="force one regularity class for every arrangement "
        "(default: best available per chiplet count)",
    )
    workload.add_argument(
        "--tasks",
        type=int,
        default=None,
        help="tasks per workload (default: the chiplet count)",
    )
    workload.add_argument(
        "--injection-rate",
        type=float,
        default=0.1,
        help="offered load of the heaviest source endpoint",
    )
    workload.add_argument(
        "--cycles",
        type=int,
        default=1000,
        help="measurement cycles (warm-up and drain scale with it)",
    )
    workload.add_argument("--seed", type=int, default=1, help="base RNG seed")
    workload.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cycle-loop engine (all engines are bit-identical)",
    )
    workload.add_argument("--jobs", type=int, default=1, help="worker processes")
    workload.add_argument(
        "--cache-dir", default=None, help="persistent result store directory"
    )
    workload.add_argument("--output", default=None, help="CSV output path (default: table)")
    workload.add_argument(
        "--progress",
        choices=("plain", "detail", "quiet"),
        default="plain",
        help="progress rendering (see sweep --progress)",
    )

    faults = subparsers.add_parser(
        "faults",
        help="fault-injection resilience sweep: per-arrangement degradation "
        "vs. number of failed links/routers",
    )
    faults.add_argument(
        "--kinds",
        default="grid,brickwall,hexamesh",
        help='comma list of arrangement kinds, or "all"',
    )
    faults.add_argument(
        "--chiplets", type=int, default=37, help="chiplet count shared by every arrangement"
    )
    faults.add_argument(
        "--regularity",
        choices=_REGULARITIES,
        default=None,
        help="force one regularity class for every arrangement "
        "(default: best available per chiplet count)",
    )
    faults.add_argument(
        "--failures",
        default="0,1,2,4",
        help="comma list of failure counts (include 0 for the baseline)",
    )
    faults.add_argument(
        "--fault-type",
        choices=FAULT_TYPES,
        default="link",
        help="what fails: links, routers, or an even mix",
    )
    faults.add_argument(
        "--samples",
        type=int,
        default=2,
        help="independent fault draws per (kind, failure count)",
    )
    faults.add_argument(
        "--fail-links",
        default=None,
        metavar="LINKS",
        help='explicit failed links, e.g. "0-1,4-5" (skips sampling; combined with --fail-routers)',
    )
    faults.add_argument(
        "--fail-routers",
        default=None,
        metavar="ROUTERS",
        help='explicit failed router ids, e.g. "3,8"',
    )
    faults.add_argument("--injection-rate", type=float, default=0.1)
    faults.add_argument(
        "--injection-rates",
        default=None,
        metavar="RATES",
        help="comma list of injection rates; sweeping several turns each "
        "degradation curve into a degradation surface (rows gain a rate "
        "column) and overrides --injection-rate",
    )
    faults.add_argument("--traffic", default="uniform")
    faults.add_argument(
        "--cycles",
        type=int,
        default=1000,
        help="measurement cycles (warm-up and drain scale with it)",
    )
    faults.add_argument(
        "--seed", type=int, default=1, help="base RNG seed (also seeds the fault sampling)"
    )
    faults.add_argument("--jobs", type=int, default=1, help="worker processes")
    faults.add_argument(
        "--cache-dir", default=None, help="persistent result store directory"
    )
    faults.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=DEFAULT_ENGINE,
        help="cycle-loop engine (all engines are bit-identical)",
    )
    faults.add_argument(
        "--batch",
        action="store_true",
        help="share each fault arrangement's degraded-topology build across its points "
        "(bit-identical)",
    )
    faults.add_argument("--output", default=None, help="CSV output path (default: table)")
    faults.add_argument(
        "--progress",
        choices=("plain", "detail", "quiet"),
        default="plain",
        help="progress rendering (see sweep --progress)",
    )
    # _command_faults reads flag defaults straight from the parser (for
    # the ignored-under---fail-* warning) instead of duplicating literals.
    faults.set_defaults(faults_parser=faults)

    store = subparsers.add_parser(
        "store",
        help="inspect and maintain a persistent result store (the --cache-dir of sweeps)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_stats = store_sub.add_parser(
        "stats", help="entry count, bytes, shards, quarantine and hygiene counters"
    )
    store_stats.add_argument("root", help="store directory")
    store_stats.add_argument("--json", action="store_true", help="machine-readable output")

    store_ls = store_sub.add_parser("ls", help="list entry keys (optionally with identities)")
    store_ls.add_argument("root", help="store directory")
    store_ls.add_argument(
        "--long",
        action="store_true",
        help="read each entry and append its candidate identity",
    )
    store_ls.add_argument(
        "--limit", type=int, default=None, help="print at most this many entries"
    )

    store_gc = store_sub.add_parser(
        "gc", help="remove orphaned temp files, quarantined entries and empty shards"
    )
    store_gc.add_argument("root", help="store directory")
    store_gc.add_argument(
        "--keep-quarantine",
        action="store_true",
        help="leave quarantined (corrupt) entries in place for inspection",
    )

    store_migrate = store_sub.add_parser(
        "migrate", help="migrate an old-layout store in place (idempotent)"
    )
    store_migrate.add_argument("root", help="store directory")

    store_verify = store_sub.add_parser(
        "verify",
        help="structurally check every entry, then re-simulate a sample "
        "and compare bit-for-bit",
    )
    store_verify.add_argument("root", help="store directory")
    store_verify.add_argument(
        "--sample",
        type=int,
        default=1,
        help="number of entries to re-simulate (deterministically sampled)",
    )
    store_verify.add_argument("--seed", type=int, default=0, help="sampling seed")
    store_verify.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default=None,
        help="override the engine recorded in each entry's manifest "
        "(all engines are bit-identical)",
    )

    bench = subparsers.add_parser(
        "bench",
        help="run the engine benchmark scenarios and emit a BENCH_<rev>.json report",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced phase lengths and the quick scenario subset (CI mode)",
    )
    bench.add_argument(
        "--scenarios",
        default=None,
        help="comma list of scenario names (default: all for the mode)",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="runs per (scenario, engine); the fastest wall-clock is kept",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="report path (default: BENCH_<rev>.json in the working directory)",
    )
    bench.add_argument(
        "--rev", default=None, help="revision label for the report (default: git short hash)"
    )
    bench.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) if any scenario regresses against this baseline JSON",
    )
    bench.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="also distil the report into a committed-baseline JSON "
        "(speedups + headline floors only)",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="print the scenario names for the chosen mode and exit",
    )

    serve = subparsers.add_parser(
        "serve",
        help="host the exploration service: accept sweep/workload/resilience/"
        "figure-7 jobs over a local socket, backed by a shared result store",
    )
    serve.add_argument(
        "--socket",
        default="hexamesh.sock",
        help="Unix socket path to listen on (default: ./hexamesh.sock)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result store shared by every job (warm resubmissions "
        "return without simulating)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent jobs (each job additionally fans simulations across "
        "its spec's worker processes)",
    )

    jobs_cmd = subparsers.add_parser(
        "jobs", help="talk to a running `hexamesh serve` (submit/watch/fetch jobs)"
    )
    jobs_sub = jobs_cmd.add_subparsers(dest="jobs_command", required=True)

    def _jobs_common(sub, *, job_id: bool = True):
        if job_id:
            sub.add_argument("id", help="job id (as printed by submit / list)")
        sub.add_argument(
            "--socket",
            default="hexamesh.sock",
            help="Unix socket of the server (default: ./hexamesh.sock)",
        )

    jobs_submit = jobs_sub.add_parser("submit", help="submit a job spec (JSON)")
    jobs_submit.add_argument(
        "--spec",
        default=None,
        help='inline JSON job spec, e.g. \'{"type": "sweep", "chiplets": [61]}\'',
    )
    jobs_submit.add_argument(
        "--spec-file", default=None, metavar="PATH", help="read the JSON spec from a file"
    )
    jobs_submit.add_argument(
        "--watch",
        action="store_true",
        help="stream progress to stderr and block for the result",
    )
    jobs_submit.add_argument(
        "--output", default=None, help="write the result CSV here (implies --watch)"
    )
    _jobs_common(jobs_submit, job_id=False)

    jobs_status = jobs_sub.add_parser("status", help="print one job's status as JSON")
    _jobs_common(jobs_status)

    jobs_watch = jobs_sub.add_parser(
        "watch", help="stream a job's progress, then fetch its result"
    )
    jobs_watch.add_argument("--output", default=None, help="write the result CSV here")
    _jobs_common(jobs_watch)

    jobs_result = jobs_sub.add_parser("result", help="block for a job's result")
    jobs_result.add_argument("--output", default=None, help="write the result CSV here")
    jobs_result.add_argument(
        "--timeout", type=float, default=None, help="give up after this many seconds"
    )
    _jobs_common(jobs_result)

    jobs_cancel = jobs_sub.add_parser("cancel", help="request job cancellation")
    _jobs_common(jobs_cancel)

    jobs_resume = jobs_sub.add_parser(
        "resume",
        help="resubmit a cancelled/failed job (completed candidates return "
        "from the store)",
    )
    jobs_resume.add_argument(
        "--watch",
        action="store_true",
        help="stream progress to stderr and block for the result",
    )
    jobs_resume.add_argument(
        "--output", default=None, help="write the result CSV here (implies --watch)"
    )
    _jobs_common(jobs_resume)

    jobs_list = jobs_sub.add_parser("list", help="list every job on the server")
    _jobs_common(jobs_list, job_id=False)

    jobs_ping = jobs_sub.add_parser("ping", help="check the server is alive")
    _jobs_common(jobs_ping, job_id=False)

    jobs_shutdown = jobs_sub.add_parser(
        "shutdown", help="stop the server (running jobs are cancelled)"
    )
    _jobs_common(jobs_shutdown, job_id=False)

    export = subparsers.add_parser("export", help="write BookSim2 inputs and/or an SVG view")
    export.add_argument("kind", choices=_KINDS)
    export.add_argument("chiplets", type=int)
    export.add_argument("--booksim-topology", default=None)
    export.add_argument("--booksim-config", default=None)
    export.add_argument("--svg", default=None)

    feasibility = subparsers.add_parser(
        "feasibility", help="check D2D link-length and package feasibility"
    )
    feasibility.add_argument("kind", choices=_KINDS)
    feasibility.add_argument("chiplets", type=int)
    feasibility.add_argument("--silicon-interposer", action="store_true")

    return parser


def _command_info(args: argparse.Namespace) -> int:
    design = ChipletDesign.create(args.kind, args.chiplets)
    rows = []
    for key, value in design.summary().items():
        rows.append([key, value])
    print(format_table(["metric", "value"], rows))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    candidate = ChipletDesign.create(args.kind, args.chiplets)
    baseline = ChipletDesign.create(args.baseline, args.chiplets)
    print(compare_designs(candidate, baseline).render())
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.number == "6":
        ignored = [
            flag
            for flag, value, default in (
                ("--mode", args.mode, "analytical"),
                ("--sim-points", args.sim_points, None),
                ("--jobs", args.jobs, 1),
                ("--cache-dir", args.cache_dir, None),
                ("--engine", args.engine, DEFAULT_ENGINE),
                ("--batch", args.batch, False),
            )
            if value != default
        ]
        if ignored:
            print(
                f"warning: {', '.join(ignored)} only apply to figure 7; "
                "figure 6 is always analytical",
                file=sys.stderr,
            )
        figure6 = run_figure6(range(1, args.max_chiplets + 1))
        csv_text = figure6.diameter_experiment().to_csv() + figure6.bisection_experiment().to_csv()
    else:
        if args.mode == "analytical":
            # Mirror the figure-6 path: analytical mode never simulates, so
            # flags that only steer the cycle-accurate points are ignored.
            ignored = [
                flag
                for flag, value, default in (
                    ("--sim-points", args.sim_points, None),
                    ("--jobs", args.jobs, 1),
                    ("--cache-dir", args.cache_dir, None),
                    ("--engine", args.engine, DEFAULT_ENGINE),
                    ("--batch", args.batch, False),
                )
                if value != default
            ]
            if ignored:
                print(
                    f"warning: {', '.join(ignored)} only apply to figure 7 "
                    "hybrid/simulation modes; --mode analytical never simulates",
                    file=sys.stderr,
                )
        sim_points = None
        if args.sim_points:
            sim_points = _parse_list(args.sim_points, kind=int)
        figure7 = run_figure7(
            range(2, args.max_chiplets + 1),
            mode=args.mode,
            simulation_points=sim_points,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            noc_engine=args.engine,
            batch=args.batch,
        )
        csv_text = "".join(
            experiment.to_csv()
            for experiment in (
                figure7.latency_experiment(),
                figure7.throughput_experiment(),
                figure7.normalized_latency_experiment(),
                figure7.normalized_throughput_experiment(),
            )
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {args.output}")
    else:
        print(csv_text, end="")
    return 0


def _progress_reporter(jobs: int, mode: str):
    """Build a ``(callback, finish)`` pair rendering sweep progress to stderr.

    The callback feeds every ``progress(done, total, record)`` completion
    through a :class:`SweepProgressTracker`; ``finish()`` prints the
    end-of-sweep summary (cache-hit ratio, candidates/s, per-candidate
    simulation wall time, worker utilisation).
    """
    tracker = SweepProgressTracker(jobs=jobs)
    last_snapshot = []

    def callback(done: int, total: int, record) -> None:
        snapshot = tracker.update(done, total, record)
        last_snapshot[:] = [snapshot]
        if mode == "quiet":
            return
        if mode == "detail":
            print(format_progress(snapshot, record.candidate.label), file=sys.stderr)
        else:
            origin = "cache" if record.from_cache else "sim"
            print(f"[{done}/{total}] {record.candidate.label} ({origin})", file=sys.stderr)

    def finish() -> None:
        if last_snapshot:
            print(format_summary(last_snapshot[0]), file=sys.stderr)

    return callback, finish


def _write_metrics_json(path: str, metrics: MetricsCollector, *, context: dict) -> None:
    """Write a metrics export: the series plus summary and provenance."""
    document = metrics.as_dict()
    document["summary"] = metrics.summary()
    document["provenance"] = build_manifest(extra=context)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def _command_simulate(args: argparse.Namespace) -> int:
    design = ChipletDesign.create(args.kind, args.chiplets)
    config = _phase_config(args.cycles)
    wants_trace = args.trace_out or args.trace_jsonl
    telemetry = None
    if args.metrics_out or wants_trace:
        telemetry = TelemetrySession(
            metrics=MetricsCollector() if args.metrics_out else None,
            tracer=FlitTracer() if wants_trace else None,
        )
    result = design.simulate(
        injection_rate=args.injection_rate,
        traffic=args.traffic,
        config=config,
        engine=args.engine,
        telemetry=telemetry,
    )
    context = {
        "design": design.label,
        "engine": args.engine,
        "injection_rate": args.injection_rate,
        "traffic": args.traffic,
    }
    if args.metrics_out:
        _write_metrics_json(args.metrics_out, telemetry.metrics, context=context)
        print(f"wrote {args.metrics_out}")
    if args.trace_out:
        telemetry.tracer.write_chrome_trace(args.trace_out, metadata=context)
        print(f"wrote {args.trace_out}")
    if args.trace_jsonl:
        telemetry.tracer.write_jsonl(args.trace_jsonl)
        print(f"wrote {args.trace_jsonl}")
    rows = [
        ["design", design.label],
        ["offered load [flit/cyc/EP]", result.injection_rate],
        ["avg packet latency [cyc]", result.packet_latency.mean],
        ["p99 packet latency [cyc]", result.packet_latency.p99],
        ["accepted [flit/cyc/EP]", result.accepted_flit_rate],
        ["throughput [Tb/s]", result.accepted_flit_rate * design.full_global_bandwidth_tbps],
        ["measured packets delivered", result.measured_packets_ejected],
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    design = ChipletDesign.create(args.kind, args.chiplets)
    config = _phase_config(args.cycles, seed=args.seed)

    def observed_run(engine: str):
        session = TelemetrySession(metrics=MetricsCollector(), tracer=FlitTracer())
        result = design.simulate(
            injection_rate=args.injection_rate,
            traffic=args.traffic,
            config=config,
            engine=engine,
            telemetry=session,
        )
        return session, result

    session, result = observed_run(args.engine)
    events = session.tracer.canonical_events()
    context = {
        "design": design.label,
        "engine": args.engine,
        "injection_rate": args.injection_rate,
        "traffic": args.traffic,
        "seed": args.seed,
    }
    output = args.output or f"trace-{args.kind}{args.chiplets}.json"
    session.tracer.write_chrome_trace(output, metadata=context)
    print(
        f"wrote {output} ({len(events)} events, "
        f"{result.measured_packets_ejected} measured packets)"
    )
    if args.jsonl:
        session.tracer.write_jsonl(args.jsonl)
        print(f"wrote {args.jsonl}")
    if not args.check:
        return 0

    # Replay the point on every other engine (the batched path included)
    # and require bit-identical canonical traces, metric series and
    # results — the sharpest cross-engine equivalence artifact we have.
    reference_series = session.metrics.series()
    status = 0
    for engine in ENGINE_NAMES:
        if engine == args.engine:
            continue
        other_session, other_result = observed_run(engine)
        mismatches = []
        if other_session.tracer.canonical_events() != events:
            mismatches.append("trace events")
        if other_session.metrics.series() != reference_series:
            mismatches.append("metric series")
        if other_result != result:
            mismatches.append("simulation result")
        if mismatches:
            print(f"MISMATCH vs {engine}: {', '.join(mismatches)} differ", file=sys.stderr)
            status = 1
        else:
            print(f"{engine}: trace, metrics and result bit-identical")
    batched_session = TelemetrySession(metrics=MetricsCollector(), tracer=FlitTracer())
    (batched_result,) = NocSimulator.run_batch(
        design.arrangement.graph,
        [BatchPoint(args.injection_rate)],
        config=design.simulation_config(config),
        traffic=args.traffic,
        telemetry=lambda index, point: batched_session,
    )
    mismatches = []
    if batched_session.tracer.canonical_events() != events:
        mismatches.append("trace events")
    if batched_session.metrics.series() != reference_series:
        mismatches.append("metric series")
    if batched_result != result:
        mismatches.append("simulation result")
    if mismatches:
        print(f"MISMATCH vs batched: {', '.join(mismatches)} differ", file=sys.stderr)
        status = 1
    else:
        print("batched: trace, metrics and result bit-identical")
    if status:
        print("trace equivalence check FAILED", file=sys.stderr)
        return 1
    print(f"trace equivalence check passed across {len(ENGINE_NAMES) + 1} engines")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    kinds = _parse_list(args.kinds, kind=str, all_values=_KINDS)
    chiplet_counts = _parse_list(args.chiplets, kind=int)
    rates = _parse_list(args.rates, kind=float)
    traffics = _parse_list(args.traffic, kind=str, all_values=available_traffic_patterns())
    # Fail fast on typos before any worker starts (rates are validated by
    # SweepCandidate itself when the grid is built below).
    for kind in kinds:
        check_in_choices("kind", kind, _KINDS)
    for traffic in traffics:
        check_in_choices("traffic", traffic, available_traffic_patterns())
    config = _phase_config(args.cycles, seed=args.seed)
    runner_cls = BatchedSweepRunner if args.batch else ParallelSweepRunner
    runner = runner_cls(config, jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine)
    candidates = ParallelSweepRunner.grid(
        kinds, chiplet_counts, rates, traffics, regularity=args.regularity
    )
    report_progress, finish_progress = _progress_reporter(args.jobs, args.progress)
    records = runner.run(candidates, progress=report_progress)
    finish_progress()
    _emit_table(args.output, SWEEP_HEADER, sweep_rows(records))
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    workload_kinds = _parse_list(args.kind, kind=str, all_values=available_workloads())
    arrangements = _parse_list(args.arrangement, kind=str, all_values=_KINDS)
    chiplet_counts = _parse_list(args.chiplets, kind=int)
    mappers = _parse_list(args.mapper, kind=str, all_values=available_mappers())
    # Fail fast on typos before any simulation starts.
    for kind in workload_kinds:
        check_in_choices("workload kind", kind, available_workloads())
    for arrangement in arrangements:
        check_in_choices("arrangement", arrangement, _KINDS)
    for mapper in mappers:
        check_in_choices("mapper", mapper, available_mappers())

    config = _phase_config(args.cycles, seed=args.seed)
    runner = ParallelSweepRunner(
        config, jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine
    )
    candidates = ParallelSweepRunner.workload_grid(
        arrangements,
        chiplet_counts,
        workload_kinds,
        mappers,
        injection_rates=(args.injection_rate,),
        num_tasks=args.tasks,
        regularity=args.regularity,
    )
    report_progress, finish_progress = _progress_reporter(args.jobs, args.progress)
    records = runner.run(candidates, progress=report_progress)
    finish_progress()
    _emit_table(
        args.output,
        WORKLOAD_HEADER,
        workload_rows(records, runner.config, jobs=args.jobs),
    )
    return 0


def _command_faults(args: argparse.Namespace) -> int:
    kinds = _parse_list(args.kinds, kind=str, all_values=_KINDS)
    # Fail fast on typos before any simulation starts.
    for kind in kinds:
        check_in_choices("kind", kind, _KINDS)
    check_in_choices("traffic", args.traffic, available_traffic_patterns())
    config = _phase_config(args.cycles, seed=args.seed)
    rates = normalize_injection_rates(
        args.injection_rate,
        _parse_list(args.injection_rates, kind=float) if args.injection_rates else None,
    )
    report_progress, finish_progress = _progress_reporter(args.jobs, args.progress)
    explicit = args.fail_links is not None or args.fail_routers is not None
    if explicit:
        # Mirror the ignored-flag convention of the figure command: the
        # sampling knobs have no effect once the fault set is explicit.
        # The defaults come from the parser itself (get_default) so the
        # warning can never drift out of sync with _build_parser.
        ignored = [
            flag
            for flag, value, default in (
                ("--failures", args.failures, args.faults_parser.get_default("failures")),
                ("--samples", args.samples, args.faults_parser.get_default("samples")),
                ("--fault-type", args.fault_type, args.faults_parser.get_default("fault_type")),
            )
            if value != default
        ]
        if ignored:
            print(
                f"warning: {', '.join(ignored)} only apply to sampled sweeps; "
                "--fail-links/--fail-routers run exactly the given scenario",
                file=sys.stderr,
            )
        fault_set = FaultSet.parse(args.fail_links or "", args.fail_routers or "")
        if fault_set.is_empty:
            # An explicit-but-empty spec (e.g. --fail-links "" from an unset
            # shell variable) would silently degrade into a healthy-only
            # sweep; fail fast instead.
            print(
                "error: --fail-links/--fail-routers were given but name no "
                'faults; pass at least one link (e.g. "0-1") or router id, '
                "or drop the flags to run a sampled sweep",
                file=sys.stderr,
            )
            return 2
        # Fail fast with the precise FaultedTopologyError message (absent
        # component / isolated router / disconnected survivors) before
        # any worker starts — honouring the same --regularity override
        # the candidates below will simulate.
        for kind in kinds:
            graph = make_arrangement(kind, args.chiplets, args.regularity).graph
            fault_set.apply(graph)
        # Rate-innermost ordering keeps every rate of one fault set
        # adjacent, so --batch shares its degraded-topology build.
        candidates = []
        for kind in kinds:
            for healthy in (True, False):
                for rate in rates:
                    candidates.append(
                        SweepCandidate(
                            kind=kind,
                            num_chiplets=args.chiplets,
                            injection_rate=rate,
                            traffic=args.traffic,
                            regularity=args.regularity,
                            failed_links=() if healthy else fault_set.failed_links,
                            failed_routers=() if healthy else fault_set.failed_routers,
                        )
                    )
        runner_cls = BatchedSweepRunner if args.batch else ParallelSweepRunner
        runner = runner_cls(config, jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine)
        records = runner.run(candidates, progress=report_progress)
        summaries = summarize_records(records, fault_type=EXPLICIT_FAULT_TYPE)
    else:
        failure_counts = _parse_list(args.failures, kind=int)
        result = run_resilience_sweep(
            kinds,
            args.chiplets,
            failure_counts,
            samples=args.samples,
            fault_type=args.fault_type,
            config=config,
            injection_rate=args.injection_rate,
            injection_rates=rates,
            traffic=args.traffic,
            regularity=args.regularity,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            engine=args.engine,
            batch=args.batch,
            progress=report_progress,
        )
        summaries = result.summaries
    finish_progress()

    header = RESILIENCE_HEADER
    rows = resilience_rows(summaries)
    if args.output:
        _emit_table(args.output, header, rows)
    else:

        def ratio(value: float) -> str:
            return f"{value:.3f}x" if value == value else "-"

        display = [row[:-2] + [ratio(row[-2]), ratio(row[-1])] for row in rows]
        print(format_table(header, display))
    return 0


def _candidate_summary(candidate: dict) -> str:
    """One-line identity of a stored candidate for ``store ls --long``."""
    parts = [
        f"{candidate.get('kind', '?')}-{candidate.get('num_chiplets', '?')}",
        f"rate={candidate.get('injection_rate', '?')}",
        str(candidate.get("traffic", "?")),
    ]
    if candidate.get("workload"):
        parts.append(f"workload={candidate['workload']}/{candidate.get('mapper') or 'default'}")
    if candidate.get("failed_links") or candidate.get("failed_routers"):
        faults = len(candidate.get("failed_links") or ()) + len(
            candidate.get("failed_routers") or ()
        )
        parts.append(f"faults={faults}")
    return " ".join(parts)


def _command_store(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis-only commands should not pay for the
    # store package (which pulls in the sweep stack through verify).
    from repro.store import ResultStore, StoreSchemaError, verify_store

    if not os.path.isdir(args.root):
        print(f"error: no store directory at {args.root!r}", file=sys.stderr)
        return 2
    try:
        store = ResultStore(args.root)
    except StoreSchemaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.store_command == "stats":
        stats = store.stats()
        if args.json:
            document = {
                "schema": stats.schema,
                "generation": stats.generation,
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "shards": stats.shards,
                "quarantined": stats.quarantined,
                "orphan_tmp": stats.orphan_tmp,
                "migrated_on_open": store.migrated,
            }
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            rows = [
                ["schema", stats.schema],
                ["generation", stats.generation],
                ["entries", stats.entries],
                ["total bytes", stats.total_bytes],
                ["shards", stats.shards],
                ["quarantined", stats.quarantined],
                ["orphan tmp files", stats.orphan_tmp],
            ]
            if store.migrated:
                rows.append(["migrated on open", store.migrated])
            print(format_table(["metric", "value"], rows))
        return 0

    if args.store_command == "ls":
        keys = store.keys()
        shown = keys if args.limit is None else keys[: args.limit]
        for key in shown:
            if args.long:
                entry = store.get(key)
                identity = _candidate_summary(entry.candidate) if entry else "<corrupt>"
                print(f"{key}  {identity}")
            else:
                print(key)
        if len(shown) < len(keys):
            print(f"... and {len(keys) - len(shown)} more", file=sys.stderr)
        return 0

    if args.store_command == "gc":
        outcome = store.gc(purge_quarantine=not args.keep_quarantine)
        print(
            f"removed {outcome.removed_tmp} orphaned tmp files, "
            f"{outcome.removed_quarantined} quarantined entries, "
            f"{outcome.pruned_shards} empty shards "
            f"({outcome.freed_bytes} bytes freed)"
        )
        return 0

    if args.store_command == "migrate":
        # Migration happens when the store opens; report what it did.
        if store.migrated:
            print(f"migrated {store.migrated} legacy entries to schema {store.stats().schema}")
        else:
            print(f"store already at schema {store.stats().schema}; nothing to migrate")
        return 0

    # verify
    outcomes = verify_store(store, sample=args.sample, seed=args.seed, engine=args.engine)
    status = 0
    recomputed = 0
    for outcome in outcomes:
        if outcome.status == "ok":
            recomputed += 1
            print(f"ok        {outcome.key}  {outcome.detail}")
        elif outcome.status == "skipped":
            print(f"skipped   {outcome.key}  {outcome.detail}")
        else:
            print(f"MISMATCH  {outcome.key}  {outcome.detail}", file=sys.stderr)
            status = 1
    total = len(store.keys())
    if status:
        print("store verification FAILED", file=sys.stderr)
        return 1
    print(f"verified {total} entries structurally, {recomputed} recomputed bit-for-bit")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench harness pulls in the whole sweep /
    # workload stack, which the other subcommands should not pay for.
    from repro import bench

    if args.list_scenarios:
        for name in bench.available_scenarios(quick=args.quick):
            print(name)
        return 0
    scenario_names = None
    if args.scenarios:
        scenario_names = _parse_list(
            args.scenarios,
            kind=str,
            all_values=bench.available_scenarios(quick=args.quick),
        )
    revision = args.rev if args.rev is not None else bench.git_revision()
    report = bench.run_bench(
        scenario_names,
        quick=args.quick,
        repeat=args.repeat,
        revision=revision,
        progress=lambda message: print(message, file=sys.stderr),
    )
    output = args.output if args.output else bench.default_output_path(revision)
    bench.write_report(report, output)
    print(f"wrote {output}")
    print(bench.format_report_table(report))
    if args.write_baseline:
        baseline = bench.make_baseline(
            report,
            min_speedups=bench.HEADLINE_FLOORS,
            min_batched_speedups=bench.BATCHED_FLOORS,
        )
        bench.write_report(baseline, args.write_baseline)
        print(f"wrote {args.write_baseline}")
    if args.check_against:
        try:
            baseline = bench.load_report(args.check_against)
        except bench.BaselineError as exc:
            # An unreadable or malformed baseline must fail the gate loudly
            # (exit 1 with the reason), never exit 0 or dump a traceback.
            print(f"PERF GATE ERROR: {exc}", file=sys.stderr)
            return 1
        for warning in bench.check_report_warnings(report, baseline):
            print(f"warning: {warning}", file=sys.stderr)
        problems = bench.check_report(report, baseline)
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"perf gate passed against {args.check_against}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily: only the service commands should pay for the
    # service package on top of the sweep stack.
    from repro.service import JobManager, ServiceServer

    manager = JobManager(cache_dir=args.cache_dir, workers=args.workers)
    server = ServiceServer(manager, args.socket)
    store_note = f" (store: {args.cache_dir})" if args.cache_dir else " (uncached)"
    print(
        f"hexamesh service listening on {args.socket}{store_note}; "
        "stop with `hexamesh jobs shutdown` or Ctrl-C",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        server.shutdown()
    return 0


def _emit_job_result(result: dict, output: str | None) -> None:
    """Write a job result's CSV to ``output`` or print it to stdout."""
    csv_text = result.get("csv", "")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {output}")
    else:
        print(csv_text, end="")


def _stream_job_responses(client, request: dict, output: str | None) -> int:
    """Drive one streaming request: progress to stderr, result to ``output``.

    Progress lines re-enter :func:`format_progress` /
    :func:`format_summary` through
    :func:`~repro.telemetry.progress.progress_from_dict`, so a watched
    job renders exactly like a local ``--progress detail`` sweep —
    including the end-of-job cache summary line CI greps for.
    """
    final = None
    announced = False
    last_snapshot = None
    for response in client.request(request):
        if "progress" in response:
            last_snapshot = progress_from_dict(response["progress"])
            print(format_progress(last_snapshot), file=sys.stderr)
            continue
        if not announced and response.get("ok") and "job" in response:
            job = response["job"]
            if job["state"] in ("queued", "running"):
                print(f"job {job['id']} {job['state']}", file=sys.stderr)
                announced = True
                final = response
                continue
        final = response
    if last_snapshot is not None:
        print(format_summary(last_snapshot), file=sys.stderr)
    if final is None:
        print("error: server closed the stream without responding", file=sys.stderr)
        return 1
    job = final.get("job")
    if job is not None:
        print(f"job {job['id']}: {job['state']}", file=sys.stderr)
    if not final.get("ok"):
        print(f"error: {final.get('error', 'job did not complete')}", file=sys.stderr)
        return 1
    if "result" in final:
        _emit_job_result(final["result"], output)
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.socket)
    command = args.jobs_command
    try:
        if command == "submit":
            if (args.spec is None) == (args.spec_file is None):
                print(
                    "error: pass exactly one of --spec or --spec-file",
                    file=sys.stderr,
                )
                return 2
            if args.spec_file:
                with open(args.spec_file, "r", encoding="utf-8") as handle:
                    spec = json.load(handle)
            else:
                spec = json.loads(args.spec)
            watch = args.watch or args.output is not None
            request = {"op": "submit", "spec": spec, "watch": watch}
            if watch:
                return _stream_job_responses(client, request, args.output)
            response = client.call(request)
            job = response["job"]
            print(f"submitted {job['id']} ({job['state']})")
            return 0
        if command == "resume":
            watch = args.watch or args.output is not None
            request = {"op": "resume", "id": args.id, "watch": watch}
            if watch:
                return _stream_job_responses(client, request, args.output)
            response = client.call(request)
            job = response["job"]
            print(f"resumed {args.id} as {job['id']} ({job['state']})")
            return 0
        if command == "watch":
            return _stream_job_responses(
                client, {"op": "watch", "id": args.id}, args.output
            )
        if command == "status":
            response = client.call({"op": "status", "id": args.id})
            print(json.dumps(response["job"], indent=2, sort_keys=True))
            return 0
        if command == "result":
            request = {"op": "result", "id": args.id}
            if args.timeout is not None:
                request["timeout"] = args.timeout
            return _stream_job_responses(client, request, args.output)
        if command == "cancel":
            response = client.call({"op": "cancel", "id": args.id})
            job = response["job"]
            print(f"job {job['id']}: {job['state']}")
            return 0
        if command == "list":
            response = client.call({"op": "jobs"})
            rows = []
            for job in response["jobs"]:
                progress = job.get("progress") or {}
                done = progress.get("done", 0)
                total = progress.get("total", "?")
                rows.append([job["id"], job["type"], job["state"], f"{done}/{total}"])
            print(format_table(["id", "type", "state", "progress"], rows))
            return 0
        if command == "ping":
            response = client.call({"op": "ping"})
            store = response.get("cache_dir") or "uncached"
            print(f"ok: {response.get('protocol')} on {args.socket} ({store})")
            return 0
        if command == "shutdown":
            client.call({"op": "shutdown"})
            print("server shutting down")
            return 0
        raise ValueError(f"unknown jobs command {command!r}")  # pragma: no cover
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (FileNotFoundError, ConnectionRefusedError):
        print(
            f"error: no hexamesh service listening on {args.socket} "
            "(start one with `hexamesh serve`)",
            file=sys.stderr,
        )
        return 1


def _command_export(args: argparse.Namespace) -> int:
    arrangement = make_arrangement(args.kind, args.chiplets)
    wrote_something = False
    if args.booksim_topology and args.booksim_config:
        write_booksim_inputs(arrangement, args.booksim_topology, args.booksim_config)
        print(f"wrote {args.booksim_topology} and {args.booksim_config}")
        wrote_something = True
    elif args.booksim_topology or args.booksim_config:
        print(
            "error: --booksim-topology and --booksim-config must be given together",
            file=sys.stderr,
        )
        return 2
    if args.svg:
        if arrangement.placement is None:
            print(
                "error: the honeycomb has no rectangular placement to render",
                file=sys.stderr,
            )
            return 2
        save_svg(placement_svg(arrangement.placement), args.svg)
        print(f"wrote {args.svg}")
        wrote_something = True
    if not wrote_something:
        print(
            "nothing to export: pass --svg and/or --booksim-topology/--booksim-config",
            file=sys.stderr,
        )
        return 2
    return 0


def _command_feasibility(args: argparse.Namespace) -> int:
    arrangement = make_arrangement(args.kind, args.chiplets)
    report = check_package_feasibility(arrangement, silicon_interposer=args.silicon_interposer)
    rows = [
        ["chiplet width [mm]", report.shape.width_mm],
        ["chiplet height [mm]", report.shape.height_mm],
        ["estimated link length [mm]", report.link_length_mm],
        ["link length limit [mm]", report.max_link_length_mm],
        ["package width [mm]", report.package_width_mm],
        ["package height [mm]", report.package_height_mm],
        ["feasible", report.link_length_ok],
    ]
    print(format_table(["metric", "value"], rows))
    for violation in report.violations():
        print(f"VIOLATION: {violation}")
    return 0 if report.link_length_ok else 1


_COMMANDS = {
    "info": _command_info,
    "compare": _command_compare,
    "figure": _command_figure,
    "simulate": _command_simulate,
    "trace": _command_trace,
    "sweep": _command_sweep,
    "workload": _command_workload,
    "faults": _command_faults,
    "store": _command_store,
    "serve": _command_serve,
    "jobs": _command_jobs,
    "bench": _command_bench,
    "export": _command_export,
    "feasibility": _command_feasibility,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``hexamesh`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
