"""Command-line interface.

Installed as the ``hexamesh`` console script (also reachable with
``python -m repro``).  The sub-commands mirror the workflows of the paper:

* ``info``      — evaluate one design point and print its summary,
* ``compare``   — compare an arrangement against the grid baseline,
* ``figure``    — regenerate the data of Figure 6 or Figure 7 as CSV,
* ``simulate``  — run the cycle-accurate simulator on one design,
* ``export``    — write BookSim2 input files and/or an SVG top view,
* ``feasibility`` — check link-length / package feasibility.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.core.report import compare_designs
from repro.evaluation.performance import run_figure7
from repro.evaluation.proxies import run_figure6
from repro.evaluation.tables import format_table
from repro.io.booksim_export import write_booksim_inputs
from repro.linkmodel.package import check_package_feasibility
from repro.noc.config import SimulationConfig
from repro.viz.svg import placement_svg, save_svg

_KINDS = ("grid", "brickwall", "honeycomb", "hexamesh")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hexamesh",
        description="HexaMesh (DAC 2023) reproduction: chiplet arrangement analysis",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="evaluate one design point")
    info.add_argument("kind", choices=_KINDS)
    info.add_argument("chiplets", type=int)

    compare = subparsers.add_parser("compare", help="compare a design against a baseline")
    compare.add_argument("kind", choices=_KINDS)
    compare.add_argument("chiplets", type=int)
    compare.add_argument("--baseline", choices=_KINDS, default="grid")

    figure = subparsers.add_parser("figure", help="regenerate Figure 6 or Figure 7 data")
    figure.add_argument("number", choices=("6", "7"))
    figure.add_argument("--max-chiplets", type=int, default=100)
    figure.add_argument("--output", default=None, help="CSV output path (default: stdout)")

    simulate = subparsers.add_parser("simulate", help="run the cycle-accurate simulator")
    simulate.add_argument("kind", choices=_KINDS)
    simulate.add_argument("chiplets", type=int)
    simulate.add_argument("--injection-rate", type=float, default=0.05)
    simulate.add_argument("--traffic", default="uniform")
    simulate.add_argument("--cycles", type=int, default=1000,
                          help="measurement cycles (warm-up and drain scale with it)")

    export = subparsers.add_parser("export", help="write BookSim2 inputs and/or an SVG view")
    export.add_argument("kind", choices=_KINDS)
    export.add_argument("chiplets", type=int)
    export.add_argument("--booksim-topology", default=None)
    export.add_argument("--booksim-config", default=None)
    export.add_argument("--svg", default=None)

    feasibility = subparsers.add_parser(
        "feasibility", help="check D2D link-length and package feasibility"
    )
    feasibility.add_argument("kind", choices=_KINDS)
    feasibility.add_argument("chiplets", type=int)
    feasibility.add_argument("--silicon-interposer", action="store_true")

    return parser


def _command_info(args: argparse.Namespace) -> int:
    design = ChipletDesign.create(args.kind, args.chiplets)
    rows = []
    for key, value in design.summary().items():
        rows.append([key, value])
    print(format_table(["metric", "value"], rows))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    candidate = ChipletDesign.create(args.kind, args.chiplets)
    baseline = ChipletDesign.create(args.baseline, args.chiplets)
    print(compare_designs(candidate, baseline).render())
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.number == "6":
        figure6 = run_figure6(range(1, args.max_chiplets + 1))
        csv_text = (
            figure6.diameter_experiment().to_csv()
            + figure6.bisection_experiment().to_csv()
        )
    else:
        figure7 = run_figure7(range(2, args.max_chiplets + 1))
        csv_text = "".join(
            experiment.to_csv()
            for experiment in (
                figure7.latency_experiment(),
                figure7.throughput_experiment(),
                figure7.normalized_latency_experiment(),
                figure7.normalized_throughput_experiment(),
            )
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(csv_text)
        print(f"wrote {args.output}")
    else:
        print(csv_text, end="")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    design = ChipletDesign.create(args.kind, args.chiplets)
    config = SimulationConfig(
        warmup_cycles=max(100, args.cycles // 2),
        measurement_cycles=args.cycles,
        drain_cycles=args.cycles * 2,
    )
    result = design.simulate(
        injection_rate=args.injection_rate, traffic=args.traffic, config=config
    )
    rows = [
        ["design", design.label],
        ["offered load [flit/cyc/EP]", result.injection_rate],
        ["avg packet latency [cyc]", result.packet_latency.mean],
        ["p99 packet latency [cyc]", result.packet_latency.p99],
        ["accepted [flit/cyc/EP]", result.accepted_flit_rate],
        ["throughput [Tb/s]", result.accepted_flit_rate * design.full_global_bandwidth_tbps],
        ["measured packets delivered", result.measured_packets_ejected],
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _command_export(args: argparse.Namespace) -> int:
    arrangement = make_arrangement(args.kind, args.chiplets)
    wrote_something = False
    if args.booksim_topology and args.booksim_config:
        write_booksim_inputs(arrangement, args.booksim_topology, args.booksim_config)
        print(f"wrote {args.booksim_topology} and {args.booksim_config}")
        wrote_something = True
    elif args.booksim_topology or args.booksim_config:
        print("error: --booksim-topology and --booksim-config must be given together",
              file=sys.stderr)
        return 2
    if args.svg:
        if arrangement.placement is None:
            print("error: the honeycomb has no rectangular placement to render",
                  file=sys.stderr)
            return 2
        save_svg(placement_svg(arrangement.placement), args.svg)
        print(f"wrote {args.svg}")
        wrote_something = True
    if not wrote_something:
        print("nothing to export: pass --svg and/or --booksim-topology/--booksim-config",
              file=sys.stderr)
        return 2
    return 0


def _command_feasibility(args: argparse.Namespace) -> int:
    arrangement = make_arrangement(args.kind, args.chiplets)
    report = check_package_feasibility(
        arrangement, silicon_interposer=args.silicon_interposer
    )
    rows = [
        ["chiplet width [mm]", report.shape.width_mm],
        ["chiplet height [mm]", report.shape.height_mm],
        ["estimated link length [mm]", report.link_length_mm],
        ["link length limit [mm]", report.max_link_length_mm],
        ["package width [mm]", report.package_width_mm],
        ["package height [mm]", report.package_height_mm],
        ["feasible", report.link_length_ok],
    ]
    print(format_table(["metric", "value"], rows))
    for violation in report.violations():
        print(f"VIOLATION: {violation}")
    return 0 if report.link_length_ok else 1


_COMMANDS = {
    "info": _command_info,
    "compare": _command_compare,
    "figure": _command_figure,
    "simulate": _command_simulate,
    "export": _command_export,
    "feasibility": _command_feasibility,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``hexamesh`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
