"""Markdown report generation.

Turns the output of :func:`repro.evaluation.runner.run_all_experiments`
into a self-contained Markdown document in the style of EXPERIMENTS.md:
one section per experiment with a per-series summary table, plus the
headline-claim comparison against the paper's quoted numbers.  Useful for
regenerating the reproduction record after changing parameters.
"""

from __future__ import annotations

from repro.evaluation.headline import HeadlineClaims
from repro.evaluation.series import ExperimentResult
from repro.evaluation.tables import format_table

#: Short description of each experiment id, used as the section preamble.
_EXPERIMENT_DESCRIPTIONS = {
    "FIG4": "Arrangement annotations of Figure 4 (neighbour counts, formula checks).",
    "FIG6a": "Network diameter of every arrangement and regularity class (Figure 6a).",
    "FIG6b": "Bisection bandwidth, closed-form or estimated (Figure 6b).",
    "TAB1": "D2D link bandwidth model with the Section VI-B parameters.",
    "FIG7a": "Zero-load latency in cycles (Figure 7a).",
    "FIG7b": "Saturation throughput in Tb/s (Figure 7b).",
    "FIG7c": "Zero-load latency relative to the grid baseline (Figure 7c).",
    "FIG7d": "Saturation throughput relative to the grid baseline (Figure 7d).",
    "HEADLINE": "The four claims of the paper's abstract.",
}

#: The paper's abstract numbers, keyed like :meth:`HeadlineClaims.as_dict`.
_PAPER_CLAIMS = {
    "diameter_reduction_percent": HeadlineClaims.PAPER_DIAMETER_REDUCTION,
    "bisection_improvement_percent": HeadlineClaims.PAPER_BISECTION_IMPROVEMENT,
    "latency_reduction_percent": HeadlineClaims.PAPER_LATENCY_REDUCTION,
    "throughput_improvement_percent": HeadlineClaims.PAPER_THROUGHPUT_IMPROVEMENT,
}


def _series_summary_table(result: ExperimentResult) -> str:
    rows = []
    for series in result.series:
        ys = series.ys
        if not ys:
            continue
        rows.append([series.name, len(ys), min(ys), sum(ys) / len(ys), max(ys)])
    if not rows:
        return "_(no data)_"
    return format_table(["series", "points", "min", "mean", "max"], rows)


def _headline_section(result: ExperimentResult) -> str:
    claims = result.metadata.get("claims", {})
    rows = []
    for key, paper_value in _PAPER_CLAIMS.items():
        reproduced = claims.get(key)
        rows.append(
            [key, paper_value, reproduced if reproduced is not None else "n/a"]
        )
    return format_table(["claim", "paper", "reproduced"], rows)


def generate_markdown_report(
    results: dict[str, ExperimentResult],
    *,
    title: str = "HexaMesh reproduction report",
) -> str:
    """Render all experiment results as one Markdown document."""
    if not results:
        raise ValueError("cannot generate a report from an empty result set")
    lines: list[str] = [f"# {title}", ""]

    if "HEADLINE" in results:
        lines += [
            "## Headline claims (HexaMesh vs. grid)",
            "",
            "```",
            _headline_section(results["HEADLINE"]),
            "```",
            "",
        ]

    for experiment_id in sorted(results):
        if experiment_id == "HEADLINE":
            continue
        result = results[experiment_id]
        description = _EXPERIMENT_DESCRIPTIONS.get(experiment_id, result.title)
        lines += [
            f"## {experiment_id} — {result.title}",
            "",
            description,
            "",
            f"*x axis:* {result.x_label} — *y axis:* {result.y_label}",
            "",
            "```",
            _series_summary_table(result),
            "```",
            "",
        ]
        mode = result.metadata.get("mode")
        if mode:
            lines += [f"_Engine: {mode}_", ""]
    return "\n".join(lines)


def write_markdown_report(
    results: dict[str, ExperimentResult],
    path: str,
    *,
    title: str = "HexaMesh reproduction report",
) -> None:
    """Write :func:`generate_markdown_report` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(generate_markdown_report(results, title=title))
