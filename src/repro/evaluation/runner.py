"""One-call orchestration of every experiment.

:func:`run_all_experiments` regenerates the data behind every figure and
table of the paper, optionally writes each as a CSV file and returns the
results indexed by experiment id.  The benchmarks and the ``examples``
scripts are thin wrappers around this runner.
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from repro.evaluation.headline import compute_headline_claims
from repro.evaluation.performance import run_figure7, run_link_bandwidth_table
from repro.evaluation.proxies import figure4_annotations, run_figure6
from repro.evaluation.series import ExperimentResult
from repro.linkmodel.parameters import EvaluationParameters
from repro.noc.config import SimulationConfig
from repro.utils.validation import check_in_choices


def run_all_experiments(
    *,
    max_chiplets: int = 100,
    mode: str = "analytical",
    simulation_points: Sequence[int] | None = None,
    simulation_config: SimulationConfig | None = None,
    parameters: EvaluationParameters | None = None,
    output_dir: str | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> dict[str, ExperimentResult]:
    """Run every experiment of the evaluation and return the results by id.

    Parameters
    ----------
    max_chiplets:
        Upper end of the chiplet-count sweeps (the paper uses 100).
    mode:
        Engine for Figure 7: ``"analytical"``, ``"hybrid"`` or
        ``"simulation"`` (see :func:`repro.evaluation.performance.run_figure7`).
    simulation_points:
        Chiplet counts to run through the cycle-accurate simulator in
        hybrid / simulation mode.
    simulation_config:
        Optional simulator phase-length override (use
        :meth:`SimulationConfig.fast_functional` for quick runs).
    parameters:
        Link-model parameters; defaults to the paper's Section VI values.
    output_dir:
        When given, each experiment is also written as
        ``<output_dir>/<experiment_id>.csv``.
    jobs:
        Worker processes for the cycle-accurate Figure 7 points (see
        :func:`repro.evaluation.performance.run_figure7`).
    cache_dir:
        Optional on-disk result cache for the cycle-accurate points.
    """
    check_in_choices("mode", mode, ("analytical", "simulation", "hybrid"))
    if parameters is None:
        parameters = EvaluationParameters()

    results: dict[str, ExperimentResult] = {}
    timings: dict[str, float] = {}

    start = time.perf_counter()
    results["FIG4"] = figure4_annotations(range(4, max_chiplets + 1))
    timings["FIG4"] = time.perf_counter() - start

    start = time.perf_counter()
    figure6 = run_figure6(range(1, max_chiplets + 1))
    results["FIG6a"] = figure6.diameter_experiment()
    results["FIG6b"] = figure6.bisection_experiment()
    timings["FIG6"] = time.perf_counter() - start

    start = time.perf_counter()
    results["TAB1"] = run_link_bandwidth_table(parameters=parameters)
    timings["TAB1"] = time.perf_counter() - start

    start = time.perf_counter()
    figure7 = run_figure7(
        range(2, max_chiplets + 1),
        parameters=parameters,
        mode=mode,
        simulation_points=simulation_points,
        simulation_config=simulation_config,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    results["FIG7a"] = figure7.latency_experiment()
    results["FIG7b"] = figure7.throughput_experiment()
    results["FIG7c"] = figure7.normalized_latency_experiment()
    results["FIG7d"] = figure7.normalized_throughput_experiment()
    timings["FIG7"] = time.perf_counter() - start

    claims = compute_headline_claims(figure7)
    headline = ExperimentResult(
        experiment_id="HEADLINE",
        title="Headline claims of the abstract (HexaMesh vs. grid)",
        x_label="claim",
        y_label="percent",
    )
    from repro.evaluation.series import DataSeries  # local import to avoid cycle noise

    series = DataSeries(name="hexamesh vs grid")
    for index, (name, value) in enumerate(sorted(claims.as_dict().items())):
        series.add(index, value, claim=name)
    headline.series.append(series)
    headline.metadata["claims"] = claims.as_dict()
    results["HEADLINE"] = headline

    for experiment_id, result in results.items():
        result.metadata.setdefault("mode", mode)
        result.metadata.setdefault("timings_s", timings)

    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        for experiment_id, result in results.items():
            result.write_csv(os.path.join(output_dir, f"{experiment_id}.csv"))

    return results
