"""The headline claims of the paper's abstract.

The abstract summarises HexaMesh with four numbers relative to the grid:

* network diameter reduced by **42 %** (asymptotically, from the proxy
  formulas),
* bisection bandwidth improved by **130 %** (asymptotically),
* latency reduced by **19 %** on average (simulation),
* throughput improved by **34 %** on average (simulation).

This module recomputes all four from the library's own results so the
reproduction can be compared against the paper at a glance (the numbers are
also recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrangements.base import ArrangementKind
from repro.evaluation.performance import Figure7Result
from repro.graphs.analytical import (
    asymptotic_bisection_improvement_percent,
    asymptotic_diameter_reduction_percent,
)


@dataclass(frozen=True)
class HeadlineClaims:
    """The four abstract numbers, as reproduced by this library."""

    diameter_reduction_percent: float
    bisection_improvement_percent: float
    latency_reduction_percent: float
    throughput_improvement_percent: float

    #: The values quoted in the paper's abstract, for reference.
    PAPER_DIAMETER_REDUCTION = 42.0
    PAPER_BISECTION_IMPROVEMENT = 130.0
    PAPER_LATENCY_REDUCTION = 19.0
    PAPER_THROUGHPUT_IMPROVEMENT = 34.0

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary used by reports and EXPERIMENTS.md."""
        return {
            "diameter_reduction_percent": self.diameter_reduction_percent,
            "bisection_improvement_percent": self.bisection_improvement_percent,
            "latency_reduction_percent": self.latency_reduction_percent,
            "throughput_improvement_percent": self.throughput_improvement_percent,
        }


def asymptotic_claims() -> tuple[float, float]:
    """The two asymptotic proxy claims (diameter −42 %, bisection +130 %)."""
    return (
        asymptotic_diameter_reduction_percent("hexamesh"),
        asymptotic_bisection_improvement_percent("hexamesh"),
    )


def average_improvements(
    figure7: Figure7Result,
    *,
    kind: ArrangementKind | str = ArrangementKind.HEXAMESH,
    min_chiplets: int = 2,
) -> tuple[float, float]:
    """Average latency reduction and throughput improvement vs. the grid.

    The paper reports the averages over its whole evaluated range (2–100
    chiplets); pass ``min_chiplets=10`` to reproduce the "for N >= 10,
    latency is reduced by almost 20 %" observation.

    Returns ``(latency_reduction_percent, throughput_improvement_percent)``.
    """
    kind = ArrangementKind.from_name(kind)
    counts = [c for c in figure7.chiplet_counts() if c >= min_chiplets]
    if not counts:
        raise ValueError("no chiplet counts at or above the requested minimum")
    latency_ratios = []
    throughput_ratios = []
    for count in counts:
        latency_ratios.append(figure7.normalized_latency_percent(kind, count) / 100.0)
        throughput_ratios.append(figure7.normalized_throughput_percent(kind, count) / 100.0)
    mean_latency_ratio = sum(latency_ratios) / len(latency_ratios)
    mean_throughput_ratio = sum(throughput_ratios) / len(throughput_ratios)
    return (
        (1.0 - mean_latency_ratio) * 100.0,
        (mean_throughput_ratio - 1.0) * 100.0,
    )


def compute_headline_claims(figure7: Figure7Result, *, min_chiplets: int = 2) -> HeadlineClaims:
    """Assemble all four headline numbers from the library's results."""
    diameter_reduction, bisection_improvement = asymptotic_claims()
    latency_reduction, throughput_improvement = average_improvements(
        figure7, min_chiplets=min_chiplets
    )
    return HeadlineClaims(
        diameter_reduction_percent=diameter_reduction,
        bisection_improvement_percent=bisection_improvement,
        latency_reduction_percent=latency_reduction,
        throughput_improvement_percent=throughput_improvement,
    )
