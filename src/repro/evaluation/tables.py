"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows / series the paper reports;
these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.series import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in string_rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_experiment(result: ExperimentResult, *, max_rows_per_series: int | None = None) -> str:
    """Render an experiment result as a text table (one row per data point)."""
    rows: list[list[object]] = []
    for series in result.series:
        points = series.points
        if max_rows_per_series is not None:
            points = points[:max_rows_per_series]
        for point in points:
            rows.append([series.name, point.x, point.y])
    table = format_table(["series", result.x_label, result.y_label], rows)
    return f"{result.experiment_id}: {result.title}\n{table}"


def render_series_summary(result: ExperimentResult) -> str:
    """One-line-per-series summary (count, min, mean, max of the y values)."""
    rows: list[list[object]] = []
    for series in result.series:
        ys = series.ys
        if not ys:
            continue
        rows.append(
            [series.name, len(ys), min(ys), sum(ys) / len(ys), max(ys)]
        )
    table = format_table(["series", "points", "min", "mean", "max"], rows)
    return f"{result.experiment_id}: {result.title}\n{table}"
