"""Experiment runners that regenerate the paper's figures and headline claims.

Per-experiment index (see DESIGN.md for the full mapping):

* ``FIG4``  — :func:`repro.evaluation.proxies.figure4_annotations`
* ``FIG6a`` — :func:`repro.evaluation.proxies.run_figure6_diameter`
* ``FIG6b`` — :func:`repro.evaluation.proxies.run_figure6_bisection`
* ``TAB1``  — :func:`repro.evaluation.performance.run_link_bandwidth_table`
* ``FIG7a/b/c/d`` — :func:`repro.evaluation.performance.run_figure7`
* ``HEADLINE`` — :mod:`repro.evaluation.headline`
"""

from repro.evaluation.headline import (
    HeadlineClaims,
    asymptotic_claims,
    average_improvements,
    compute_headline_claims,
)
from repro.evaluation.performance import (
    Figure7Point,
    Figure7Result,
    run_figure7,
    run_link_bandwidth_table,
)
from repro.evaluation.proxies import (
    Figure6Point,
    Figure6Result,
    figure4_annotations,
    run_figure6,
    run_figure6_bisection,
    run_figure6_diameter,
)
from repro.evaluation.series import DataPoint, DataSeries, ExperimentResult
from repro.evaluation.tables import format_table, render_experiment
from repro.evaluation.runner import run_all_experiments

__all__ = [
    "DataPoint",
    "DataSeries",
    "ExperimentResult",
    "Figure6Point",
    "Figure6Result",
    "Figure7Point",
    "Figure7Result",
    "HeadlineClaims",
    "asymptotic_claims",
    "average_improvements",
    "compute_headline_claims",
    "figure4_annotations",
    "format_table",
    "render_experiment",
    "run_all_experiments",
    "run_figure6",
    "run_figure6_bisection",
    "run_figure6_diameter",
    "run_figure7",
    "run_link_bandwidth_table",
]
