"""Figure 4 annotations and Figure 6 (performance proxies).

Figure 6 of the paper plots, for chiplet counts from 1 to 100 and every
regularity class each count admits:

* (a) the network diameter,
* (b) the bisection bandwidth — closed-form for regular arrangements,
  estimated with a graph partitioner (METIS in the paper, the portfolio of
  :mod:`repro.partition` here) for semi-regular and irregular ones.

Figure 4 annotates each arrangement family with its minimum / maximum
number of neighbours and the closed-form diameter and bisection formulas;
:func:`figure4_annotations` regenerates that table from actual generated
arrangements so the formulas are validated against construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.factory import available_regularities, make_arrangement
from repro.graphs.analytical import (
    bisection_bandwidth_formula,
    diameter_formula,
    has_regular_arrangement,
)
from repro.graphs.metrics import diameter as graph_diameter
from repro.partition.estimator import estimate_bisection_bandwidth
from repro.evaluation.series import DataSeries, ExperimentResult

#: The arrangement families plotted in Figure 6 (the honeycomb shares the
#: brickwall graph, so the paper omits it from the proxy plots).
FIGURE6_KINDS: tuple[ArrangementKind, ...] = (
    ArrangementKind.GRID,
    ArrangementKind.BRICKWALL,
    ArrangementKind.HEXAMESH,
)


@dataclass(frozen=True)
class Figure6Point:
    """One arrangement's proxy values."""

    kind: ArrangementKind
    regularity: Regularity
    num_chiplets: int
    diameter: int
    bisection_bandwidth: float
    bisection_source: str  # "formula" or "estimated"


@dataclass
class Figure6Result:
    """All data of Figure 6 (both panels)."""

    points: list[Figure6Point]
    max_chiplets: int

    def for_kind(self, kind: ArrangementKind) -> list[Figure6Point]:
        """All points of one arrangement family."""
        return [p for p in self.points if p.kind is kind]

    def point(
        self, kind: ArrangementKind, num_chiplets: int, regularity: Regularity | None = None
    ) -> Figure6Point:
        """Look up a single point (best regularity when none is given)."""
        candidates = [
            p for p in self.points if p.kind is kind and p.num_chiplets == num_chiplets
        ]
        if regularity is not None:
            candidates = [p for p in candidates if p.regularity is regularity]
        if not candidates:
            raise KeyError(f"no Figure 6 point for {kind.value} N={num_chiplets}")
        order = {Regularity.REGULAR: 0, Regularity.SEMI_REGULAR: 1, Regularity.IRREGULAR: 2}
        return sorted(candidates, key=lambda p: order[p.regularity])[0]

    def diameter_experiment(self) -> ExperimentResult:
        """The Figure 6a data as a generic experiment result."""
        return _points_to_experiment(
            self.points,
            experiment_id="FIG6a",
            title="Network diameter of chiplet arrangements",
            y_label="diameter",
            value=lambda p: p.diameter,
        )

    def bisection_experiment(self) -> ExperimentResult:
        """The Figure 6b data as a generic experiment result."""
        return _points_to_experiment(
            self.points,
            experiment_id="FIG6b",
            title="Estimated bisection bandwidth of chiplet arrangements",
            y_label="bisection bandwidth [links]",
            value=lambda p: p.bisection_bandwidth,
        )


def _points_to_experiment(points, *, experiment_id, title, y_label, value) -> ExperimentResult:
    series_map: dict[str, DataSeries] = {}
    for point in points:
        name = f"{point.kind.value} ({point.regularity.value})"
        series = series_map.setdefault(name, DataSeries(name=name))
        series.add(
            point.num_chiplets,
            value(point),
            regularity=point.regularity.value,
            bisection_source=point.bisection_source,
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="number of chiplets",
        y_label=y_label,
        series=list(series_map.values()),
    )


def evaluate_arrangement_proxies(arrangement: Arrangement, *, seed: int = 0) -> Figure6Point:
    """Diameter and bisection bandwidth of one concrete arrangement.

    Regular arrangements use the paper's closed-form bisection formula;
    all other arrangements use the partitioning estimator (the paper uses
    METIS for those).
    """
    kind = arrangement.kind
    num_chiplets = arrangement.num_chiplets
    measured_diameter = graph_diameter(arrangement.graph)
    if arrangement.regularity is Regularity.REGULAR and has_regular_arrangement(
        kind.value, num_chiplets
    ):
        bisection = bisection_bandwidth_formula(kind.value, num_chiplets)
        source = "formula"
    else:
        bisection = float(estimate_bisection_bandwidth(arrangement.graph, seed=seed))
        source = "estimated"
    return Figure6Point(
        kind=kind,
        regularity=arrangement.regularity,
        num_chiplets=num_chiplets,
        diameter=measured_diameter,
        bisection_bandwidth=bisection,
        bisection_source=source,
    )


def run_figure6(
    chiplet_counts: Iterable[int] | None = None,
    *,
    kinds: Sequence[ArrangementKind | str] = FIGURE6_KINDS,
    all_regularities: bool = True,
    seed: int = 0,
) -> Figure6Result:
    """Regenerate the data of Figure 6 (both panels).

    Parameters
    ----------
    chiplet_counts:
        Chiplet counts to evaluate; defaults to 1..100 as in the paper.
    kinds:
        Arrangement families to include.
    all_regularities:
        Evaluate every regularity class each count admits (as the paper
        plots) instead of only the best class.
    seed:
        Seed of the bisection estimator.
    """
    if chiplet_counts is None:
        chiplet_counts = range(1, 101)
    counts = list(chiplet_counts)
    points: list[Figure6Point] = []
    for count in counts:
        for kind_name in kinds:
            kind = ArrangementKind.from_name(kind_name)
            regs = (
                available_regularities(kind, count)
                if all_regularities
                else [None]
            )
            for regularity in regs:
                arrangement = make_arrangement(kind, count, regularity)
                points.append(evaluate_arrangement_proxies(arrangement, seed=seed))
    return Figure6Result(points=points, max_chiplets=max(counts))


def run_figure6_diameter(
    chiplet_counts: Iterable[int] | None = None, **kwargs
) -> ExperimentResult:
    """Figure 6a only (network diameter)."""
    return run_figure6(chiplet_counts, **kwargs).diameter_experiment()


def run_figure6_bisection(
    chiplet_counts: Iterable[int] | None = None, **kwargs
) -> ExperimentResult:
    """Figure 6b only (bisection bandwidth)."""
    return run_figure6(chiplet_counts, **kwargs).bisection_experiment()


def figure4_annotations(chiplet_counts: Iterable[int] | None = None) -> ExperimentResult:
    """Regenerate the per-arrangement annotations of Figure 4.

    For each arrangement family and each (regular) chiplet count, the
    result records the minimum and maximum number of neighbours, the
    measured diameter and the closed-form diameter / bisection values —
    verifying that generated arrangements satisfy the figure's claims.
    """
    if chiplet_counts is None:
        chiplet_counts = range(4, 101)
    result = ExperimentResult(
        experiment_id="FIG4",
        title="Arrangement properties (Figure 4 annotations)",
        x_label="number of chiplets",
        y_label="value",
    )
    kinds = (
        ArrangementKind.GRID,
        ArrangementKind.BRICKWALL,
        ArrangementKind.HONEYCOMB,
        ArrangementKind.HEXAMESH,
    )
    series: dict[str, DataSeries] = {}
    for kind in kinds:
        for metric in ("min_neighbors", "max_neighbors", "diameter", "diameter_formula",
                       "bisection_formula"):
            name = f"{kind.value}:{metric}"
            series[name] = DataSeries(name=name)
    for count in chiplet_counts:
        for kind in kinds:
            if not has_regular_arrangement(kind.value, count):
                continue
            arrangement = make_arrangement(kind, count, Regularity.REGULAR)
            stats = arrangement.degree_statistics()
            series[f"{kind.value}:min_neighbors"].add(count, stats.minimum)
            series[f"{kind.value}:max_neighbors"].add(count, stats.maximum)
            series[f"{kind.value}:diameter"].add(count, arrangement.diameter())
            series[f"{kind.value}:diameter_formula"].add(
                count, diameter_formula(kind.value, count)
            )
            series[f"{kind.value}:bisection_formula"].add(
                count, bisection_bandwidth_formula(kind.value, count)
            )
    result.series = [s for s in series.values() if len(s) > 0]
    return result
