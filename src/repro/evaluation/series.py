"""Generic containers for experiment data series.

Every experiment runner returns its data both as structured dataclasses
(specific to the experiment) and as generic :class:`DataSeries` objects so
that CSV export, table rendering and plotting scripts can treat all
experiments uniformly.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class DataPoint:
    """One (x, y) sample of a series, with optional free-form annotations."""

    x: float
    y: float
    annotations: dict[str, Any] = field(default_factory=dict)


@dataclass
class DataSeries:
    """A named sequence of data points (one line / point cloud of a figure)."""

    name: str
    points: list[DataPoint] = field(default_factory=list)

    def add(self, x: float, y: float, **annotations: Any) -> None:
        """Append a point to the series."""
        self.points.append(DataPoint(x=float(x), y=float(y), annotations=dict(annotations)))

    @property
    def xs(self) -> list[float]:
        """All x values in insertion order."""
        return [p.x for p in self.points]

    @property
    def ys(self) -> list[float]:
        """All y values in insertion order."""
        return [p.y for p in self.points]

    def y_at(self, x: float) -> float:
        """The y value at a given x (raises ``KeyError`` if absent)."""
        for point in self.points:
            if point.x == x:
                return point.y
        raise KeyError(f"series {self.name!r} has no point at x={x}")

    def mean_y(self) -> float:
        """Arithmetic mean of the y values."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.ys) / len(self.points)

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class ExperimentResult:
    """A complete experiment: several series plus metadata.

    Attributes
    ----------
    experiment_id:
        Short identifier matching DESIGN.md (``"FIG6a"``, ``"FIG7b"``, ...).
    title:
        Human-readable title (the figure caption of the paper).
    x_label / y_label:
        Axis labels.
    series:
        The data series of the experiment.
    metadata:
        Anything else worth recording (parameters, engine used, runtimes).
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[DataSeries] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def get_series(self, name: str) -> DataSeries:
        """Find a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"experiment {self.experiment_id} has no series named {name!r}")

    def series_names(self) -> list[str]:
        """Names of all series in insertion order."""
        return [s.name for s in self.series]

    def to_csv(self) -> str:
        """Render the experiment as a CSV string (one row per point)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["experiment", "series", self.x_label, self.y_label, "annotations"])
        for series in self.series:
            for point in series.points:
                writer.writerow(
                    [
                        self.experiment_id,
                        series.name,
                        point.x,
                        point.y,
                        ";".join(
                            f"{key}={value}"
                            for key, value in sorted(point.annotations.items())
                        ),
                    ]
                )
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to a file."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())


def merge_results(results: Iterable[ExperimentResult]) -> dict[str, ExperimentResult]:
    """Index experiment results by their id, rejecting duplicates."""
    merged: dict[str, ExperimentResult] = {}
    for result in results:
        if result.experiment_id in merged:
            raise ValueError(f"duplicate experiment id {result.experiment_id!r}")
        merged[result.experiment_id] = result
    return merged
