"""Figure 7 (latency / throughput) and the link-bandwidth table.

For every arrangement family and chiplet count the experiment computes:

* the **zero-load latency** in cycles (Figure 7a),
* the **saturation throughput** in Tb/s (Figure 7b): relative saturation
  throughput (fraction of the endpoint injection capacity) multiplied by
  the full global bandwidth, which the D2D link model provides from the
  per-link bandwidth, the chiplet count and the endpoints per chiplet,
* both quantities normalised to the grid baseline at the same chiplet
  count (Figures 7c and 7d).

Two evaluation engines are supported:

* ``mode="analytical"`` — the closed-form models of :mod:`repro.perfmodel`
  (hop-count latency and channel-load saturation); fast enough to sweep
  every chiplet count from 2 to 100 exactly like the paper,
* ``mode="simulation"`` — the cycle-accurate simulator of
  :mod:`repro.noc`, used for the chiplet counts listed in
  ``simulation_points`` (all others fall back to the analytical engine),
  mirroring how one would use BookSim2 for spot checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.factory import make_arrangement
from repro.evaluation.series import DataSeries, ExperimentResult
from repro.linkmodel.bandwidth import D2DLinkModel
from repro.linkmodel.parameters import EvaluationParameters
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.noc.sweep import measure_saturation_throughput, measure_zero_load_latency
from repro.perfmodel.latency import zero_load_latency_cycles
from repro.perfmodel.throughput import (
    bisection_limited_saturation_fraction,
    saturation_throughput_fraction,
)
from repro.utils.validation import check_in_choices

#: Arrangement families evaluated in Figure 7.
FIGURE7_KINDS: tuple[ArrangementKind, ...] = (
    ArrangementKind.GRID,
    ArrangementKind.BRICKWALL,
    ArrangementKind.HEXAMESH,
)


@dataclass(frozen=True)
class Figure7Point:
    """Performance of one arrangement at one chiplet count."""

    kind: ArrangementKind
    regularity: Regularity
    num_chiplets: int
    zero_load_latency_cycles: float
    saturation_fraction: float
    link_bandwidth_gbps: float
    full_global_bandwidth_tbps: float
    engine: str  # "analytical" or "simulation"

    @property
    def saturation_throughput_tbps(self) -> float:
        """Saturation throughput in Tb/s (Figure 7b's y-axis)."""
        return self.saturation_fraction * self.full_global_bandwidth_tbps


@dataclass
class Figure7Result:
    """All data of Figure 7 (all four panels)."""

    points: list[Figure7Point]
    parameters: EvaluationParameters
    metadata: dict[str, object] = field(default_factory=dict)

    def point(self, kind: ArrangementKind | str, num_chiplets: int) -> Figure7Point:
        """The point of one arrangement family at one chiplet count."""
        kind = ArrangementKind.from_name(kind)
        for point in self.points:
            if point.kind is kind and point.num_chiplets == num_chiplets:
                return point
        raise KeyError(f"no Figure 7 point for {kind.value} N={num_chiplets}")

    def chiplet_counts(self) -> list[int]:
        """All chiplet counts present, sorted."""
        return sorted({p.num_chiplets for p in self.points})

    # -- normalisation (Figures 7c and 7d) ------------------------------------

    def normalized_latency_percent(
        self, kind: ArrangementKind | str, num_chiplets: int
    ) -> float:
        """Zero-load latency relative to the grid baseline, in percent."""
        kind = ArrangementKind.from_name(kind)
        baseline = self.point(ArrangementKind.GRID, num_chiplets)
        target = self.point(kind, num_chiplets)
        return 100.0 * target.zero_load_latency_cycles / baseline.zero_load_latency_cycles

    def normalized_throughput_percent(
        self, kind: ArrangementKind | str, num_chiplets: int
    ) -> float:
        """Saturation throughput relative to the grid baseline, in percent."""
        kind = ArrangementKind.from_name(kind)
        baseline = self.point(ArrangementKind.GRID, num_chiplets)
        target = self.point(kind, num_chiplets)
        return (
            100.0
            * target.saturation_throughput_tbps
            / baseline.saturation_throughput_tbps
        )

    # -- experiment exports -----------------------------------------------------

    def latency_experiment(self) -> ExperimentResult:
        """Figure 7a: zero-load latency in cycles."""
        return self._experiment(
            "FIG7a",
            "Zero-load latency",
            "zero-load latency [cycles]",
            lambda p: p.zero_load_latency_cycles,
        )

    def throughput_experiment(self) -> ExperimentResult:
        """Figure 7b: saturation throughput in Tb/s."""
        return self._experiment(
            "FIG7b",
            "Saturation throughput",
            "saturation throughput [Tb/s]",
            lambda p: p.saturation_throughput_tbps,
        )

    def normalized_latency_experiment(self) -> ExperimentResult:
        """Figure 7c: zero-load latency relative to the grid [%]."""
        return self._normalized_experiment(
            "FIG7c",
            "Zero-load latency relative to the grid",
            "zero-load latency [%]",
            self.normalized_latency_percent,
        )

    def normalized_throughput_experiment(self) -> ExperimentResult:
        """Figure 7d: saturation throughput relative to the grid [%]."""
        return self._normalized_experiment(
            "FIG7d",
            "Saturation throughput relative to the grid",
            "saturation throughput [%]",
            self.normalized_throughput_percent,
        )

    def _experiment(self, experiment_id, title, y_label, value) -> ExperimentResult:
        series_map: dict[str, DataSeries] = {}
        for point in self.points:
            name = f"{point.kind.value} ({point.regularity.value})"
            series = series_map.setdefault(name, DataSeries(name=name))
            series.add(
                point.num_chiplets,
                value(point),
                regularity=point.regularity.value,
                engine=point.engine,
            )
        # "AVG" series per kind, as plotted in the paper.
        for kind in FIGURE7_KINDS:
            kind_points = sorted(
                (p for p in self.points if p.kind is kind), key=lambda p: p.num_chiplets
            )
            if not kind_points:
                continue
            avg = DataSeries(name=f"{kind.value} (AVG)")
            avg.add(
                kind_points[0].num_chiplets,
                sum(value(p) for p in kind_points) / len(kind_points),
                window="all",
            )
            series_map[avg.name] = avg
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            x_label="number of chiplets",
            y_label=y_label,
            series=list(series_map.values()),
            metadata=dict(self.metadata),
        )

    def _normalized_experiment(self, experiment_id, title, y_label, normalizer) -> ExperimentResult:
        series_map: dict[str, DataSeries] = {}
        counts = self.chiplet_counts()
        for kind in (ArrangementKind.BRICKWALL, ArrangementKind.HEXAMESH):
            name = f"{kind.value} vs grid"
            series = DataSeries(name=name)
            for count in counts:
                try:
                    series.add(count, normalizer(kind, count))
                except KeyError:
                    continue
            series_map[name] = series
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            x_label="number of chiplets",
            y_label=y_label,
            series=list(series_map.values()),
            metadata=dict(self.metadata),
        )


# ---------------------------------------------------------------------------
# Experiment runners
# ---------------------------------------------------------------------------


def _simulation_config_from(
    parameters: EvaluationParameters, base: SimulationConfig | None
) -> SimulationConfig:
    """Derive a simulator configuration from the evaluation parameters."""
    if base is None:
        base = SimulationConfig()
    return SimulationConfig(
        endpoints_per_chiplet=parameters.endpoints_per_chiplet,
        num_virtual_channels=parameters.num_virtual_channels,
        buffer_depth_flits=parameters.buffer_depth_flits,
        router_latency_cycles=parameters.router_latency_cycles,
        link_latency_cycles=parameters.link_latency_cycles,
        local_latency_cycles=base.local_latency_cycles,
        packet_size_flits=base.packet_size_flits,
        warmup_cycles=base.warmup_cycles,
        measurement_cycles=base.measurement_cycles,
        drain_cycles=base.drain_cycles,
        seed=base.seed,
    )


def evaluate_arrangement_performance(
    arrangement: Arrangement,
    parameters: EvaluationParameters | None = None,
    *,
    engine: str = "analytical",
    throughput_model: str = "bisection",
    simulation_config: SimulationConfig | None = None,
    noc_engine: str = DEFAULT_ENGINE,
) -> Figure7Point:
    """Latency / throughput of one arrangement with either engine.

    Parameters
    ----------
    arrangement:
        The arrangement to evaluate.
    parameters:
        Architectural parameters (defaults to the paper's).
    engine:
        ``"analytical"`` (closed-form models) or ``"simulation"``
        (cycle-accurate simulator).
    throughput_model:
        Analytical saturation model: ``"bisection"`` (bisection-limited
        bound, the default — it matches the behaviour the paper's Figure 7d
        discussion describes) or ``"channel_load"`` (per-node even-split
        channel loads, more conservative).  Ignored by the simulation
        engine.
    simulation_config:
        Optional simulator phase-length / seed override.
    noc_engine:
        Cycle-loop engine for the simulation engine (``"active"``,
        ``"vectorized"`` or ``"legacy"``; all bit-identical).  Ignored in
        analytical mode.
    """
    check_in_choices("engine", engine, ("analytical", "simulation"))
    check_in_choices("throughput_model", throughput_model, ("bisection", "channel_load"))
    check_in_choices("noc_engine", noc_engine, ENGINE_NAMES)
    if parameters is None:
        parameters = EvaluationParameters()
    config = _simulation_config_from(parameters, simulation_config)

    if engine == "analytical" or arrangement.num_chiplets == 1:
        latency = zero_load_latency_cycles(arrangement.graph, config)
        if throughput_model == "bisection":
            saturation = bisection_limited_saturation_fraction(arrangement.graph, config)
        else:
            saturation = saturation_throughput_fraction(arrangement.graph, config)
    else:
        zero_load = measure_zero_load_latency(
            arrangement.graph, config, engine=noc_engine
        )
        latency = zero_load.packet_latency.mean
        saturation, _ = measure_saturation_throughput(
            arrangement.graph, config, engine=noc_engine
        )

    return _assemble_figure7_point(
        arrangement, parameters, latency=latency, saturation=saturation, engine=engine
    )


def _assemble_figure7_point(
    arrangement: Arrangement,
    parameters: EvaluationParameters,
    *,
    latency: float,
    saturation: float,
    engine: str,
) -> Figure7Point:
    """Attach the link-model bandwidths and build one Figure 7 point.

    The serial path (:func:`evaluate_arrangement_performance`) and the
    parallel path (:func:`_simulated_point_parallel`) both assemble their
    points here, so the bandwidth formulas cannot silently diverge.
    """
    link_model = D2DLinkModel(parameters)
    estimate = link_model.estimate_for_arrangement(arrangement)
    full_global_tbps = (
        arrangement.num_chiplets
        * parameters.endpoints_per_chiplet
        * estimate.bandwidth_bps
        / 1e12
    )
    return Figure7Point(
        kind=arrangement.kind,
        regularity=arrangement.regularity,
        num_chiplets=arrangement.num_chiplets,
        zero_load_latency_cycles=latency,
        saturation_fraction=saturation,
        link_bandwidth_gbps=estimate.bandwidth_gbps,
        full_global_bandwidth_tbps=full_global_tbps,
        engine=engine,
    )


def _simulated_point_parallel(
    arrangement: Arrangement,
    parameters: EvaluationParameters,
    zero_load_result,
    overload_result,
) -> Figure7Point:
    """Assemble a simulation-engine point from pre-computed sweep results."""
    return _assemble_figure7_point(
        arrangement,
        parameters,
        latency=zero_load_result.packet_latency.mean,
        saturation=overload_result.accepted_flit_rate,
        engine="simulation",
    )


def run_figure7(
    chiplet_counts: Iterable[int] | None = None,
    *,
    parameters: EvaluationParameters | None = None,
    mode: str = "analytical",
    throughput_model: str = "bisection",
    simulation_points: Sequence[int] | None = None,
    simulation_config: SimulationConfig | None = None,
    kinds: Sequence[ArrangementKind | str] = FIGURE7_KINDS,
    jobs: int = 1,
    cache_dir: str | None = None,
    noc_engine: str = DEFAULT_ENGINE,
    batch: bool = False,
    progress=None,
    in_flight=None,
) -> Figure7Result:
    """Regenerate the data of Figure 7 (all four panels).

    Parameters
    ----------
    chiplet_counts:
        Chiplet counts to evaluate; defaults to 2..100 as in the paper.
    parameters:
        Link-model / architecture parameters (defaults to the paper's).
    mode:
        ``"analytical"``, ``"simulation"`` or ``"hybrid"``.  In hybrid
        mode, the chiplet counts listed in ``simulation_points`` are run
        through the cycle-accurate simulator and everything else through
        the analytical models.
    throughput_model:
        Analytical saturation model (``"bisection"`` or ``"channel_load"``);
        see :func:`evaluate_arrangement_performance`.
    simulation_points:
        Chiplet counts to simulate cycle-accurately (hybrid/simulation
        modes).  ``None`` in simulation mode means *every* count.
    simulation_config:
        Optional override of the simulator phase lengths / seed.
    kinds:
        Arrangement families to evaluate.
    jobs:
        Worker processes for the cycle-accurate points (two simulations
        per point: zero-load and overload).  Every simulation runs with
        the base configuration seed, so ``jobs > 1`` reproduces the serial
        results exactly.  Analytical points always run inline (they are
        orders of magnitude cheaper than the dispatch overhead).
    cache_dir:
        Optional on-disk cache directory for the cycle-accurate points.
    noc_engine:
        Cycle-loop engine used for the cycle-accurate points (all engines
        are bit-identical, so the figure data never depends on it).
    batch:
        Evaluate the cycle-accurate points batched: the zero-load and
        overload simulations of one arrangement share a single topology /
        routing / flat-state build
        (:class:`repro.core.parallel.BatchedSweepRunner`).  Purely an
        amortisation — the figure data is bit-identical either way.
    progress:
        Optional ``(done, total, record)`` callback forwarded to the
        cycle-accurate sweep (analytical points never report).
    in_flight:
        Optional shared
        :class:`~repro.core.parallel.InFlightRegistry` deduplicating the
        cycle-accurate points against concurrent sweeps in this process.
    """
    check_in_choices("mode", mode, ("analytical", "simulation", "hybrid"))
    check_in_choices("noc_engine", noc_engine, ENGINE_NAMES)
    if chiplet_counts is None:
        chiplet_counts = range(2, 101)
    counts = sorted(set(int(c) for c in chiplet_counts))
    if parameters is None:
        parameters = EvaluationParameters()
    if mode == "analytical":
        simulated = set()
    elif mode == "simulation":
        simulated = set(counts) if simulation_points is None else set(simulation_points)
    else:
        simulated = set(simulation_points or ())

    grid_order: list[tuple[ArrangementKind, int]] = [
        (ArrangementKind.from_name(kind_name), count)
        for count in counts
        for kind_name in kinds
    ]

    parallel_sim = (jobs > 1 or cache_dir is not None or batch) and any(
        count in simulated and count > 1 for _, count in grid_order
    )
    simulated_results: dict[tuple[ArrangementKind, int], Figure7Point] = {}
    if parallel_sim:
        from repro.core.parallel import (
            BatchedSweepRunner,
            ParallelSweepRunner,
            SweepCandidate,
        )
        from repro.noc.sweep import ZERO_LOAD_INJECTION_RATE

        config = _simulation_config_from(parameters, simulation_config)
        sim_designs = [
            (kind, count)
            for kind, count in grid_order
            if count in simulated and count > 1
        ]
        candidates = []
        for kind, count in sim_designs:
            for rate in (ZERO_LOAD_INJECTION_RATE, 1.0):
                candidates.append(
                    SweepCandidate(
                        kind=kind.value, num_chiplets=count, injection_rate=rate
                    )
                )
        runner_cls = BatchedSweepRunner if batch else ParallelSweepRunner
        runner = runner_cls(
            config, jobs=jobs, cache_dir=cache_dir, engine=noc_engine,
            derive_seeds=False, in_flight=in_flight,
        )
        records = runner.run(candidates, progress=progress)
        for pair_index, (kind, count) in enumerate(sim_designs):
            zero_load = records[2 * pair_index].result
            overload = records[2 * pair_index + 1].result
            arrangement = make_arrangement(kind, count)
            simulated_results[(kind, count)] = _simulated_point_parallel(
                arrangement, parameters, zero_load, overload
            )

    points: list[Figure7Point] = []
    for kind, count in grid_order:
        precomputed = simulated_results.get((kind, count))
        if precomputed is not None:
            points.append(precomputed)
            continue
        arrangement = make_arrangement(kind, count)
        engine = "simulation" if count in simulated else "analytical"
        points.append(
            evaluate_arrangement_performance(
                arrangement,
                parameters,
                engine=engine,
                throughput_model=throughput_model,
                simulation_config=simulation_config,
                noc_engine=noc_engine,
            )
        )
    return Figure7Result(
        points=points,
        parameters=parameters,
        metadata={
            "mode": mode,
            "throughput_model": throughput_model,
            "simulated_counts": sorted(simulated),
            "counts": counts,
            "jobs": jobs,
            "batch": batch,
        },
    )


def run_link_bandwidth_table(
    chiplet_counts: Iterable[int] | None = None,
    *,
    parameters: EvaluationParameters | None = None,
    kinds: Sequence[ArrangementKind | str] = FIGURE7_KINDS,
) -> ExperimentResult:
    """The link-model table (Table I applied with Section VI-B's parameters).

    For each arrangement family and chiplet count: chiplet area, per-link
    bump area, wire counts, per-link bandwidth and full global bandwidth.
    """
    if chiplet_counts is None:
        chiplet_counts = (4, 9, 16, 25, 37, 49, 61, 64, 81, 91, 100)
    if parameters is None:
        parameters = EvaluationParameters()
    link_model = D2DLinkModel(parameters)
    result = ExperimentResult(
        experiment_id="TAB1",
        title="D2D link bandwidth model (Table I with Section VI-B parameters)",
        x_label="number of chiplets",
        y_label="per-link bandwidth [Gb/s]",
    )
    for kind_name in kinds:
        kind = ArrangementKind.from_name(kind_name)
        series = DataSeries(name=kind.value)
        for count in chiplet_counts:
            arrangement = make_arrangement(kind, count)
            estimate = link_model.estimate_for_arrangement(arrangement)
            series.add(
                count,
                estimate.bandwidth_gbps,
                chiplet_area_mm2=round(estimate.shape.area_mm2, 4),
                link_sector_area_mm2=round(estimate.shape.link_sector_area_mm2, 4),
                num_wires=estimate.num_wires,
                num_data_wires=estimate.num_data_wires,
                full_global_bandwidth_tbps=round(
                    count * parameters.endpoints_per_chiplet * estimate.bandwidth_bps / 1e12,
                    3,
                ),
            )
        result.series.append(series)
    return result
