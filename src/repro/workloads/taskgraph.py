"""Application task graphs: weighted compute tasks and communication edges.

A :class:`TaskGraph` models one application as a directed graph of compute
tasks (each with an abstract *compute weight* in cycles) connected by
communication edges (each with a *traffic weight* in flits).  Pipeline-style
workloads (DNN layer chains, fork-join) are DAGs; iterative workloads
(stencil halo exchange, ring all-reduce, client-server request/response)
contain cycles and are interpreted as one bulk-synchronous superstep whose
edges repeat every iteration.  The DAG-only operations
(:meth:`TaskGraph.topological_order`) raise on cyclic graphs, while
:meth:`TaskGraph.critical_path_weight` degrades gracefully.

The task graph deliberately mirrors the conventions of
:class:`repro.graphs.model.ChipGraph` (plain dictionaries, insertion order,
no third-party graph library) so the partition portfolio can bisect the
communication structure directly via :meth:`TaskGraph.to_comm_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.graphs.model import ChipGraph


@dataclass(frozen=True)
class Task:
    """One compute task of an application workload.

    Attributes
    ----------
    task_id:
        Unique non-negative integer identifier.
    name:
        Human-readable label (``"layer3"``, ``"worker7"``, ...).
    compute_weight:
        Abstract compute time of the task in cycles; feeds the critical
        path and the makespan proxy.
    """

    task_id: int
    name: str = ""
    compute_weight: float = 1.0


@dataclass(frozen=True)
class CommEdge:
    """One directed communication edge between two tasks.

    Attributes
    ----------
    source / destination:
        Task identifiers of the producer and the consumer.
    traffic_flits:
        Traffic carried by the edge, in flits per workload iteration.
    """

    source: int
    destination: int
    traffic_flits: int = 1


class TaskGraph:
    """A directed graph of weighted compute tasks and communication edges."""

    def __init__(self, name: str = "workload") -> None:
        self.name = name
        self._tasks: dict[int, Task] = {}
        self._edges: list[CommEdge] = []
        self._edge_keys: set[tuple[int, int]] = set()
        self._successors: dict[int, list[int]] = {}
        self._predecessors: dict[int, list[int]] = {}

    # -- construction ---------------------------------------------------------

    def add_task(
        self, task_id: int, *, name: str = "", compute_weight: float = 1.0
    ) -> Task:
        """Insert a task; duplicate ids and non-positive weights are rejected."""
        if not isinstance(task_id, int) or task_id < 0:
            raise ValueError(f"task_id must be a non-negative integer, got {task_id!r}")
        if task_id in self._tasks:
            raise ValueError(f"task {task_id} already exists")
        if compute_weight <= 0:
            raise ValueError(f"compute_weight must be > 0, got {compute_weight}")
        task = Task(task_id=task_id, name=name or f"task{task_id}",
                    compute_weight=float(compute_weight))
        self._tasks[task_id] = task
        self._successors[task_id] = []
        self._predecessors[task_id] = []
        return task

    def add_edge(self, source: int, destination: int, traffic_flits: int = 1) -> CommEdge:
        """Insert a directed communication edge between two existing tasks."""
        if source == destination:
            raise ValueError(f"self-communication edges are not allowed (task {source})")
        for endpoint in (source, destination):
            if endpoint not in self._tasks:
                raise ValueError(f"task {endpoint} is not in the graph")
        if (source, destination) in self._edge_keys:
            raise ValueError(f"edge {source} -> {destination} already exists")
        if not isinstance(traffic_flits, int) or traffic_flits <= 0:
            raise ValueError(
                f"traffic_flits must be a positive integer, got {traffic_flits!r}"
            )
        edge = CommEdge(source=source, destination=destination,
                        traffic_flits=traffic_flits)
        self._edges.append(edge)
        self._edge_keys.add((source, destination))
        self._successors[source].append(destination)
        self._predecessors[destination].append(source)
        return edge

    # -- basic queries --------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of directed communication edges."""
        return len(self._edges)

    def tasks(self) -> list[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def task_ids(self) -> list[int]:
        """All task identifiers in insertion order."""
        return list(self._tasks)

    def task(self, task_id: int) -> Task:
        """Look up a task by id (raises ``KeyError`` for unknown ids)."""
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} is not in the graph")
        return self._tasks[task_id]

    def edges(self) -> list[CommEdge]:
        """All communication edges in insertion order."""
        return list(self._edges)

    def has_edge(self, source: int, destination: int) -> bool:
        """Return ``True`` if the directed edge is present."""
        return (source, destination) in self._edge_keys

    def successors(self, task_id: int) -> list[int]:
        """Tasks this task sends to (raises ``KeyError`` for unknown ids)."""
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} is not in the graph")
        return list(self._successors[task_id])

    def predecessors(self, task_id: int) -> list[int]:
        """Tasks this task receives from (raises ``KeyError`` for unknown ids)."""
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} is not in the graph")
        return list(self._predecessors[task_id])

    def out_edges(self, task_id: int) -> list[CommEdge]:
        """Edges leaving a task, in insertion order."""
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} is not in the graph")
        return [edge for edge in self._edges if edge.source == task_id]

    def in_edges(self, task_id: int) -> list[CommEdge]:
        """Edges entering a task, in insertion order."""
        if task_id not in self._tasks:
            raise KeyError(f"task {task_id} is not in the graph")
        return [edge for edge in self._edges if edge.destination == task_id]

    @property
    def total_traffic_flits(self) -> int:
        """Sum of the traffic weights of every edge."""
        return sum(edge.traffic_flits for edge in self._edges)

    @property
    def total_compute_weight(self) -> float:
        """Sum of the compute weights of every task."""
        return sum(task.compute_weight for task in self._tasks.values())

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self.name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges})"
        )

    # -- structure ------------------------------------------------------------

    @property
    def is_dag(self) -> bool:
        """Whether the communication edges form a directed acyclic graph."""
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def topological_order(self) -> list[int]:
        """Task ids in topological order (Kahn's algorithm, id tie-break).

        Raises :class:`ValueError` when the graph contains a cycle —
        iterative workloads (stencil, all-reduce rings) have no topological
        order; treat them as one bulk-synchronous superstep instead.
        """
        in_degree = {task_id: len(self._predecessors[task_id]) for task_id in self._tasks}
        ready = sorted(task_id for task_id, degree in in_degree.items() if degree == 0)
        order: list[int] = []
        while ready:
            task_id = ready.pop(0)
            order.append(task_id)
            changed = False
            for successor in self._successors[task_id]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
                    changed = True
            if changed:
                ready.sort()
        if len(order) != len(self._tasks):
            raise ValueError(
                f"task graph {self.name!r} contains a communication cycle; "
                "no topological order exists"
            )
        return order

    def critical_path_weight(self) -> float:
        """Compute weight of the longest dependency chain.

        For DAGs this is the classic critical path over the compute
        weights.  Cyclic graphs model one bulk-synchronous superstep where
        every task runs concurrently, so the critical path degrades to the
        heaviest single task.
        """
        try:
            order = self.topological_order()
        except ValueError:
            return max(task.compute_weight for task in self._tasks.values())
        finish: dict[int, float] = {}
        for task_id in order:
            start = max(
                (finish[predecessor] for predecessor in self._predecessors[task_id]),
                default=0.0,
            )
            finish[task_id] = start + self._tasks[task_id].compute_weight
        return max(finish.values())

    # -- partition interoperability -------------------------------------------

    def to_comm_graph(self) -> ChipGraph:
        """The undirected communication structure as a :class:`ChipGraph`.

        Opposite directed edges between the same task pair merge into one
        undirected edge.  This is the graph the partition portfolio
        bisects when mapping tasks onto chiplets.
        """
        graph = ChipGraph(nodes=self._tasks.keys())
        for edge in self._edges:
            if not graph.has_edge(edge.source, edge.destination):
                graph.add_edge(edge.source, edge.destination)
        return graph

    def comm_weights(self) -> dict[tuple[int, int], int]:
        """Merged undirected traffic weights keyed by sorted task pairs."""
        weights: dict[tuple[int, int], int] = {}
        for edge in self._edges:
            key = (min(edge.source, edge.destination), max(edge.source, edge.destination))
            weights[key] = weights.get(key, 0) + edge.traffic_flits
        return weights

    def validate(self) -> None:
        """Raise :class:`ValueError` if the graph is unusable as a workload."""
        if not self._tasks:
            raise ValueError(f"task graph {self.name!r} has no tasks")
        if not self._edges:
            raise ValueError(
                f"task graph {self.name!r} has no communication edges; "
                "nothing would drive the network"
            )


def build_task_graph(
    name: str,
    tasks: Iterable[Task],
    edges: Iterable[CommEdge],
) -> TaskGraph:
    """Assemble a validated :class:`TaskGraph` from task and edge records."""
    graph = TaskGraph(name)
    for task in tasks:
        graph.add_task(task.task_id, name=task.name, compute_weight=task.compute_weight)
    for edge in edges:
        graph.add_edge(edge.source, edge.destination, edge.traffic_flits)
    graph.validate()
    return graph
