"""Generators for classic application-workload scenarios.

Each generator returns a validated :class:`~repro.workloads.taskgraph.TaskGraph`
for one of the communication structures chiplet systems are routinely
evaluated on:

* ``dnn-pipeline``  — a chain of DNN layers streaming activations forward,
* ``fork-join``     — MapReduce-style scatter to workers and gather back,
* ``stencil``       — a 2-D grid exchanging halos with its 4-neighbours,
* ``all-reduce``    — a ring all-reduce step (each rank sends one chunk on),
* ``client-server`` — clients issuing requests to one hotspot server.

All generators take a uniform ``num_tasks`` knob so sweeps can scale the
workload with the chiplet count, plus per-scenario weight parameters.
Everything is deterministic: the same arguments always produce the same
task graph.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.utils.validation import check_positive_int
from repro.workloads.taskgraph import TaskGraph


def dnn_pipeline(
    num_tasks: int = 8,
    *,
    compute_weight: float = 4.0,
    traffic_flits: int = 8,
) -> TaskGraph:
    """A linear pipeline of DNN layers: ``layer0 -> layer1 -> ... -> layerN``.

    Every layer forwards one activation tensor (``traffic_flits``) to the
    next.  This is the canonical DAG workload: the critical path is the
    whole chain and a good mapping keeps consecutive layers adjacent.
    """
    check_positive_int("num_tasks", num_tasks, minimum=2)
    graph = TaskGraph("dnn-pipeline")
    for layer in range(num_tasks):
        graph.add_task(layer, name=f"layer{layer}", compute_weight=compute_weight)
    for layer in range(num_tasks - 1):
        graph.add_edge(layer, layer + 1, traffic_flits)
    graph.validate()
    return graph


def fork_join(
    num_tasks: int = 10,
    *,
    compute_weight: float = 4.0,
    scatter_flits: int = 4,
    gather_flits: int = 4,
) -> TaskGraph:
    """MapReduce-style fork-join: one source scatters to workers, one sink gathers.

    ``num_tasks`` counts the source, the ``num_tasks - 2`` workers and the
    sink.  The source and sink see the aggregate fan-out/fan-in traffic, so
    mappings that co-locate them with many workers win.
    """
    check_positive_int("num_tasks", num_tasks, minimum=3)
    graph = TaskGraph("fork-join")
    source, sink = 0, num_tasks - 1
    graph.add_task(source, name="source", compute_weight=compute_weight)
    for worker in range(1, num_tasks - 1):
        graph.add_task(worker, name=f"worker{worker}", compute_weight=compute_weight)
    graph.add_task(sink, name="sink", compute_weight=compute_weight)
    for worker in range(1, num_tasks - 1):
        graph.add_edge(source, worker, scatter_flits)
        graph.add_edge(worker, sink, gather_flits)
    graph.validate()
    return graph


def stencil(
    num_tasks: int = 9,
    *,
    compute_weight: float = 4.0,
    halo_flits: int = 2,
) -> TaskGraph:
    """A 2-D stencil: every cell exchanges halos with its 4-neighbours.

    Cells are laid out row-major on a near-square ``rows x cols`` grid
    (the last row may be partial when ``num_tasks`` is not a product of
    two near-equal factors).  Halo exchange is bidirectional, so the graph
    is cyclic and models one bulk-synchronous superstep.
    """
    check_positive_int("num_tasks", num_tasks, minimum=2)
    cols = max(1, math.isqrt(num_tasks))
    graph = TaskGraph("stencil")
    for cell in range(num_tasks):
        row, col = divmod(cell, cols)
        graph.add_task(cell, name=f"cell[{row},{col}]", compute_weight=compute_weight)
    for cell in range(num_tasks):
        row, col = divmod(cell, cols)
        right = cell + 1
        below = cell + cols
        if col + 1 < cols and right < num_tasks:
            graph.add_edge(cell, right, halo_flits)
            graph.add_edge(right, cell, halo_flits)
        if below < num_tasks:
            graph.add_edge(cell, below, halo_flits)
            graph.add_edge(below, cell, halo_flits)
    graph.validate()
    return graph


def all_reduce(
    num_tasks: int = 8,
    *,
    compute_weight: float = 4.0,
    chunk_flits: int = 4,
) -> TaskGraph:
    """One step of a ring all-reduce: rank ``i`` sends a chunk to rank ``i+1``.

    The ring is cyclic by construction; edge weights carry the per-step
    chunk size of the reduce-scatter/all-gather schedule.  Good mappings
    embed the ring into the chiplet topology with unit-distance hops.
    """
    check_positive_int("num_tasks", num_tasks, minimum=2)
    graph = TaskGraph("all-reduce")
    for rank in range(num_tasks):
        graph.add_task(rank, name=f"rank{rank}", compute_weight=compute_weight)
    for rank in range(num_tasks):
        graph.add_edge(rank, (rank + 1) % num_tasks, chunk_flits)
    graph.validate()
    return graph


def client_server(
    num_tasks: int = 9,
    *,
    compute_weight: float = 4.0,
    request_flits: int = 2,
    response_flits: int = 8,
) -> TaskGraph:
    """A hotspot service: ``num_tasks - 1`` clients query one server.

    Clients send small requests and receive larger responses, so the
    server's links are the bottleneck — the application-level analogue of
    the synthetic hotspot traffic pattern.
    """
    check_positive_int("num_tasks", num_tasks, minimum=2)
    graph = TaskGraph("client-server")
    graph.add_task(0, name="server", compute_weight=compute_weight)
    for client in range(1, num_tasks):
        graph.add_task(client, name=f"client{client}", compute_weight=compute_weight)
        graph.add_edge(client, 0, request_flits)
        graph.add_edge(0, client, response_flits)
    graph.validate()
    return graph


_WORKLOAD_FACTORIES: dict[str, Callable[..., TaskGraph]] = {
    "all-reduce": all_reduce,
    "client-server": client_server,
    "dnn-pipeline": dnn_pipeline,
    "fork-join": fork_join,
    "stencil": stencil,
}

#: Smallest ``num_tasks`` each generator accepts (fork-join needs a source,
#: at least one worker and a sink; everything else needs two tasks).
_MIN_TASKS = {kind: (3 if kind == "fork-join" else 2) for kind in _WORKLOAD_FACTORIES}


def available_workloads() -> tuple[str, ...]:
    """Names of every registered workload generator, sorted alphabetically."""
    return tuple(sorted(_WORKLOAD_FACTORIES))


def min_tasks_for(kind: str) -> int:
    """Smallest ``num_tasks`` the named generator accepts."""
    key = kind.lower()
    if key not in _MIN_TASKS:
        valid = ", ".join(available_workloads())
        raise ValueError(f"unknown workload kind {kind!r}; expected one of: {valid}")
    return _MIN_TASKS[key]


def effective_num_tasks(kind: str, num_tasks: int | None, num_chiplets: int) -> int:
    """Workload size used by the sweep and exploration grids.

    ``None`` scales the workload with the chiplet count (clamped up to the
    generator's minimum, so tiny topologies still get a valid workload);
    an explicit ``num_tasks`` below the minimum is a user error and fails
    fast instead of being silently rewritten.  Both grid builders
    (:meth:`ParallelSweepRunner.workload_grid
    <repro.core.parallel.ParallelSweepRunner.workload_grid>` and
    :meth:`DesignSpaceExplorer.evaluate_workloads
    <repro.core.explorer.DesignSpaceExplorer.evaluate_workloads>`) size
    through this single helper so static ranking and trace-driven
    simulation always describe the same workloads.
    """
    minimum = min_tasks_for(kind)
    if num_tasks is None:
        return max(minimum, num_chiplets)
    if num_tasks < minimum:
        raise ValueError(
            f"workload {kind!r} needs at least {minimum} tasks, got {num_tasks}"
        )
    return num_tasks


def make_workload(kind: str, num_tasks: int | None = None, **kwargs) -> TaskGraph:
    """Create a workload task graph by name (``"dnn-pipeline"``, ...).

    ``num_tasks`` defaults to each generator's own default size; weight
    parameters pass through as keyword arguments.
    """
    key = kind.lower()
    if key not in _WORKLOAD_FACTORIES:
        valid = ", ".join(available_workloads())
        raise ValueError(f"unknown workload kind {kind!r}; expected one of: {valid}")
    factory = _WORKLOAD_FACTORIES[key]
    if num_tasks is None:
        return factory(**kwargs)
    return factory(num_tasks, **kwargs)
