"""Mapping task graphs onto chiplet topologies.

Three mappers with increasing awareness of the communication structure:

* ``round-robin`` — task ``i`` goes to chiplet ``i mod n``; the oblivious
  baseline every smarter mapper must beat,
* ``greedy``      — tasks in decreasing communication-weight order, each
  placed on the capacity-feasible chiplet that minimises the weighted hop
  cost to its already-placed neighbours,
* ``partition``   — recursive co-bisection: the task communication graph
  and the chiplet topology graph are bisected in lockstep by the partition
  portfolio (:func:`repro.partition.recursive.bisect_nodes`), pairing the
  halves level by level — the METIS-style mapper the paper's bisection
  machinery was built for.

Every mapper is deterministic under a fixed seed.  :func:`evaluate_mapping`
scores a mapping with the standard static cost metrics: total weighted hop
count, per-link loads (traffic routed over deterministic shortest paths)
and the intra-chiplet (local) traffic fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.graphs.model import ChipGraph
from repro.noc.routing import RoutingTables
from repro.partition.recursive import bisect_nodes
from repro.workloads.taskgraph import TaskGraph


class WorkloadMapping:
    """An assignment of every task of a workload to a chiplet.

    Parameters
    ----------
    assignment:
        Mapping of task id to chiplet id.
    num_chiplets:
        Number of chiplets in the target topology (chiplet ids are
        ``0 .. num_chiplets - 1``).
    mapper:
        Name of the mapper that produced the assignment.
    """

    def __init__(
        self,
        assignment: Mapping[int, int],
        *,
        num_chiplets: int,
        mapper: str = "custom",
    ) -> None:
        if not assignment:
            raise ValueError("a mapping must assign at least one task")
        for task_id, chiplet in assignment.items():
            if not 0 <= chiplet < num_chiplets:
                raise ValueError(
                    f"task {task_id} mapped to chiplet {chiplet}, outside "
                    f"[0, {num_chiplets})"
                )
        self._assignment = {task_id: assignment[task_id] for task_id in sorted(assignment)}
        self.num_chiplets = num_chiplets
        self.mapper = mapper

    @property
    def num_tasks(self) -> int:
        """Number of mapped tasks."""
        return len(self._assignment)

    def chiplet_of(self, task_id: int) -> int:
        """Chiplet the task is assigned to (``KeyError`` for unknown tasks)."""
        return self._assignment[task_id]

    def as_dict(self) -> dict[int, int]:
        """The full task-to-chiplet table, keyed by ascending task id."""
        return dict(self._assignment)

    def tasks_on(self, chiplet: int) -> list[int]:
        """Task ids assigned to one chiplet, in ascending order."""
        return [task for task, assigned in self._assignment.items() if assigned == chiplet]

    def used_chiplets(self) -> list[int]:
        """Chiplets hosting at least one task, in ascending order."""
        return sorted(set(self._assignment.values()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadMapping):
            return NotImplemented
        return (
            self._assignment == other._assignment
            and self.num_chiplets == other.num_chiplets
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadMapping(tasks={self.num_tasks}, "
            f"chiplets={self.num_chiplets}, mapper={self.mapper!r})"
        )


def _check_inputs(workload: TaskGraph, graph: ChipGraph) -> list[int]:
    workload.validate()
    chiplets = sorted(graph.nodes())
    if chiplets != list(range(len(chiplets))):
        raise ValueError("the chiplet graph must use node ids 0 .. n-1")
    if not chiplets:
        raise ValueError("the chiplet graph has no nodes")
    return chiplets


def round_robin_mapping(workload: TaskGraph, graph: ChipGraph, *, seed: int = 0) -> WorkloadMapping:
    """Task ``i`` (in id order) goes to chiplet ``i mod num_chiplets``."""
    chiplets = _check_inputs(workload, graph)
    assignment = {
        task_id: chiplets[index % len(chiplets)]
        for index, task_id in enumerate(sorted(workload.task_ids()))
    }
    return WorkloadMapping(assignment, num_chiplets=len(chiplets), mapper="round-robin")


def greedy_mapping(workload: TaskGraph, graph: ChipGraph, *, seed: int = 0) -> WorkloadMapping:
    """Communication-aware greedy placement.

    Tasks are placed in decreasing total-communication order; each goes to
    the chiplet (with free capacity) minimising the weighted hop cost to
    its already-placed communication partners, ties broken by load and
    then by chiplet id.  Capacity is ``ceil(num_tasks / num_chiplets)``
    tasks per chiplet, so the mapping stays balanced.
    """
    chiplets = _check_inputs(workload, graph)
    routing = RoutingTables(graph)
    capacity = -(-workload.num_tasks // len(chiplets))
    load = {chiplet: 0 for chiplet in chiplets}

    comm: dict[int, dict[int, int]] = {task_id: {} for task_id in workload.task_ids()}
    for edge in workload.edges():
        comm[edge.source][edge.destination] = (
            comm[edge.source].get(edge.destination, 0) + edge.traffic_flits
        )
        comm[edge.destination][edge.source] = (
            comm[edge.destination].get(edge.source, 0) + edge.traffic_flits
        )

    order = sorted(
        workload.task_ids(),
        key=lambda task_id: (-sum(comm[task_id].values()), task_id),
    )
    assignment: dict[int, int] = {}
    for task_id in order:
        best_chiplet: int | None = None
        best_key: tuple[float, int, int] | None = None
        for chiplet in chiplets:
            if load[chiplet] >= capacity:
                continue
            cost = sum(
                weight * routing.distance(assignment[partner], chiplet)
                for partner, weight in comm[task_id].items()
                if partner in assignment
            )
            key = (cost, load[chiplet], chiplet)
            if best_key is None or key < best_key:
                best_key = key
                best_chiplet = chiplet
        assert best_chiplet is not None  # capacity * num_chiplets >= num_tasks
        assignment[task_id] = best_chiplet
        load[best_chiplet] += 1
    return WorkloadMapping(assignment, num_chiplets=len(chiplets), mapper="greedy")


def partition_mapping(workload: TaskGraph, graph: ChipGraph, *, seed: int = 0) -> WorkloadMapping:
    """Recursive co-bisection of the task graph and the chiplet topology.

    At every level both graphs are bisected by the partition portfolio;
    the larger task half is paired with the larger chiplet half (balance),
    with the deterministic smallest-node orientation of
    :func:`~repro.partition.recursive.bisect_nodes` breaking ties.  The
    recursion bottoms out when a region holds a single chiplet (all
    remaining tasks land there) or a single task.
    """
    chiplets = _check_inputs(workload, graph)
    comm_graph = workload.to_comm_graph()
    assignment: dict[int, int] = {}

    def assign(task_ids: list[int], chiplet_ids: list[int], level: int) -> None:
        if not task_ids:
            return
        if len(chiplet_ids) == 1:
            for task_id in task_ids:
                assignment[task_id] = chiplet_ids[0]
            return
        if len(task_ids) == 1:
            # A single task in a multi-chiplet region: anchor it on the
            # deterministic representative (smallest id).
            assignment[task_ids[0]] = chiplet_ids[0]
            return
        task_a, task_b = bisect_nodes(comm_graph, task_ids, seed=seed + level)
        chip_a, chip_b = bisect_nodes(graph, chiplet_ids, seed=seed + level)
        # Pair the larger halves so per-chiplet load stays even when either
        # split is odd-sized.
        if (len(task_a) >= len(task_b)) != (len(chip_a) >= len(chip_b)):
            chip_a, chip_b = chip_b, chip_a
        assign(task_a, chip_a, 2 * level + 1)
        assign(task_b, chip_b, 2 * level + 2)

    assign(sorted(workload.task_ids()), chiplets, 0)
    return WorkloadMapping(assignment, num_chiplets=len(chiplets), mapper="partition")


_MAPPER_FACTORIES: dict[str, Callable[..., WorkloadMapping]] = {
    "greedy": greedy_mapping,
    "partition": partition_mapping,
    "round-robin": round_robin_mapping,
}


def available_mappers() -> tuple[str, ...]:
    """Names of every registered mapper, sorted alphabetically."""
    return tuple(sorted(_MAPPER_FACTORIES))


def map_workload(
    mapper: str, workload: TaskGraph, graph: ChipGraph, *, seed: int = 0
) -> WorkloadMapping:
    """Run a mapper by name (``"partition"``, ``"greedy"``, ``"round-robin"``)."""
    key = mapper.lower()
    if key not in _MAPPER_FACTORIES:
        valid = ", ".join(available_mappers())
        raise ValueError(f"unknown mapper {mapper!r}; expected one of: {valid}")
    return _MAPPER_FACTORIES[key](workload, graph, seed=seed)


# ---------------------------------------------------------------------------
# Static mapping cost metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MappingCost:
    """Static quality metrics of one (workload, mapping, topology) triple.

    Attributes
    ----------
    weighted_hop_count:
        Sum over all communication edges of ``traffic_flits * hop distance``
        between the endpoints' chiplets — the classic mapping objective.
    max_link_load / mean_link_load:
        Per-physical-link traffic after routing every edge over a
        deterministic shortest path, in flits per workload iteration.
    bottleneck_link:
        The physical link carrying ``max_link_load`` (``None`` when all
        traffic is chiplet-local).
    local_traffic_flits:
        Traffic between tasks co-located on the same chiplet (never enters
        the inter-chiplet network).
    total_traffic_flits:
        Total traffic of the workload, local or not.
    """

    weighted_hop_count: float
    max_link_load: float
    mean_link_load: float
    bottleneck_link: tuple[int, int] | None
    local_traffic_flits: int
    total_traffic_flits: int

    @property
    def local_traffic_fraction(self) -> float:
        """Fraction of the workload traffic that stays chiplet-local."""
        if self.total_traffic_flits == 0:
            return 0.0
        return self.local_traffic_flits / self.total_traffic_flits


def _deterministic_path(routing: RoutingTables, source: int, destination: int) -> list[int]:
    """One shortest router path, always picking the lowest-id next hop."""
    path = [source]
    current = source
    while current != destination:
        current = min(routing.minimal_next_hops(current, destination))
        path.append(current)
    return path


def link_loads(
    workload: TaskGraph, mapping: WorkloadMapping, graph: ChipGraph
) -> dict[tuple[int, int], float]:
    """Traffic per physical link after deterministic shortest-path routing.

    Keys are sorted chiplet pairs; values are flits per workload iteration.
    Chiplet-local edges contribute nothing here (see
    :attr:`MappingCost.local_traffic_flits`).
    """
    routing = RoutingTables(graph)
    loads: dict[tuple[int, int], float] = {}
    for edge in workload.edges():
        source = mapping.chiplet_of(edge.source)
        destination = mapping.chiplet_of(edge.destination)
        if source == destination:
            continue
        path = _deterministic_path(routing, source, destination)
        for hop_from, hop_to in zip(path, path[1:]):
            key = (min(hop_from, hop_to), max(hop_from, hop_to))
            loads[key] = loads.get(key, 0.0) + edge.traffic_flits
    return loads


def evaluate_mapping(
    workload: TaskGraph, mapping: WorkloadMapping, graph: ChipGraph
) -> MappingCost:
    """Score a mapping with the static cost metrics (no simulation)."""
    routing = RoutingTables(graph)
    weighted_hops = 0.0
    local = 0
    for edge in workload.edges():
        source = mapping.chiplet_of(edge.source)
        destination = mapping.chiplet_of(edge.destination)
        if source == destination:
            local += edge.traffic_flits
            continue
        weighted_hops += edge.traffic_flits * routing.distance(source, destination)
    loads = link_loads(workload, mapping, graph)
    if loads:
        max_load = max(loads.values())
        bottleneck = min(link for link, load in loads.items() if load == max_load)
        mean_load = sum(loads.values()) / len(loads)
    else:
        bottleneck = None
        max_load = 0.0
        mean_load = 0.0
    return MappingCost(
        weighted_hop_count=weighted_hops,
        max_link_load=max_load,
        mean_link_load=mean_load,
        bottleneck_link=bottleneck,
        local_traffic_flits=local,
        total_traffic_flits=workload.total_traffic_flits,
    )
