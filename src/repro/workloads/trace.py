"""Trace-driven traffic: driving the cycle-accurate NoC with a mapped workload.

The bridge between the workload subsystem and the simulator rides the
existing :class:`~repro.noc.traffic.TrafficPattern` seam:

1. :func:`build_endpoint_demands` lowers a (workload, mapping) pair to an
   endpoint-level demand matrix — tasks land on concrete endpoints of
   their chiplet, co-endpoint edges become chiplet-local and drop out,
2. :class:`TraceTraffic` replays those demands as a deterministic,
   smoothly interleaved destination schedule per source endpoint and
   advertises per-source injection-rate scales (heaviest talker runs at
   the configured rate, silent endpoints at zero), and
3. :func:`simulate_workload` runs the cycle-accurate simulator (any of
   the cycle-loop engines) and reports application-level metrics: the static mapping cost,
   a makespan proxy and per-communication-edge latencies.

Determinism: the destination schedules never consult the RNG, so a trace
run is bit-identical across the legacy, active-set and vectorized engines
and across
``jobs=1`` / ``jobs=N`` sweeps under a fixed seed — the same guarantee the
synthetic patterns provide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE
from repro.noc.faults import FaultSet
from repro.noc.simulator import NocSimulator, SimulationResult
from repro.noc.traffic import TrafficPattern
from repro.utils.validation import check_positive_int
from repro.workloads.mapping import (
    MappingCost,
    WorkloadMapping,
    available_mappers,
    evaluate_mapping,
    map_workload,
)
from repro.workloads.taskgraph import TaskGraph


def task_endpoints(
    workload: TaskGraph,
    mapping: WorkloadMapping,
    *,
    endpoints_per_chiplet: int,
) -> dict[int, int]:
    """Assign every task to a concrete endpoint of its chiplet.

    Tasks sharing a chiplet are spread round-robin (in ascending task-id
    order) over the chiplet's ``endpoints_per_chiplet`` endpoints, which
    keeps the assignment deterministic and the per-endpoint load even.
    """
    check_positive_int("endpoints_per_chiplet", endpoints_per_chiplet)
    assignment: dict[int, int] = {}
    per_chiplet_rank: dict[int, int] = {}
    for task_id in sorted(workload.task_ids()):
        chiplet = mapping.chiplet_of(task_id)
        rank = per_chiplet_rank.get(chiplet, 0)
        per_chiplet_rank[chiplet] = rank + 1
        assignment[task_id] = (
            chiplet * endpoints_per_chiplet + rank % endpoints_per_chiplet
        )
    return assignment


def build_endpoint_demands(
    workload: TaskGraph,
    mapping: WorkloadMapping,
    *,
    endpoints_per_chiplet: int,
) -> dict[tuple[int, int], int]:
    """Endpoint-level demand matrix of a mapped workload.

    Returns ``{(source_endpoint, destination_endpoint): flits}`` summed
    over all communication edges landing on that endpoint pair.  Edges
    whose tasks share an endpoint are chiplet-local and are excluded (they
    never enter the network).
    """
    endpoints = task_endpoints(
        workload, mapping, endpoints_per_chiplet=endpoints_per_chiplet
    )
    demands: dict[tuple[int, int], int] = {}
    for edge in workload.edges():
        source = endpoints[edge.source]
        destination = endpoints[edge.destination]
        if source == destination:
            continue
        key = (source, destination)
        demands[key] = demands.get(key, 0) + edge.traffic_flits
    return demands


class TraceTraffic(TrafficPattern):
    """Replay an endpoint demand matrix as deterministic destination schedules.

    Parameters
    ----------
    num_endpoints:
        Total endpoints of the network the pattern will drive.
    demands:
        ``{(source, destination): weight}`` with positive integer weights;
        at least one entry is required (a workload that produces no
        inter-chiplet traffic cannot drive the network).
    max_schedule_slots:
        Upper bound on the per-source schedule length.  Heavier demand
        mixes are rounded to this resolution (every destination keeps at
        least one slot), which bounds memory for very wide fan-outs.

    Each source endpoint cycles through a smooth weighted-round-robin
    interleaving of its destinations, so a destination receiving twice the
    weight appears twice as often, spread evenly rather than in bursts.
    ``destination`` never consults the RNG; injection *timing* remains
    governed by each endpoint's Bernoulli process, scaled per source by
    :meth:`injection_rate_scale` so that offered load is proportional to
    the workload's per-source traffic.
    """

    def __init__(
        self,
        num_endpoints: int,
        demands: Mapping[tuple[int, int], int],
        *,
        max_schedule_slots: int = 64,
    ) -> None:
        super().__init__(num_endpoints)
        check_positive_int("max_schedule_slots", max_schedule_slots, minimum=1)
        if not demands:
            raise ValueError(
                "trace traffic needs at least one endpoint-to-endpoint demand; "
                "the mapped workload produced no inter-chiplet traffic"
            )
        per_source: dict[int, dict[int, int]] = {}
        for (source, destination), weight in demands.items():
            self._check_source(source)
            self._check_source(destination)
            if source == destination:
                raise ValueError(f"demand from endpoint {source} to itself")
            if not isinstance(weight, int) or weight <= 0:
                raise ValueError(
                    f"demand weight for {source}->{destination} must be a "
                    f"positive integer, got {weight!r}"
                )
            per_source.setdefault(source, {})[destination] = weight

        self._demands = {key: demands[key] for key in sorted(demands)}
        self._schedules: dict[int, tuple[int, ...]] = {}
        self._cursors: dict[int, int] = {}
        out_weight = {
            source: sum(targets.values()) for source, targets in per_source.items()
        }
        heaviest = max(out_weight.values())
        self._scales = {
            source: weight / heaviest for source, weight in out_weight.items()
        }
        for source in sorted(per_source):
            slots = _normalize_slots(per_source[source], max_schedule_slots)
            self._schedules[source] = _smooth_interleave(slots)
            self._cursors[source] = 0

    # -- TrafficPattern interface ---------------------------------------------

    def destination(self, source: int, rng) -> int:
        """Next destination of the source's schedule (RNG is ignored)."""
        self._check_source(source)
        schedule = self._schedules.get(source)
        if schedule is None:
            raise RuntimeError(
                f"endpoint {source} has no outgoing demand but was asked for "
                "a destination; its injection-rate scale should be zero"
            )
        cursor = self._cursors[source]
        self._cursors[source] = cursor + 1
        return schedule[cursor % len(schedule)]

    def injection_rate_scale(self, source: int) -> float:
        """Per-source offered-load scale in ``[0, 1]`` (0 for silent sources)."""
        self._check_source(source)
        return self._scales.get(source, 0.0)

    # -- introspection ----------------------------------------------------------

    @property
    def demands(self) -> dict[tuple[int, int], int]:
        """The endpoint demand matrix the pattern replays."""
        return dict(self._demands)

    def schedule_of(self, source: int) -> tuple[int, ...]:
        """The cyclic destination schedule of one source (empty if silent)."""
        self._check_source(source)
        return self._schedules.get(source, ())

    def active_sources(self) -> list[int]:
        """Endpoints with outgoing demand, in ascending order."""
        return sorted(self._schedules)

    def reset(self) -> None:
        """Rewind every schedule cursor (for reusing the pattern instance)."""
        for source in self._cursors:
            self._cursors[source] = 0


def _normalize_slots(weights: dict[int, int], max_slots: int) -> dict[int, int]:
    """Scale integer weights down to at most ``max_slots`` schedule slots.

    Largest-remainder rounding; every destination keeps at least one slot,
    so light flows are never starved entirely (the schedule may slightly
    exceed ``max_slots`` when there are more destinations than slots).
    """
    total = sum(weights.values())
    if total <= max_slots:
        return dict(weights)
    quotas = {
        destination: weight * max_slots / total
        for destination, weight in weights.items()
    }
    slots = {destination: max(1, math.floor(quota))
             for destination, quota in quotas.items()}
    leftover = max_slots - sum(slots.values())
    if leftover > 0:
        by_remainder = sorted(
            quotas,
            key=lambda destination: (
                -(quotas[destination] - math.floor(quotas[destination])),
                destination,
            ),
        )
        for destination in by_remainder[:leftover]:
            slots[destination] += 1
    return slots


def _smooth_interleave(slots: dict[int, int]) -> tuple[int, ...]:
    """Smooth weighted round-robin over the slot counts.

    The classic SWRR scheduler: each step, every destination gains its
    weight of credit, the most-credited destination (lowest id on ties) is
    emitted and pays back the total.  Produces an evenly spread cyclic
    sequence of length ``sum(slots)``.
    """
    total = sum(slots.values())
    credit = {destination: 0 for destination in sorted(slots)}
    schedule: list[int] = []
    for _ in range(total):
        for destination, weight in slots.items():
            credit[destination] += weight
        best = max(sorted(credit), key=lambda destination: credit[destination])
        schedule.append(best)
        credit[best] -= total
    return tuple(schedule)


def trace_traffic_for(
    workload: TaskGraph,
    mapping: WorkloadMapping,
    *,
    endpoints_per_chiplet: int,
    max_schedule_slots: int = 64,
) -> TraceTraffic:
    """Build the :class:`TraceTraffic` pattern of a mapped workload."""
    demands = build_endpoint_demands(
        workload, mapping, endpoints_per_chiplet=endpoints_per_chiplet
    )
    num_endpoints = mapping.num_chiplets * endpoints_per_chiplet
    return TraceTraffic(
        num_endpoints, demands, max_schedule_slots=max_schedule_slots
    )


# ---------------------------------------------------------------------------
# Application-level simulation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeLatency:
    """Measured NoC latency of one workload communication edge."""

    source_task: int
    destination_task: int
    traffic_flits: int
    source_endpoint: int
    destination_endpoint: int
    measured_packets: int
    mean_latency_cycles: float  # NaN when no packet of this edge was measured

    @property
    def is_local(self) -> bool:
        """Whether the edge never entered the network (same endpoint)."""
        return self.source_endpoint == self.destination_endpoint


@dataclass(frozen=True)
class WorkloadSimulationResult:
    """Application-level outcome of one trace-driven simulation.

    Attributes
    ----------
    workload_name / mapper / num_tasks:
        Identity of the simulated scenario.
    simulation:
        The raw :class:`~repro.noc.simulator.SimulationResult`.
    cost:
        Static mapping cost metrics (weighted hops, link loads).
    makespan_proxy_cycles:
        Critical-path compute weight plus the cycles needed to move the
        workload's total traffic at the measured aggregate accepted
        bandwidth — a proxy, not a schedule: it assumes compute and
        communication fully overlap-free and the measured bandwidth holds.
    edge_latencies:
        Per-communication-edge measured latencies, in edge insertion order.
    """

    workload_name: str
    mapper: str
    num_tasks: int
    simulation: SimulationResult
    cost: MappingCost
    makespan_proxy_cycles: float
    edge_latencies: tuple[EdgeLatency, ...]

    @property
    def mean_edge_latency_cycles(self) -> float:
        """Traffic-weighted mean latency over edges with measured packets."""
        weighted = [
            (edge.traffic_flits, edge.mean_latency_cycles)
            for edge in self.edge_latencies
            if edge.measured_packets > 0
        ]
        if not weighted:
            return float("nan")
        total = sum(weight for weight, _ in weighted)
        return sum(weight * latency for weight, latency in weighted) / total


def _edge_latency_report(
    workload: TaskGraph,
    endpoints: dict[int, int],
    simulator: NocSimulator,
) -> tuple[EdgeLatency, ...]:
    """Aggregate measured packet latencies back onto workload edges."""
    by_pair: dict[tuple[int, int], list[float]] = {}
    for endpoint in simulator.network.endpoints:
        for packet in endpoint.ejected_packets:
            if packet.measured:
                by_pair.setdefault((packet.source, packet.destination), []).append(
                    float(packet.latency)
                )
    report = []
    for edge in workload.edges():
        pair = (endpoints[edge.source], endpoints[edge.destination])
        samples = by_pair.get(pair, []) if pair[0] != pair[1] else []
        report.append(
            EdgeLatency(
                source_task=edge.source,
                destination_task=edge.destination,
                traffic_flits=edge.traffic_flits,
                source_endpoint=pair[0],
                destination_endpoint=pair[1],
                measured_packets=len(samples),
                mean_latency_cycles=(
                    sum(samples) / len(samples) if samples else float("nan")
                ),
            )
        )
    return tuple(report)


def makespan_proxy_cycles(
    workload: TaskGraph, simulation: SimulationResult
) -> float:
    """Critical-path compute plus traffic volume over measured bandwidth."""
    aggregate_rate = simulation.accepted_flit_rate * simulation.num_endpoints
    if aggregate_rate <= 0.0:
        return float("inf")
    communication = workload.total_traffic_flits / aggregate_rate
    return workload.critical_path_weight() + communication


def simulate_workload(
    graph: ChipGraph,
    workload: TaskGraph,
    mapping: WorkloadMapping,
    *,
    config: SimulationConfig | None = None,
    injection_rate: float = 0.1,
    engine: str = DEFAULT_ENGINE,
    max_schedule_slots: int = 64,
    faults: FaultSet | None = None,
    remap_seed: int = 0,
    telemetry=None,
) -> WorkloadSimulationResult:
    """Run a mapped workload through the cycle-accurate NoC simulator.

    ``injection_rate`` is the offered load of the *heaviest* source
    endpoint; every other source is scaled down proportionally to its
    share of the workload traffic.  Every cycle-loop engine (``"active"``,
    ``"vectorized"``, ``"legacy"``) is supported and bit-identical under a
    fixed seed.

    With a non-empty ``faults`` set the workload runs on the *degraded*
    topology: the graph loses its failed links and routers (survivors are
    relabeled), and — because a failed chiplet's tasks must land
    somewhere — the workload is **re-mapped** onto the degraded graph
    with the same *registered* mapper that produced ``mapping`` (seeded
    by ``remap_seed``).  A hand-built mapping (``mapper="custom"`` or any
    unregistered name) cannot be re-mapped automatically — degrade the
    graph with :meth:`FaultSet.apply <repro.noc.faults.FaultSet.apply>`
    and pass a mapping built for the degraded topology instead.  Fault
    sets that disconnect the topology raise
    :class:`~repro.noc.faults.FaultedTopologyError`.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.TelemetrySession` forwarded to
    :meth:`NocSimulator.run`, observing the underlying NoC run.
    """
    if config is None:
        config = SimulationConfig()
    if faults is not None and not faults.is_empty:
        if mapping.mapper not in available_mappers():
            raise ValueError(
                f"cannot re-map mapper {mapping.mapper!r} onto the degraded "
                "topology: only registered mappers "
                f"({', '.join(available_mappers())}) can be re-run; apply the "
                "FaultSet to the graph yourself and pass a mapping built for "
                "the degraded topology"
            )
        graph = faults.apply(graph).graph
        mapping = map_workload(mapping.mapper, workload, graph, seed=remap_seed)
    traffic = trace_traffic_for(
        workload,
        mapping,
        endpoints_per_chiplet=config.endpoints_per_chiplet,
        max_schedule_slots=max_schedule_slots,
    )
    simulator = NocSimulator(
        graph, config, injection_rate=injection_rate, traffic=traffic
    )
    result = simulator.run(engine=engine, telemetry=telemetry)
    endpoints = task_endpoints(
        workload, mapping, endpoints_per_chiplet=config.endpoints_per_chiplet
    )
    return WorkloadSimulationResult(
        workload_name=workload.name,
        mapper=mapping.mapper,
        num_tasks=workload.num_tasks,
        simulation=result,
        cost=evaluate_mapping(workload, mapping, graph),
        makespan_proxy_cycles=makespan_proxy_cycles(workload, result),
        edge_latencies=_edge_latency_report(workload, endpoints, simulator),
    )
