"""Application workloads: task graphs, chiplet mapping and trace-driven traffic.

This package turns the simulator workload-driven end to end:

* :mod:`repro.workloads.taskgraph`  — the :class:`TaskGraph` model
  (weighted compute tasks, weighted communication edges),
* :mod:`repro.workloads.generators` — classic scenarios (DNN pipelines,
  fork-join, stencil halo exchange, ring all-reduce, client-server),
* :mod:`repro.workloads.mapping`    — task-to-chiplet mappers (recursive
  partition co-bisection, communication-aware greedy, round-robin) plus
  static cost metrics (weighted hop count, link loads),
* :mod:`repro.workloads.trace`      — the :class:`TraceTraffic` bridge that
  drives the cycle-accurate NoC simulator with a mapped workload and
  reports application-level metrics (makespan proxy, per-edge latency).

JSON round-trips of task graphs live in :mod:`repro.io.serialization`.
"""

from repro.workloads.generators import (
    all_reduce,
    available_workloads,
    client_server,
    dnn_pipeline,
    effective_num_tasks,
    fork_join,
    make_workload,
    min_tasks_for,
    stencil,
)
from repro.workloads.mapping import (
    MappingCost,
    WorkloadMapping,
    available_mappers,
    evaluate_mapping,
    greedy_mapping,
    link_loads,
    map_workload,
    partition_mapping,
    round_robin_mapping,
)
from repro.workloads.taskgraph import CommEdge, Task, TaskGraph, build_task_graph
from repro.workloads.trace import (
    EdgeLatency,
    TraceTraffic,
    WorkloadSimulationResult,
    build_endpoint_demands,
    makespan_proxy_cycles,
    simulate_workload,
    task_endpoints,
    trace_traffic_for,
)

__all__ = [
    "CommEdge",
    "EdgeLatency",
    "MappingCost",
    "Task",
    "TaskGraph",
    "TraceTraffic",
    "WorkloadMapping",
    "WorkloadSimulationResult",
    "all_reduce",
    "available_mappers",
    "available_workloads",
    "build_endpoint_demands",
    "build_task_graph",
    "client_server",
    "dnn_pipeline",
    "effective_num_tasks",
    "evaluate_mapping",
    "fork_join",
    "greedy_mapping",
    "link_loads",
    "make_workload",
    "makespan_proxy_cycles",
    "map_workload",
    "min_tasks_for",
    "partition_mapping",
    "round_robin_mapping",
    "simulate_workload",
    "stencil",
    "task_endpoints",
    "trace_traffic_for",
]
