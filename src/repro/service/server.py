"""JSONL-over-Unix-socket transport for the exploration service.

``hexamesh serve`` hosts a :class:`~repro.service.jobs.JobManager`
behind a local stream socket; ``hexamesh jobs ...`` (and any other
process) speaks to it with a line-oriented JSON protocol — one request
object per connection, a stream of JSON response lines back.  Stdlib
only: :mod:`socketserver` threads on the server side, a plain
:mod:`socket` file on the client side.

Protocol
--------
The client sends one JSON object terminated by a newline::

    {"op": "submit", "spec": {"type": "sweep", ...}, "watch": true}

and reads JSON lines until the stream closes.  Every line carries
``"ok"``; progress lines (streamed for ``watch``/``submit --watch``)
carry ``"progress"`` (a :meth:`SweepProgress.as_dict()
<repro.telemetry.progress.SweepProgress.as_dict>` snapshot); the final
line of a completed job carries ``"result"``.  Operations:

=========  ==============================================================
``ping``     liveness check (responds with the store directory)
``submit``   validate + enqueue ``spec``; with ``watch`` stream progress
             and block for the result
``status``   one job's status by ``id``
``watch``    stream a running job's progress, then its final status/result
``result``   block for a job's result payload
``cancel``   request cancellation
``resume``   resubmit a finished job's spec (optionally with ``watch``)
``jobs``     list every job
``shutdown`` stop the server (running jobs are cancelled)
=========  ==============================================================
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Any, Callable, Iterator

from repro.service.jobs import JobManager

#: Wire protocol identifier, bumped on incompatible changes.
PROTOCOL = "hexamesh-jobs-1"


class ServiceError(RuntimeError):
    """A request the service rejected (unknown op, bad spec, unknown id)."""


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read a single request line, stream response lines."""

    def handle(self) -> None:  # pragma: no cover - exercised via the client
        service: ServiceServer = self.server.service  # type: ignore[attr-defined]
        line = self.rfile.readline()
        if not line.strip():
            return
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            self._send({"ok": False, "error": f"bad request: {error}"})
            return
        try:
            service.handle(request, self._send)
        except (BrokenPipeError, ConnectionError):
            # Client went away mid-stream (e.g. a watcher hit Ctrl-C);
            # the job keeps running, only this subscription dies.
            pass
        except ServiceError as error:
            self._try_send({"ok": False, "error": str(error)})
        except Exception as error:  # noqa: BLE001 - connection isolation
            self._try_send({"ok": False, "error": f"{type(error).__name__}: {error}"})

    def _send(self, payload: dict[str, Any]) -> None:
        self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.wfile.flush()

    def _try_send(self, payload: dict[str, Any]) -> None:
        try:
            self._send(payload)
        except (BrokenPipeError, ConnectionError):
            pass


class _ThreadingUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """Host a :class:`JobManager` on a Unix stream socket.

    Use :meth:`serve_forever` to block (the ``hexamesh serve`` path) or
    :meth:`start` to serve from a daemon thread (tests, embedding).
    """

    def __init__(self, manager: JobManager, socket_path: str) -> None:
        self.manager = manager
        self.socket_path = os.fspath(socket_path)
        if os.path.exists(self.socket_path):
            # A previous server that died without cleanup leaves a stale
            # socket file; binding over it requires removal.
            os.unlink(self.socket_path)
        self._server = _ThreadingUnixServer(self.socket_path, _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a ``shutdown`` request)."""
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._cleanup()

    def start(self) -> None:
        """Serve from a background daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="hexamesh-serve", daemon=True
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop serving, cancel running jobs and remove the socket file."""
        self.manager.shutdown(wait=False, cancel_pending=True)
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._cleanup()

    def _cleanup(self) -> None:
        self._server.server_close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- request dispatch ----------------------------------------------------

    def handle(
        self, request: dict[str, Any], send: Callable[[dict[str, Any]], None]
    ) -> None:
        """Execute one request, emitting response lines through ``send``."""
        op = request.get("op")
        if op == "ping":
            send({
                "ok": True,
                "protocol": PROTOCOL,
                "cache_dir": self.manager.cache_dir,
            })
        elif op == "submit":
            spec = request.get("spec")
            if spec is None:
                raise ServiceError("submit needs a 'spec' object")
            try:
                job = self.manager.submit(spec)
            except ValueError as error:
                raise ServiceError(f"invalid spec: {error}") from error
            send({"ok": True, "job": job.status()})
            if request.get("watch"):
                self._stream_job(job.id, send)
        elif op == "watch":
            self._stream_job(self._job_id(request), send)
        elif op == "status":
            send({"ok": True, "job": self._status(self._job_id(request))})
        elif op == "result":
            job_id = self._job_id(request)
            timeout = request.get("timeout")
            try:
                result = self.manager.result(job_id, timeout=timeout)
            except TimeoutError as error:
                raise ServiceError(str(error)) from error
            except RuntimeError as error:
                send({"ok": False, "error": str(error), "job": self._status(job_id)})
                return
            send({"ok": True, "job": self._status(job_id), "result": result})
        elif op == "cancel":
            send({"ok": True, "job": self.manager.cancel(self._job_id(request))})
        elif op == "resume":
            try:
                job = self.manager.resume(self._job_id(request))
            except ValueError as error:
                raise ServiceError(str(error)) from error
            send({"ok": True, "job": job.status()})
            if request.get("watch"):
                self._stream_job(job.id, send)
        elif op == "jobs":
            send({"ok": True, "jobs": self.manager.jobs()})
        elif op == "shutdown":
            send({"ok": True, "shutdown": True})
            # shutdown() must run outside this handler thread: it joins
            # the serve loop, which is blocked waiting for this handler.
            threading.Thread(target=self.shutdown, daemon=True).start()
        else:
            raise ServiceError(f"unknown op {op!r}")

    def _job_id(self, request: dict[str, Any]) -> str:
        job_id = request.get("id")
        if not job_id:
            raise ServiceError(f"op {request.get('op')!r} needs a job 'id'")
        return str(job_id)

    def _status(self, job_id: str) -> dict[str, Any]:
        try:
            return self.manager.status(job_id)
        except KeyError as error:
            raise ServiceError(str(error.args[0])) from error

    def _stream_job(
        self, job_id: str, send: Callable[[dict[str, Any]], None]
    ) -> None:
        """Stream a job's snapshots, then its final status (+ result)."""
        try:
            stream = self.manager.stream(job_id)
        except KeyError as error:
            raise ServiceError(str(error.args[0])) from error
        for snapshot in stream:
            send({"ok": True, "job_id": job_id, "progress": snapshot})
        status = self._status(job_id)
        final: dict[str, Any] = {"ok": status["state"] == "done", "job": status}
        if status["state"] == "done":
            final["result"] = self.manager.result(job_id)
        elif status["error"]:
            final["error"] = status["error"]
        send(final)


class ServiceClient:
    """Talk to a :class:`ServiceServer` over its Unix socket.

    Each request opens a fresh connection (the protocol is one request
    per connection) and yields the server's response lines as dicts.
    """

    def __init__(self, socket_path: str, *, connect_timeout: float = 10.0) -> None:
        self.socket_path = os.fspath(socket_path)
        self.connect_timeout = connect_timeout

    def _connect(self) -> socket.socket:
        """Connect, retrying briefly so clients can race server startup."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(self.socket_path)
                return sock
            except (FileNotFoundError, ConnectionRefusedError):
                sock.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def request(self, payload: dict[str, Any]) -> Iterator[dict[str, Any]]:
        """Send one request and yield every response line until EOF."""
        sock = self._connect()
        try:
            with sock.makefile("rwb") as stream:
                stream.write(json.dumps(payload).encode("utf-8") + b"\n")
                stream.flush()
                for line in stream:
                    if line.strip():
                        yield json.loads(line)
        finally:
            sock.close()

    def call(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request expecting a single response line.

        Raises :class:`ServiceError` when the server reports a failure.
        """
        response: dict[str, Any] | None = None
        for response in self.request(payload):
            break
        if response is None:
            raise ServiceError("server closed the connection without responding")
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response
