"""Result tables shared by the CLI and the exploration service.

The ``hexamesh sweep/workload/faults`` commands and the service's job
results must render *identical* tables for identical explorations — the
service's warm-hit story depends on a resubmitted job returning the same
bytes the original CLI run wrote.  This module is the single source of
those tables: header + row construction for each job type, the CSV
rendering used by ``--output``, and the latency/throughput Pareto front
the service serves alongside sweep results.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.parallel import SweepRecord, parallel_map, resolve_workload_candidate
from repro.noc.config import SimulationConfig
from repro.workloads import makespan_proxy_cycles
from repro.workloads.mapping import evaluate_mapping

SWEEP_HEADER = [
    "kind",
    "chiplets",
    "rate",
    "traffic",
    "avg latency [cyc]",
    "p99 latency [cyc]",
    "accepted [flit/cyc/EP]",
    "delivered ratio",
]

WORKLOAD_HEADER = [
    "arrangement",
    "chiplets",
    "workload",
    "mapper",
    "tasks",
    "weighted hops",
    "max link load",
    "avg latency [cyc]",
    "p99 latency [cyc]",
    "accepted [flit/cyc/EP]",
    "makespan proxy [cyc]",
    "delivered ratio",
]

RESILIENCE_HEADER = [
    "kind",
    "chiplets",
    "failures",
    "rate",
    "samples",
    "avg latency [cyc]",
    "p99 latency [cyc]",
    "accepted [flit/cyc/EP]",
    "delivered ratio",
    "latency vs healthy",
    "throughput vs healthy",
]


def render_csv(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """The exact CSV text ``hexamesh ... --output`` writes for these rows."""
    lines = [",".join(header)]
    lines.extend(",".join(str(value) for value in row) for row in rows)
    return "\n".join(lines) + "\n"


def sweep_rows(records: Sequence[SweepRecord]) -> list[list[Any]]:
    """The ``hexamesh sweep`` table rows for these records."""
    return [
        [
            record.candidate.kind,
            record.candidate.num_chiplets,
            record.candidate.injection_rate,
            record.candidate.traffic,
            record.result.packet_latency.mean,
            record.result.packet_latency.p99,
            record.result.accepted_flit_rate,
            record.result.measured_delivery_ratio,
        ]
        for record in records
    ]


def workload_static_metrics(item):
    """Static cost columns of one workload candidate (worker-process safe).

    Returns the rebuilt workload alongside its mapping cost so the
    coordinator can derive the makespan proxy without re-running the
    (comparatively expensive) partition mapper itself.
    """
    candidate, config = item
    graph, workload, mapping, _ = resolve_workload_candidate(candidate, config)
    return workload, evaluate_mapping(workload, mapping, graph)


def workload_rows(
    records: Sequence[SweepRecord],
    config: SimulationConfig,
    *,
    jobs: int = 1,
) -> list[list[Any]]:
    """The ``hexamesh workload`` table rows for these records.

    The static metrics are recomputed from the candidate identity (valid
    for cache hits too); the partition mapper dominates that cost, so
    the recomputation fans across ``jobs`` worker processes like the
    sweep itself.
    """
    static_metrics = parallel_map(
        workload_static_metrics,
        [(record.candidate, config) for record in records],
        jobs=jobs,
    )
    rows = []
    for record, (workload, cost) in zip(records, static_metrics):
        candidate = record.candidate
        rows.append(
            [
                candidate.kind,
                candidate.num_chiplets,
                candidate.workload,
                candidate.effective_mapper,
                workload.num_tasks,
                cost.weighted_hop_count,
                cost.max_link_load,
                round(record.result.packet_latency.mean, 3),
                round(record.result.packet_latency.p99, 3),
                round(record.result.accepted_flit_rate, 5),
                round(makespan_proxy_cycles(workload, record.result), 2),
                round(record.result.measured_delivery_ratio, 4),
            ]
        )
    return rows


def resilience_rows(summaries: Sequence[Any]) -> list[list[Any]]:
    """The ``hexamesh faults`` table rows for these summaries.

    Ratio columns stay raw floats (NaN included) so CSV output parses
    numerically like every other command's.
    """
    return [
        [
            summary.kind,
            summary.num_chiplets,
            summary.num_failures,
            summary.injection_rate,
            summary.samples,
            round(summary.mean_latency_cycles, 3),
            round(summary.p99_latency_cycles, 3),
            round(summary.accepted_flit_rate, 5),
            round(summary.delivery_ratio, 4),
            round(summary.latency_vs_baseline, 4),
            round(summary.throughput_vs_baseline, 4),
        ]
        for summary in summaries
    ]


def figure7_csv(figure7) -> str:
    """The exact CSV text ``hexamesh figure 7`` emits for this result."""
    return "".join(
        experiment.to_csv()
        for experiment in (
            figure7.latency_experiment(),
            figure7.throughput_experiment(),
            figure7.normalized_latency_experiment(),
            figure7.normalized_throughput_experiment(),
        )
    )


def sweep_pareto(records: Sequence[SweepRecord]) -> list[dict[str, Any]]:
    """Latency / throughput Pareto front over evaluated sweep records.

    A record is Pareto-optimal when no other record has both lower mean
    packet latency and higher accepted throughput (one strictly better).
    Returned as JSON-able dicts sorted by latency, ready to serve with a
    job result — on a warm store this is an O(grid) scan over cache
    hits, no simulation.
    """
    points = [
        {
            "kind": record.candidate.kind,
            "chiplets": record.candidate.num_chiplets,
            "rate": record.candidate.injection_rate,
            "traffic": record.candidate.traffic,
            "latency": record.result.packet_latency.mean,
            "throughput": record.result.accepted_flit_rate,
        }
        for record in records
    ]
    front = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            better_latency = other["latency"] <= candidate["latency"]
            better_throughput = other["throughput"] >= candidate["throughput"]
            strictly_better = (
                other["latency"] < candidate["latency"]
                or other["throughput"] > candidate["throughput"]
            )
            if better_latency and better_throughput and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda point: point["latency"])
