"""Async job execution over the result store: the exploration service core.

:class:`JobManager` is a long-running, in-process front end to the sweep
machinery: it accepts validated :class:`~repro.service.specs.JobSpec`
descriptions, runs them on a bounded thread pool (each job drives the
existing runners, which in turn fan simulation across worker
*processes*), streams :class:`~repro.telemetry.progress.SweepProgress`
snapshots per job, and shares one persistent
:class:`~repro.store.ResultStore` plus one
:class:`~repro.core.parallel.InFlightRegistry` across every job — so a
warm resubmission is pure store hits (zero simulator invocations) and
two concurrent jobs that overlap trigger exactly one simulation per
unique ``result_key``.

Cancellation is cooperative: a cancel request raises
:class:`JobCancelled` out of the job's next progress callback, the
runner releases its in-flight claims, and everything already simulated
stays in the store — resuming the job (a fresh submission of the same
spec) picks up from there as cache hits.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterator, Mapping

from repro.core.parallel import (
    BatchedSweepRunner,
    InFlightRegistry,
    ParallelSweepRunner,
)
from repro.service.specs import JobSpec, job_spec
from repro.service.tables import (
    RESILIENCE_HEADER,
    SWEEP_HEADER,
    WORKLOAD_HEADER,
    figure7_csv,
    render_csv,
    resilience_rows,
    sweep_pareto,
    sweep_rows,
    workload_rows,
)
from repro.telemetry.progress import SweepProgressTracker

#: States a job moves through: ``queued`` → ``running`` → one terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_ACTIVE_STATES = frozenset({"queued", "running"})


class JobCancelled(RuntimeError):
    """Raised inside a job's progress callback to unwind a cancelled run."""


class Job:
    """One submitted exploration job: spec, state, progress and result.

    All mutation happens under the job's condition variable; readers
    (:meth:`status`, :meth:`stream`, :meth:`wait`) are safe from any
    thread, which is what lets socket handler threads watch jobs the
    pool is still running.
    """

    def __init__(self, job_id: str, spec: JobSpec, *, resumed_from: str | None = None):
        self.id = job_id
        self.spec = spec
        self.resumed_from = resumed_from
        self.state = "queued"
        self.error: str | None = None
        self.result: dict[str, Any] | None = None
        self._snapshots: list[dict[str, Any]] = []
        self._cond = threading.Condition()
        self._cancel = threading.Event()
        self._future: Future | None = None

    # -- worker-side mutation ------------------------------------------------

    def _set_state(self, state: str, *, error: str | None = None,
                   result: dict[str, Any] | None = None) -> None:
        with self._cond:
            self.state = state
            if error is not None:
                self.error = error
            if result is not None:
                self.result = result
            self._cond.notify_all()

    def _add_snapshot(self, snapshot: dict[str, Any]) -> None:
        with self._cond:
            self._snapshots.append(snapshot)
            self._cond.notify_all()

    # -- client-side views ---------------------------------------------------

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state not in _ACTIVE_STATES

    def status(self) -> dict[str, Any]:
        """JSON-able job status: state, spec, latest progress, error."""
        with self._cond:
            progress = self._snapshots[-1] if self._snapshots else None
            return {
                "id": self.id,
                "type": self.spec.job_type,
                "state": self.state,
                "spec": self.spec.as_dict(),
                "progress": progress,
                "snapshots": len(self._snapshots),
                "error": self.error,
                "resumed_from": self.resumed_from,
            }

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; ``True`` when it finished."""
        with self._cond:
            self._cond.wait_for(lambda: self.state not in _ACTIVE_STATES, timeout)
            return self.state not in _ACTIVE_STATES

    def stream(self) -> Iterator[dict[str, Any]]:
        """Yield every progress snapshot, live, until the job is terminal.

        Snapshots already recorded are replayed first, so late
        subscribers see the full monotone ``done`` sequence; the stream
        ends once the job reaches a terminal state and every snapshot
        has been delivered.
        """
        cursor = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: len(self._snapshots) > cursor
                    or self.state not in _ACTIVE_STATES
                )
                batch = self._snapshots[cursor:]
                cursor += len(batch)
                terminal = self.state not in _ACTIVE_STATES
            for snapshot in batch:
                yield snapshot
            if terminal:
                return


class JobManager:
    """Run exploration jobs asynchronously over one shared result store.

    Parameters
    ----------
    cache_dir:
        Root of the persistent result store every job reads and writes.
        ``None`` runs jobs uncached (each simulates everything — useful
        only for tests).
    workers:
        Concurrent jobs (threads).  Each job additionally fans its
        simulations across the worker *processes* its spec's ``jobs``
        field requests, so this bounds job-level concurrency, not
        simulator parallelism.
    """

    def __init__(self, *, cache_dir: str | None = None, workers: int = 2) -> None:
        self._cache_dir = cache_dir
        self._in_flight = InFlightRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="hexamesh-job"
        )
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    @property
    def cache_dir(self) -> str | None:
        return self._cache_dir

    @property
    def in_flight(self) -> InFlightRegistry:
        """The registry deduplicating candidates across this manager's jobs."""
        return self._in_flight

    # -- submission and lookup ----------------------------------------------

    def submit(
        self,
        spec: Mapping[str, Any] | JobSpec,
        *,
        resumed_from: str | None = None,
    ) -> Job:
        """Validate ``spec``, enqueue it and return the (running) job."""
        validated = spec if isinstance(spec, JobSpec) else job_spec(spec)
        with self._lock:
            job = Job(
                f"job-{next(self._ids)}", validated, resumed_from=resumed_from
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        job._future = self._executor.submit(self._execute, job)
        return job

    def get(self, job_id: str) -> Job:
        """The job with this id (raises ``KeyError`` for unknown ids)."""
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job id {job_id!r}")
            return self._jobs[job_id]

    def jobs(self) -> list[dict[str, Any]]:
        """Status of every job, in submission order."""
        with self._lock:
            ordered = [self._jobs[job_id] for job_id in self._order]
        return [job.status() for job in ordered]

    # -- the five-verb Python API -------------------------------------------

    def status(self, job_id: str) -> dict[str, Any]:
        """Current status of one job."""
        return self.get(job_id).status()

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Live progress snapshots of one job (ends when terminal)."""
        return self.get(job_id).stream()

    def result(self, job_id: str, *, timeout: float | None = None) -> dict[str, Any]:
        """Block for and return a job's result payload.

        Raises :class:`RuntimeError` when the job failed or was
        cancelled (the exception message carries the job error), and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        job = self.get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state} after {timeout}s")
        if job.state != "done":
            raise RuntimeError(
                f"job {job_id} {job.state}: {job.error or 'no result available'}"
            )
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation; returns the job's status afterwards.

        Queued jobs cancel immediately; running jobs unwind at their
        next progress callback (everything already simulated stays in
        the store, so a resume is pure cache hits up to the cut).
        """
        job = self.get(job_id)
        job._cancel.set()
        future = job._future
        if future is not None and future.cancel():
            # Never started: terminal right away.
            job._set_state("cancelled", error="cancelled before start")
        return job.status()

    def resume(self, job_id: str) -> Job:
        """Resubmit a cancelled/failed job's spec as a fresh job.

        The new job re-walks the full grid; every candidate the original
        run completed comes back as a store hit, so resuming after an
        interrupt costs only the not-yet-simulated remainder.
        """
        job = self.get(job_id)
        if not job.finished:
            raise ValueError(f"job {job_id} is still {job.state}; cancel it first")
        return self.submit(job.spec, resumed_from=job.id)

    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        if cancel_pending:
            with self._lock:
                jobs = list(self._jobs.values())
            for job in jobs:
                if not job.finished:
                    self.cancel(job.id)
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    # -- execution -----------------------------------------------------------

    def _execute(self, job: Job) -> None:
        if job.cancel_requested:
            job._set_state("cancelled", error="cancelled before start")
            return
        job._set_state("running")
        spec = job.spec
        tracker = SweepProgressTracker(jobs=spec.param("jobs"))

        def progress(done: int, total: int, record) -> None:
            if job.cancel_requested:
                raise JobCancelled(f"job {job.id} cancelled at {done}/{total}")
            job._add_snapshot(tracker.update(done, total, record).as_dict())

        handler = {
            "sweep": self._run_sweep,
            "workload": self._run_workload,
            "resilience": self._run_resilience,
            "figure7": self._run_figure7,
        }[spec.job_type]
        try:
            payload = handler(spec, progress)
        except JobCancelled as cancelled:
            job._set_state("cancelled", error=str(cancelled))
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job._set_state("failed", error=f"{type(error).__name__}: {error}")
        else:
            job._set_state("done", result=payload)

    def _cache_summary(self, records) -> dict[str, int]:
        hits = sum(1 for record in records if record.from_cache)
        return {
            "candidates": len(records),
            "cache_hits": hits,
            "simulated": len(records) - hits,
        }

    def _run_sweep(self, spec: JobSpec, progress) -> dict[str, Any]:
        config = spec.config()
        runner_cls = BatchedSweepRunner if spec.param("batch") else ParallelSweepRunner
        runner = runner_cls(
            config,
            jobs=spec.param("jobs"),
            cache_dir=self._cache_dir,
            engine=spec.param("engine"),
            in_flight=self._in_flight,
        )
        candidates = ParallelSweepRunner.grid(
            spec.param("kinds"),
            spec.param("chiplets"),
            spec.param("rates"),
            spec.param("traffic"),
            regularity=spec.param("regularity"),
        )
        records = runner.run(candidates, progress=progress)
        rows = sweep_rows(records)
        return {
            "header": SWEEP_HEADER,
            "rows": rows,
            "csv": render_csv(SWEEP_HEADER, rows),
            "pareto": sweep_pareto(records),
            "cache": self._cache_summary(records),
        }

    def _run_workload(self, spec: JobSpec, progress) -> dict[str, Any]:
        config = spec.config()
        runner = ParallelSweepRunner(
            config,
            jobs=spec.param("jobs"),
            cache_dir=self._cache_dir,
            engine=spec.param("engine"),
            in_flight=self._in_flight,
        )
        candidates = ParallelSweepRunner.workload_grid(
            spec.param("arrangements"),
            spec.param("chiplets"),
            spec.param("workloads"),
            spec.param("mappers"),
            injection_rates=(spec.param("injection_rate"),),
            num_tasks=spec.param("tasks"),
            regularity=spec.param("regularity"),
        )
        records = runner.run(candidates, progress=progress)
        rows = workload_rows(records, config, jobs=spec.param("jobs"))
        return {
            "header": WORKLOAD_HEADER,
            "rows": rows,
            "csv": render_csv(WORKLOAD_HEADER, rows),
            "cache": self._cache_summary(records),
        }

    def _run_resilience(self, spec: JobSpec, progress) -> dict[str, Any]:
        from repro.resilience.sweep import run_resilience_sweep

        result = run_resilience_sweep(
            spec.param("kinds"),
            spec.param("chiplets"),
            spec.param("failures"),
            samples=spec.param("samples"),
            fault_type=spec.param("fault_type"),
            config=spec.config(),
            injection_rate=spec.param("injection_rate"),
            injection_rates=spec.param("injection_rates"),
            traffic=spec.param("traffic"),
            regularity=spec.param("regularity"),
            jobs=spec.param("jobs"),
            cache_dir=self._cache_dir,
            engine=spec.param("engine"),
            batch=spec.param("batch"),
            progress=progress,
            in_flight=self._in_flight,
        )
        rows = resilience_rows(result.summaries)
        return {
            "header": RESILIENCE_HEADER,
            "rows": rows,
            "csv": render_csv(RESILIENCE_HEADER, rows),
            "cache": self._cache_summary(list(result.records)),
        }

    def _run_figure7(self, spec: JobSpec, progress) -> dict[str, Any]:
        from repro.evaluation.performance import run_figure7

        figure7 = run_figure7(
            range(2, spec.param("max_chiplets") + 1),
            mode=spec.param("mode"),
            simulation_points=spec.param("sim_points"),
            jobs=spec.param("jobs"),
            cache_dir=self._cache_dir,
            noc_engine=spec.param("engine"),
            batch=spec.param("batch"),
            progress=progress,
            in_flight=self._in_flight,
        )
        return {
            "csv": figure7_csv(figure7),
            "metadata": figure7.metadata,
        }
