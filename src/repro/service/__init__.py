"""Exploration-as-a-service: async jobs over the persistent result store.

The service layer turns the sweep machinery into a long-running process
serving many clients: job specs (:mod:`~repro.service.specs`) describe
sweep / workload / resilience / figure-7 explorations, a
:class:`JobManager` (:mod:`~repro.service.jobs`) runs them on a bounded
pool with per-job progress streams while one shared
:class:`~repro.store.ResultStore` and
:class:`~repro.core.parallel.InFlightRegistry` guarantee each unique
``result_key`` simulates at most once — across jobs, submissions and
restarts.  :mod:`~repro.service.server` exposes the same five verbs
(``submit``, ``status``, ``stream``, ``result``, ``cancel``) over a
JSONL Unix-socket protocol behind ``hexamesh serve`` / ``hexamesh
jobs``; :mod:`~repro.service.tables` keeps service results byte-identical
to the equivalent CLI commands.
"""

from repro.service.jobs import JOB_STATES, Job, JobCancelled, JobManager
from repro.service.server import (
    PROTOCOL,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.service.specs import JOB_TYPES, JobSpec, job_spec, phase_config

__all__ = [
    "JOB_STATES",
    "JOB_TYPES",
    "PROTOCOL",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "job_spec",
    "phase_config",
]
