"""Job specifications of the exploration service.

A job spec is the wire-level description of one unit of exploration
work: a job type (``sweep``, ``workload``, ``resilience`` or
``figure7``) plus the parameters the corresponding runner needs.  Specs
arrive as plain JSON dicts (from the Python API or over the service
socket), are validated and normalised here — defaults filled in, lists
canonicalised, unknown fields rejected — and travel onward as frozen
:class:`JobSpec` objects whose canonical JSON form doubles as an
identity: two submissions of the same exploration produce equal specs,
which is what lets the :class:`~repro.service.jobs.JobManager` treat a
warm resubmission as the same work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.noc.config import SimulationConfig
from repro.noc.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.noc.traffic import available_traffic_patterns
from repro.resilience.sweep import FAULT_TYPES
from repro.utils.validation import check_in_choices, check_positive_int
from repro.workloads import available_mappers, available_workloads

#: Arrangement families of the paper (mirrors the CLI's ``_KINDS``).
ARRANGEMENT_KINDS = ("grid", "brickwall", "honeycomb", "hexamesh")

#: Regularity classes accepted by arrangement generators.
REGULARITIES = ("regular", "semi-regular", "irregular")

#: Job types the service accepts.
JOB_TYPES = ("sweep", "workload", "resilience", "figure7")

#: Figure-7 evaluation modes.
FIGURE7_MODES = ("analytical", "hybrid", "simulation")


def phase_config(cycles: int, *, seed: int | None = None) -> SimulationConfig:
    """Simulation phase lengths scaled from a ``cycles`` knob.

    Shared by the CLI's ``simulate`` / ``sweep`` commands and the
    service's job specs, so a job submitted over the socket runs exactly
    the configuration the equivalent CLI invocation would.
    """
    return SimulationConfig(
        warmup_cycles=max(100, cycles // 2),
        measurement_cycles=cycles,
        drain_cycles=cycles * 2,
        **({} if seed is None else {"seed": seed}),
    )


@dataclass(frozen=True)
class JobSpec:
    """One validated, normalised job description.

    ``params`` is stored as a canonical sorted ``(name, value)`` tuple
    (lists rendered as tuples) so equal explorations compare and hash
    equal; :meth:`as_dict` restores the JSON-able form.
    """

    job_type: str
    params: tuple[tuple[str, Any], ...]

    def param(self, name: str) -> Any:
        """The value of one normalised parameter."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able rendering (inverse of :func:`job_spec`)."""
        data: dict[str, Any] = {"type": self.job_type}
        for key, value in self.params:
            data[key] = list(value) if isinstance(value, tuple) else value
        return data

    def canonical_json(self) -> str:
        """Canonical JSON identity of this spec."""
        return json.dumps(self.as_dict(), sort_keys=True)

    def config(self) -> SimulationConfig:
        """The simulation configuration this spec's candidates run with."""
        return phase_config(self.param("cycles"), seed=self.param("seed"))


def _as_list(value: Any, kind: type, name: str) -> tuple:
    """Normalise a scalar-or-list JSON value into a typed tuple."""
    if value is None:
        raise ValueError(f"spec field {name!r} must not be null")
    if isinstance(value, (list, tuple)):
        items = value
    else:
        items = [value]
    if not items:
        raise ValueError(f"spec field {name!r} must name at least one value")
    try:
        return tuple(kind(item) for item in items)
    except (TypeError, ValueError) as error:
        raise ValueError(f"spec field {name!r}: {error}") from error


# Per-type field tables: name -> (normaliser, default).  A default of
# ``_REQUIRED`` marks the field mandatory.  Normalisers receive the raw
# JSON value and return the canonical form (tuples for lists).
_REQUIRED = object()


def _common_fields() -> dict[str, tuple]:
    return {
        "cycles": (lambda v: int(v), 1000),
        "seed": (lambda v: int(v), 1),
        "engine": (lambda v: str(v), DEFAULT_ENGINE),
        "jobs": (lambda v: int(v), 1),
    }


def _spec_fields(job_type: str) -> dict[str, tuple]:
    fields = _common_fields()
    if job_type == "sweep":
        fields.update(
            kinds=(lambda v: _as_list(v, str, "kinds"), ("grid", "hexamesh")),
            chiplets=(lambda v: _as_list(v, int, "chiplets"), (16, 36)),
            rates=(lambda v: _as_list(v, float, "rates"), (0.02, 0.1, 0.3)),
            traffic=(lambda v: _as_list(v, str, "traffic"), ("uniform",)),
            regularity=(lambda v: None if v is None else str(v), None),
            batch=(lambda v: bool(v), False),
        )
    elif job_type == "workload":
        fields.update(
            workloads=(lambda v: _as_list(v, str, "workloads"), ("dnn-pipeline",)),
            arrangements=(
                lambda v: _as_list(v, str, "arrangements"),
                ("hexamesh",),
            ),
            chiplets=(lambda v: _as_list(v, int, "chiplets"), (37,)),
            mappers=(lambda v: _as_list(v, str, "mappers"), ("partition",)),
            tasks=(lambda v: None if v is None else int(v), None),
            injection_rate=(lambda v: float(v), 0.1),
            regularity=(lambda v: None if v is None else str(v), None),
        )
    elif job_type == "resilience":
        fields.update(
            kinds=(lambda v: _as_list(v, str, "kinds"), ("grid", "hexamesh")),
            chiplets=(lambda v: int(v), 37),
            failures=(lambda v: _as_list(v, int, "failures"), (0, 1, 2)),
            fault_type=(lambda v: str(v), "link"),
            samples=(lambda v: int(v), 2),
            injection_rate=(lambda v: float(v), 0.1),
            injection_rates=(
                lambda v: None if v is None else _as_list(v, float, "injection_rates"),
                None,
            ),
            traffic=(lambda v: str(v), "uniform"),
            regularity=(lambda v: None if v is None else str(v), None),
            batch=(lambda v: bool(v), False),
        )
    elif job_type == "figure7":
        # Figure 7 runs the paper's evaluation parameters; it has no
        # cycles/seed knobs (mirroring `hexamesh figure 7`), so its
        # results are byte-identical to the CLI's.
        del fields["cycles"], fields["seed"]
        fields.update(
            max_chiplets=(lambda v: int(v), 30),
            mode=(lambda v: str(v), "analytical"),
            sim_points=(
                lambda v: None if v is None else _as_list(v, int, "sim_points"),
                None,
            ),
            batch=(lambda v: bool(v), False),
        )
    else:  # pragma: no cover - guarded by the caller
        raise ValueError(f"unknown job type {job_type!r}")
    return fields


def _check_spec(job_type: str, params: dict[str, Any]) -> None:
    """Cross-field validation after normalisation (fail before running)."""
    check_in_choices("engine", params["engine"], ENGINE_NAMES)
    if "cycles" in params:
        check_positive_int("cycles", params["cycles"])
    check_positive_int("jobs", params["jobs"])
    if job_type == "sweep":
        for kind in params["kinds"]:
            check_in_choices("kind", kind, ARRANGEMENT_KINDS)
        for traffic in params["traffic"]:
            check_in_choices("traffic", traffic, available_traffic_patterns())
    elif job_type == "workload":
        for kind in params["workloads"]:
            check_in_choices("workload kind", kind, available_workloads())
        for arrangement in params["arrangements"]:
            check_in_choices("arrangement", arrangement, ARRANGEMENT_KINDS)
        for mapper in params["mappers"]:
            check_in_choices("mapper", mapper, available_mappers())
    elif job_type == "resilience":
        for kind in params["kinds"]:
            check_in_choices("kind", kind, ARRANGEMENT_KINDS)
        check_in_choices("fault_type", params["fault_type"], FAULT_TYPES)
        check_in_choices("traffic", params["traffic"], available_traffic_patterns())
    elif job_type == "figure7":
        check_in_choices("mode", params["mode"], FIGURE7_MODES)
        check_positive_int("max_chiplets", params["max_chiplets"])
    regularity = params.get("regularity")
    if regularity is not None:
        check_in_choices("regularity", regularity, REGULARITIES)


def job_spec(data: Mapping[str, Any]) -> JobSpec:
    """Validate and normalise a raw JSON job description.

    ``data`` must carry a ``type`` field naming one of :data:`JOB_TYPES`;
    every other field is type-specific, scalar-or-list values are
    accepted for list fields, defaults fill in the rest, and unknown
    fields are rejected (a typo'd knob must not silently run the default
    exploration).
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"job spec must be a JSON object, got {type(data).__name__}")
    payload = dict(data)
    job_type = payload.pop("type", None)
    if job_type is None:
        raise ValueError(f"job spec needs a 'type' field (one of {', '.join(JOB_TYPES)})")
    check_in_choices("type", job_type, JOB_TYPES)
    fields = _spec_fields(job_type)
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ValueError(
            f"unknown {job_type} spec field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(fields))})"
        )
    params: dict[str, Any] = {}
    for name, (normalise, default) in fields.items():
        if name in payload:
            params[name] = normalise(payload[name])
        elif default is _REQUIRED:  # pragma: no cover - no required fields yet
            raise ValueError(f"{job_type} spec requires field {name!r}")
        else:
            params[name] = default
    _check_spec(job_type, params)
    return JobSpec(
        job_type=job_type,
        params=tuple(sorted(params.items())),
    )
