"""The brickwall arrangement (Figure 4c).

Rectangular chiplets laid out like bricks in a wall: every other row is
shifted by half a chiplet width, so each interior chiplet touches six
others (two in its own row, two above, two below).  The resulting graph is
identical to that of the honeycomb of hexagonal chiplets while respecting
the rectangular-chiplet constraint.
"""

from __future__ import annotations

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.lattice import Cell, brickwall_arrangement
from repro.utils.mathutils import balanced_factor_pair, is_perfect_square, isqrt_floor
from repro.utils.validation import check_positive, check_positive_int

from repro.arrangements.grid import DEFAULT_MAX_ASPECT_RATIO


def regular_brickwall_cells(side: int) -> list[Cell]:
    """Cells of a ``side x side`` regular brickwall."""
    check_positive_int("side", side)
    return [(row, col) for row in range(side) for col in range(side)]


def semi_regular_brickwall_cells(rows: int, cols: int) -> list[Cell]:
    """Cells of a rectangular ``rows x cols`` semi-regular brickwall."""
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    return [(row, col) for row in range(rows) for col in range(cols)]


def irregular_brickwall_cells(num_chiplets: int) -> list[Cell]:
    """Cells of an irregular brickwall with exactly ``num_chiplets`` chiplets.

    As for the grid, the construction starts from the closest smaller
    regular (square) brickwall and appends the remaining chiplets as an
    incomplete extra column followed by an incomplete extra row; every
    added chiplet is adjacent to the already-placed ones.
    """
    check_positive_int("num_chiplets", num_chiplets)
    side = isqrt_floor(num_chiplets)
    cells = regular_brickwall_cells(side) if side > 0 else []
    remaining = num_chiplets - side * side
    extra_column = min(remaining, side)
    for row in range(extra_column):
        cells.append((row, side))
    remaining -= extra_column
    for col in range(remaining):
        cells.append((side, col))
    return cells


def generate_brickwall(
    num_chiplets: int,
    regularity: Regularity | str | None = None,
    *,
    chiplet_width: float = 1.0,
    chiplet_height: float = 1.0,
    max_aspect_ratio: float = DEFAULT_MAX_ASPECT_RATIO,
) -> Arrangement:
    """Generate a brickwall arrangement of ``num_chiplets`` chiplets.

    The parameters mirror :func:`repro.arrangements.grid.generate_grid`.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive("chiplet_width", chiplet_width)
    check_positive("chiplet_height", chiplet_height)
    check_positive("max_aspect_ratio", max_aspect_ratio)

    requested = Regularity.from_name(regularity) if regularity is not None else None
    metadata: dict[str, object] = {}

    factor_pair = balanced_factor_pair(num_chiplets)
    semi_regular_possible = (
        factor_pair is not None
        and factor_pair[0] != factor_pair[1]
        and factor_pair[1] / factor_pair[0] <= max_aspect_ratio
    )

    if requested is None:
        if is_perfect_square(num_chiplets):
            requested = Regularity.REGULAR
        elif semi_regular_possible:
            requested = Regularity.SEMI_REGULAR
        else:
            requested = Regularity.IRREGULAR

    if requested is Regularity.REGULAR:
        if not is_perfect_square(num_chiplets):
            raise ValueError(
                f"a regular brickwall requires a perfect-square chiplet count, "
                f"got {num_chiplets}"
            )
        side = isqrt_floor(num_chiplets)
        cells = regular_brickwall_cells(side)
        metadata.update(rows=side, cols=side)
    elif requested is Regularity.SEMI_REGULAR:
        if factor_pair is None or factor_pair[0] == factor_pair[1]:
            raise ValueError(
                f"{num_chiplets} chiplets admit no semi-regular (R != C) brickwall"
            )
        rows, cols = factor_pair
        if cols / rows > max_aspect_ratio:
            raise ValueError(
                f"the most balanced factorisation {rows}x{cols} of {num_chiplets} "
                f"exceeds the aspect-ratio limit {max_aspect_ratio}"
            )
        cells = semi_regular_brickwall_cells(rows, cols)
        metadata.update(rows=rows, cols=cols)
    else:
        cells = irregular_brickwall_cells(num_chiplets)
        side = isqrt_floor(num_chiplets)
        metadata.update(core_side=side, extra_chiplets=num_chiplets - side * side)

    placement, graph = brickwall_arrangement(cells, chiplet_width, chiplet_height)
    return Arrangement(
        kind=ArrangementKind.BRICKWALL,
        regularity=requested,
        num_chiplets=num_chiplets,
        graph=graph,
        placement=placement,
        chiplet_width=chiplet_width,
        chiplet_height=chiplet_height,
        metadata=metadata,
    )
