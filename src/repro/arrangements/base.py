"""Common data types for chiplet arrangements."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.geometry.placement import ChipletPlacement
from repro.graphs.metrics import DegreeStatistics, GraphMetrics, compute_metrics, diameter
from repro.graphs.model import ChipGraph


class ArrangementKind(enum.Enum):
    """The four arrangement families studied in the paper."""

    GRID = "grid"
    BRICKWALL = "brickwall"
    HONEYCOMB = "honeycomb"
    HEXAMESH = "hexamesh"

    @classmethod
    def from_name(cls, name: "str | ArrangementKind") -> "ArrangementKind":
        """Accept either an enum member or its lower-case string name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError as error:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown arrangement kind {name!r}; expected one of: {valid}"
            ) from error

    @property
    def short_label(self) -> str:
        """Two-letter label used by the paper (G, HC, BW, HM)."""
        return {
            ArrangementKind.GRID: "G",
            ArrangementKind.BRICKWALL: "BW",
            ArrangementKind.HONEYCOMB: "HC",
            ArrangementKind.HEXAMESH: "HM",
        }[self]


class Regularity(enum.Enum):
    """The paper's three regularity classes (Section IV-C)."""

    REGULAR = "regular"
    SEMI_REGULAR = "semi-regular"
    IRREGULAR = "irregular"

    @classmethod
    def from_name(cls, name: "str | Regularity") -> "Regularity":
        """Accept either an enum member or its string name."""
        if isinstance(name, cls):
            return name
        normalized = str(name).lower().replace("_", "-")
        try:
            return cls(normalized)
        except ValueError as error:
            valid = ", ".join(member.value for member in cls)
            raise ValueError(
                f"unknown regularity {name!r}; expected one of: {valid}"
            ) from error


@dataclass
class Arrangement:
    """A concrete arrangement of ``num_chiplets`` compute chiplets.

    Instances are produced by the generators in this package (or by
    :func:`repro.arrangements.factory.make_arrangement`).  They bundle the
    geometric placement, the derived inter-chiplet graph and bookkeeping
    information used by the link model and the evaluation harness.

    Attributes
    ----------
    kind:
        Arrangement family.
    regularity:
        Regularity class actually realised.
    num_chiplets:
        Number of compute chiplets (graph vertices).
    graph:
        Inter-chiplet connectivity graph (vertices ``0 .. num_chiplets-1``).
    placement:
        Geometric placement of rectangular chiplets; ``None`` for the
        honeycomb, whose hexagonal chiplets cannot be represented with
        rectangles (it violates the paper's constraints anyway).
    chiplet_width, chiplet_height:
        Footprint of each (identical) chiplet in millimetres.
    violates_shape_constraints:
        ``True`` only for the honeycomb.
    metadata:
        Generator-specific details (rows/columns, rings, partial cells...).
    """

    kind: ArrangementKind
    regularity: Regularity
    num_chiplets: int
    graph: ChipGraph
    placement: ChipletPlacement | None
    chiplet_width: float = 1.0
    chiplet_height: float = 1.0
    violates_shape_constraints: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_chiplets < 1:
            raise ValueError("an arrangement needs at least one chiplet")
        if self.graph.num_nodes != self.num_chiplets:
            raise ValueError(
                f"graph has {self.graph.num_nodes} nodes but the arrangement claims "
                f"{self.num_chiplets} chiplets"
            )
        if self.placement is not None and len(self.placement) != self.num_chiplets:
            raise ValueError(
                f"placement has {len(self.placement)} chiplets but the arrangement "
                f"claims {self.num_chiplets}"
            )

    # -- graph-derived quantities --------------------------------------------

    def diameter(self) -> int:
        """Network diameter of the arrangement's graph (latency proxy)."""
        return diameter(self.graph)

    def metrics(self) -> GraphMetrics:
        """Full set of graph metrics (diameter, radius, degrees, ...)."""
        return compute_metrics(self.graph)

    def degree_statistics(self) -> DegreeStatistics:
        """Minimum / maximum / average number of neighbours per chiplet."""
        return DegreeStatistics.of(self.graph)

    @property
    def link_sectors_per_chiplet(self) -> int:
        """Number of D2D-link bump sectors each chiplet provides.

        The grid bump layout (Figure 5a) has four link sectors, the
        brickwall / honeycomb / HexaMesh layout (Figure 5b) has six.
        """
        return 4 if self.kind is ArrangementKind.GRID else 6

    @property
    def label(self) -> str:
        """Human-readable label such as ``"HM-37 (regular)"``."""
        return f"{self.kind.short_label}-{self.num_chiplets} ({self.regularity.value})"

    def describe(self) -> dict[str, Any]:
        """Summary dictionary used by reports and serialisation."""
        stats = self.degree_statistics()
        return {
            "kind": self.kind.value,
            "regularity": self.regularity.value,
            "num_chiplets": self.num_chiplets,
            "num_links": self.graph.num_edges,
            "diameter": self.diameter(),
            "min_neighbors": stats.minimum,
            "max_neighbors": stats.maximum,
            "avg_neighbors": stats.average,
            "violates_shape_constraints": self.violates_shape_constraints,
            "metadata": dict(self.metadata),
        }
