"""The 2D grid arrangement (the paper's baseline, Figure 4a)."""

from __future__ import annotations

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.lattice import Cell, square_lattice_arrangement
from repro.utils.mathutils import balanced_factor_pair, is_perfect_square, isqrt_floor
from repro.utils.validation import check_positive, check_positive_int

#: Default limit on how elongated a semi-regular layout may be before it is
#: considered unreasonable (the paper notes that semi-regular arrangements
#: "make only sense if R and C are similar").
DEFAULT_MAX_ASPECT_RATIO = 2.0


def regular_grid_cells(side: int) -> list[Cell]:
    """Cells of a ``side x side`` regular grid."""
    check_positive_int("side", side)
    return [(row, col) for row in range(side) for col in range(side)]


def semi_regular_grid_cells(rows: int, cols: int) -> list[Cell]:
    """Cells of a rectangular ``rows x cols`` semi-regular grid."""
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    return [(row, col) for row in range(rows) for col in range(cols)]


def irregular_grid_cells(num_chiplets: int) -> list[Cell]:
    """Cells of an irregular grid with exactly ``num_chiplets`` chiplets.

    Following Section IV-C, the construction starts from the closest smaller
    regular grid (side ``floor(sqrt(N))``) and adds the remaining chiplets
    as an incomplete extra column followed by an incomplete extra row.
    """
    check_positive_int("num_chiplets", num_chiplets)
    side = isqrt_floor(num_chiplets)
    cells = regular_grid_cells(side) if side > 0 else []
    remaining = num_chiplets - side * side
    # Incomplete extra column to the right of the regular core.
    extra_column = min(remaining, side)
    for row in range(extra_column):
        cells.append((row, side))
    remaining -= extra_column
    # Incomplete extra row above the regular core (plus the new column).
    for col in range(remaining):
        cells.append((side, col))
    return cells


def generate_grid(
    num_chiplets: int,
    regularity: Regularity | str | None = None,
    *,
    chiplet_width: float = 1.0,
    chiplet_height: float = 1.0,
    max_aspect_ratio: float = DEFAULT_MAX_ASPECT_RATIO,
) -> Arrangement:
    """Generate a grid arrangement of ``num_chiplets`` chiplets.

    Parameters
    ----------
    num_chiplets:
        Number of compute chiplets.
    regularity:
        Requested regularity class.  ``None`` selects the best class that
        the chiplet count admits (regular > semi-regular > irregular).
        Requesting a class the count does not admit raises ``ValueError``.
    chiplet_width, chiplet_height:
        Chiplet footprint in millimetres.  The paper requires square
        chiplets for the grid bump layout, but the arrangement itself works
        with any rectangle.
    max_aspect_ratio:
        Maximum allowed ``max(R, C) / min(R, C)`` for a semi-regular layout.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive("chiplet_width", chiplet_width)
    check_positive("chiplet_height", chiplet_height)
    check_positive("max_aspect_ratio", max_aspect_ratio)

    requested = Regularity.from_name(regularity) if regularity is not None else None
    metadata: dict[str, object] = {}

    factor_pair = balanced_factor_pair(num_chiplets)
    semi_regular_possible = (
        factor_pair is not None
        and factor_pair[0] != factor_pair[1]
        and factor_pair[1] / factor_pair[0] <= max_aspect_ratio
    )

    if requested is None:
        if is_perfect_square(num_chiplets):
            requested = Regularity.REGULAR
        elif semi_regular_possible:
            requested = Regularity.SEMI_REGULAR
        else:
            requested = Regularity.IRREGULAR

    if requested is Regularity.REGULAR:
        if not is_perfect_square(num_chiplets):
            raise ValueError(
                f"a regular grid requires a perfect-square chiplet count, got {num_chiplets}"
            )
        side = isqrt_floor(num_chiplets)
        cells = regular_grid_cells(side)
        metadata.update(rows=side, cols=side)
    elif requested is Regularity.SEMI_REGULAR:
        if factor_pair is None or factor_pair[0] == factor_pair[1]:
            raise ValueError(
                f"{num_chiplets} chiplets admit no semi-regular (R != C) grid"
            )
        rows, cols = factor_pair
        if cols / rows > max_aspect_ratio:
            raise ValueError(
                f"the most balanced factorisation {rows}x{cols} of {num_chiplets} "
                f"exceeds the aspect-ratio limit {max_aspect_ratio}"
            )
        cells = semi_regular_grid_cells(rows, cols)
        metadata.update(rows=rows, cols=cols)
    else:
        cells = irregular_grid_cells(num_chiplets)
        side = isqrt_floor(num_chiplets)
        metadata.update(core_side=side, extra_chiplets=num_chiplets - side * side)

    placement, graph = square_lattice_arrangement(cells, chiplet_width, chiplet_height)
    return Arrangement(
        kind=ArrangementKind.GRID,
        regularity=requested,
        num_chiplets=num_chiplets,
        graph=graph,
        placement=placement,
        chiplet_width=chiplet_width,
        chiplet_height=chiplet_height,
        metadata=metadata,
    )
