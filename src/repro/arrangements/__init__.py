"""Chiplet arrangement generators.

The paper studies four arrangement families (Section IV):

* **Grid** (``G``) — the baseline: chiplets on a regular 2D grid, at most
  four neighbours per chiplet.
* **Honeycomb** (``HC``) — hexagonal chiplets, six neighbours per interior
  chiplet; violates the rectangular-chiplet constraint.
* **Brickwall** (``BW``) — rectangular chiplets in a brick pattern; the
  same graph structure as the honeycomb without violating constraints.
* **HexaMesh** (``HM``) — the paper's contribution: chiplets arranged in
  concentric rings around a central chiplet, raising the minimum number of
  neighbours from 2 to 3 and shrinking the diameter further.

Each family supports the paper's three regularity classes where they are
defined: *regular* (perfect squares, or centred hexagonal counts for the
HexaMesh), *semi-regular* (rectangular ``R x C`` layouts) and *irregular*
(a regular core plus incomplete rows / columns / rings), so any chiplet
count can be realised.
"""

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.brickwall import generate_brickwall
from repro.arrangements.catalog import ArrangementCatalog, enumerate_arrangements
from repro.arrangements.factory import (
    available_regularities,
    classify_regularity,
    make_arrangement,
)
from repro.arrangements.grid import generate_grid
from repro.arrangements.hexamesh import generate_hexamesh
from repro.arrangements.honeycomb import generate_honeycomb
from repro.arrangements.perimeter import PerimeterPlan, add_perimeter_io_chiplets

__all__ = [
    "Arrangement",
    "ArrangementCatalog",
    "ArrangementKind",
    "PerimeterPlan",
    "Regularity",
    "add_perimeter_io_chiplets",
    "available_regularities",
    "classify_regularity",
    "enumerate_arrangements",
    "generate_brickwall",
    "generate_grid",
    "generate_hexamesh",
    "generate_honeycomb",
    "make_arrangement",
]
