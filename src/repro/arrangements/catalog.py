"""Enumeration of arrangements over chiplet-count ranges.

Figure 6 of the paper plots the performance proxies of every arrangement
family and regularity class for chiplet counts from 1 to 100.  The
:class:`ArrangementCatalog` generates exactly that population and is the
basis of the proxy experiments in :mod:`repro.evaluation.proxies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.factory import available_regularities, make_arrangement
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CatalogEntry:
    """One generated arrangement together with its catalogue coordinates."""

    kind: ArrangementKind
    regularity: Regularity
    num_chiplets: int
    arrangement: Arrangement


def enumerate_arrangements(
    kinds: Sequence[ArrangementKind | str],
    chiplet_counts: Iterable[int],
    *,
    all_regularities: bool = True,
    chiplet_width: float = 1.0,
    chiplet_height: float = 1.0,
) -> list[CatalogEntry]:
    """Generate arrangements for every kind / chiplet-count combination.

    Parameters
    ----------
    kinds:
        Arrangement families to include.
    chiplet_counts:
        Chiplet counts to generate (e.g. ``range(1, 101)`` for Figure 6).
    all_regularities:
        When ``True`` (default) every regularity class the count admits is
        generated — this is what Figure 6 plots.  When ``False`` only the
        best class per count is produced.
    """
    entries: list[CatalogEntry] = []
    for count in chiplet_counts:
        check_positive_int("chiplet count", count)
        for kind_name in kinds:
            kind = ArrangementKind.from_name(kind_name)
            if all_regularities:
                regularities = available_regularities(kind, count)
            else:
                regularities = [None]  # type: ignore[list-item]
            for regularity in regularities:
                arrangement = make_arrangement(
                    kind,
                    count,
                    regularity,
                    chiplet_width=chiplet_width,
                    chiplet_height=chiplet_height,
                )
                entries.append(
                    CatalogEntry(
                        kind=kind,
                        regularity=arrangement.regularity,
                        num_chiplets=count,
                        arrangement=arrangement,
                    )
                )
    return entries


class ArrangementCatalog:
    """A lazily-built, cached collection of arrangements.

    The evaluation harness repeatedly needs the same arrangements (first
    for the proxies, then for the link model, then for the simulations);
    the catalogue builds each one once and memoises it.
    """

    def __init__(self, *, chiplet_width: float = 1.0, chiplet_height: float = 1.0) -> None:
        self._chiplet_width = chiplet_width
        self._chiplet_height = chiplet_height
        self._cache: dict[tuple[ArrangementKind, Regularity | None, int], Arrangement] = {}

    def get(
        self,
        kind: ArrangementKind | str,
        num_chiplets: int,
        regularity: Regularity | str | None = None,
    ) -> Arrangement:
        """Return the requested arrangement, generating it on first use."""
        kind = ArrangementKind.from_name(kind)
        reg = Regularity.from_name(regularity) if regularity is not None else None
        key = (kind, reg, num_chiplets)
        if key not in self._cache:
            self._cache[key] = make_arrangement(
                kind,
                num_chiplets,
                reg,
                chiplet_width=self._chiplet_width,
                chiplet_height=self._chiplet_height,
            )
        return self._cache[key]

    def best(self, kind: ArrangementKind | str, num_chiplets: int) -> Arrangement:
        """The arrangement with the best available regularity class."""
        return self.get(kind, num_chiplets, None)

    def all_for(self, kind: ArrangementKind | str, num_chiplets: int) -> Iterator[Arrangement]:
        """Every regularity class the chiplet count admits for ``kind``."""
        for regularity in available_regularities(kind, num_chiplets):
            yield self.get(kind, num_chiplets, regularity)

    @property
    def cached_count(self) -> int:
        """Number of arrangements generated so far."""
        return len(self._cache)
