"""The HexaMesh arrangement (the paper's contribution, Figure 4d).

Chiplets are placed in concentric rings around a central chiplet on the
offset-row (triangular) lattice.  A *regular* HexaMesh has
``N = 1 + 3 r (r + 1)`` chiplets for ``r`` complete rings and guarantees a
minimum of three neighbours per chiplet (for ``N >= 7``); an *irregular*
HexaMesh adds an incomplete outer ring and keeps a minimum of two
neighbours per chiplet.
"""

from __future__ import annotations

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.lattice import (
    Cell,
    axial_arrangement,
    axial_disk,
    axial_ring,
)
from repro.utils.mathutils import (
    hexamesh_chiplet_count,
    hexamesh_rings_for_count,
    is_hexamesh_count,
)
from repro.utils.validation import check_positive, check_positive_int


def regular_hexamesh_cells(rings: int) -> list[Cell]:
    """Cells of a regular HexaMesh with ``rings`` complete rings."""
    if rings < 0:
        raise ValueError(f"rings must be >= 0, got {rings}")
    return axial_disk(rings)


def irregular_hexamesh_cells(num_chiplets: int) -> list[Cell]:
    """Cells of an irregular HexaMesh with exactly ``num_chiplets`` chiplets.

    The construction starts from the largest regular HexaMesh that fits and
    walks the next ring, adding one chiplet at a time.  The walk starts one
    position past a ring corner so that the very first added chiplet already
    touches two chiplets of the complete core, which keeps the minimum
    number of neighbours at two (Section IV-C).
    """
    check_positive_int("num_chiplets", num_chiplets)
    rings = hexamesh_rings_for_count(num_chiplets)
    cells = regular_hexamesh_cells(rings)
    remaining = num_chiplets - hexamesh_chiplet_count(rings)
    if remaining == 0:
        return cells
    outer_ring = axial_ring(rings + 1)
    # Rotate the ring walk by one so it starts at an edge cell (two inner
    # neighbours) instead of a corner cell (one inner neighbour).
    rotated = outer_ring[1:] + outer_ring[:1]
    cells.extend(rotated[:remaining])
    return cells


def generate_hexamesh(
    num_chiplets: int,
    regularity: Regularity | str | None = None,
    *,
    chiplet_width: float = 1.0,
    chiplet_height: float = 1.0,
) -> Arrangement:
    """Generate a HexaMesh arrangement of ``num_chiplets`` chiplets.

    Parameters
    ----------
    num_chiplets:
        Number of compute chiplets.
    regularity:
        ``Regularity.REGULAR`` requires a centred hexagonal chiplet count
        ``1 + 3 r (r + 1)``; ``Regularity.IRREGULAR`` accepts any count.
        ``None`` picks the regular variant whenever the count admits one.
        The paper defines no semi-regular HexaMesh, so requesting
        ``SEMI_REGULAR`` raises ``ValueError``.
    chiplet_width, chiplet_height:
        Chiplet footprint in millimetres.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive("chiplet_width", chiplet_width)
    check_positive("chiplet_height", chiplet_height)

    requested = Regularity.from_name(regularity) if regularity is not None else None
    if requested is Regularity.SEMI_REGULAR:
        raise ValueError("the HexaMesh has no semi-regular variant")

    if requested is None:
        requested = (
            Regularity.REGULAR if is_hexamesh_count(num_chiplets) else Regularity.IRREGULAR
        )

    metadata: dict[str, object] = {}
    if requested is Regularity.REGULAR:
        if not is_hexamesh_count(num_chiplets):
            raise ValueError(
                "a regular HexaMesh requires a centred hexagonal chiplet count "
                f"1 + 3r(r+1), got {num_chiplets}"
            )
        rings = hexamesh_rings_for_count(num_chiplets)
        cells = regular_hexamesh_cells(rings)
        metadata.update(rings=rings)
    else:
        cells = irregular_hexamesh_cells(num_chiplets)
        rings = hexamesh_rings_for_count(num_chiplets)
        metadata.update(
            complete_rings=rings,
            partial_ring_chiplets=num_chiplets - hexamesh_chiplet_count(rings),
        )

    placement, graph = axial_arrangement(cells, chiplet_width, chiplet_height)
    return Arrangement(
        kind=ArrangementKind.HEXAMESH,
        regularity=requested,
        num_chiplets=num_chiplets,
        graph=graph,
        placement=placement,
        chiplet_width=chiplet_width,
        chiplet_height=chiplet_height,
        metadata=metadata,
    )
