"""The honeycomb arrangement (Figure 4b).

Hexagonal chiplets tiled in a honeycomb maximise the average number of
neighbours per chiplet (it approaches the planar-graph bound of six), but
hexagonal chiplets violate the rectangular-chiplet constraint of
Section III-B.  The paper therefore uses the honeycomb only as a stepping
stone towards the brickwall, which realises *the same graph* with
rectangular chiplets.

Accordingly, :func:`generate_honeycomb` produces an arrangement whose graph
is identical to the corresponding brickwall's, carries no rectangular
placement (``placement is None``) and is flagged with
``violates_shape_constraints=True``.  The hexagon centres are stored in the
metadata for visualisation purposes.
"""

from __future__ import annotations

import math

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.brickwall import generate_brickwall
from repro.utils.validation import check_positive, check_positive_int


def generate_honeycomb(
    num_chiplets: int,
    regularity: Regularity | str | None = None,
    *,
    chiplet_area: float = 1.0,
) -> Arrangement:
    """Generate a honeycomb arrangement of ``num_chiplets`` hexagonal chiplets.

    Parameters
    ----------
    num_chiplets:
        Number of compute chiplets.
    regularity:
        Same regularity classes as the brickwall (the graph is shared).
    chiplet_area:
        Area of each hexagonal chiplet in mm²; used only to compute the
        hexagon geometry stored in the metadata.
    """
    check_positive_int("num_chiplets", num_chiplets)
    check_positive("chiplet_area", chiplet_area)

    # The honeycomb graph is identical to the brickwall graph; reuse the
    # brickwall generator (with unit rectangles) for the connectivity and
    # regularity handling, then re-wrap the result.
    brickwall = generate_brickwall(num_chiplets, regularity)

    # Geometry of a regular hexagon with the requested area, flat-top
    # orientation: area = 3*sqrt(3)/2 * side².
    side = math.sqrt(2.0 * chiplet_area / (3.0 * math.sqrt(3.0)))
    hexagon_width = 2.0 * side
    hexagon_height = math.sqrt(3.0) * side

    centers: list[tuple[float, float]] = []
    assert brickwall.placement is not None  # the brickwall always has one
    for chiplet in brickwall.placement:
        center = chiplet.rect.center
        centers.append((center.x * hexagon_width * 0.75, center.y * hexagon_height))

    metadata = dict(brickwall.metadata)
    metadata.update(
        hexagon_side=side,
        hexagon_width=hexagon_width,
        hexagon_height=hexagon_height,
        hexagon_centers=centers,
    )

    return Arrangement(
        kind=ArrangementKind.HONEYCOMB,
        regularity=brickwall.regularity,
        num_chiplets=num_chiplets,
        graph=brickwall.graph,
        placement=None,
        chiplet_width=hexagon_width,
        chiplet_height=hexagon_height,
        violates_shape_constraints=True,
        metadata=metadata,
    )
