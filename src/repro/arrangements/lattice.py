"""Lattice-to-arrangement conversion helpers.

The three rectangular arrangement families are all patches of one of two
integer lattices:

* the **square lattice** (grid): cell ``(row, col)`` sits at
  ``(col * W, row * H)`` and is adjacent to the four cells that differ by
  one in exactly one coordinate;
* the **offset-row lattice** (brickwall, HexaMesh): rows are shifted
  horizontally by half a chiplet width, which makes every interior cell
  adjacent to six others (two in its own row, two above, two below).

The brickwall uses *alternating* offsets (odd rows shifted by ``W/2``, like
a real brick wall) and indexes cells by ``(row, col)``.  The HexaMesh uses
*axial* hexagon coordinates ``(q, r)`` with a cumulative offset of
``r * W/2``, which renders the concentric rings of Figure 4d as a symmetric
hexagon.  Both produce exactly the same local adjacency (a triangular-
lattice neighbourhood); only the shape of the patch differs.

All helpers return a ``(placement, graph)`` pair where chiplet ids are
``0 .. n-1`` assigned in sorted cell order, and the adjacency is computed
from exact integer lattice rules.  The geometric placement reproduces the
same adjacency through shared-edge detection, which the test-suite uses as
an independent cross-check.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect
from repro.graphs.model import ChipGraph
from repro.utils.validation import check_positive

Cell = tuple[int, int]


def _sorted_cells(cells: Iterable[Cell]) -> list[Cell]:
    """Deterministic cell ordering (row-major) used to assign chiplet ids."""
    unique = set(cells)
    if not unique:
        raise ValueError("a lattice patch needs at least one cell")
    return sorted(unique)


def _build_placement(
    cells: list[Cell],
    positions: dict[Cell, tuple[float, float]],
    width: float,
    height: float,
) -> ChipletPlacement:
    """Create the placement for cells whose lower-left corners are given."""
    placement = ChipletPlacement()
    for chiplet_id, cell in enumerate(cells):
        x, y = positions[cell]
        placement.add(
            PlacedChiplet(
                chiplet_id=chiplet_id,
                rect=Rect(x, y, width, height),
                lattice_position=cell,
            )
        )
    return placement


def _build_graph(cells: list[Cell], neighbours_of) -> ChipGraph:
    """Create the adjacency graph given a cell-neighbourhood function."""
    index = {cell: chiplet_id for chiplet_id, cell in enumerate(cells)}
    graph = ChipGraph(nodes=range(len(cells)))
    for cell, chiplet_id in index.items():
        for neighbour in neighbours_of(cell):
            other = index.get(neighbour)
            if other is not None and other != chiplet_id:
                graph.add_edge(chiplet_id, other)
    return graph


# ---------------------------------------------------------------------------
# Square lattice (grid arrangement)
# ---------------------------------------------------------------------------


def square_lattice_neighbors(cell: Cell) -> list[Cell]:
    """The four von-Neumann neighbours of a square-lattice cell."""
    row, col = cell
    return [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]


def square_lattice_arrangement(
    cells: Iterable[Cell], width: float, height: float
) -> tuple[ChipletPlacement, ChipGraph]:
    """Placement and graph of a patch of the square lattice."""
    check_positive("width", width)
    check_positive("height", height)
    ordered = _sorted_cells(cells)
    positions = {(row, col): (col * width, row * height) for row, col in ordered}
    placement = _build_placement(ordered, positions, width, height)
    graph = _build_graph(ordered, square_lattice_neighbors)
    return placement, graph


# ---------------------------------------------------------------------------
# Brickwall lattice (alternating row offsets)
# ---------------------------------------------------------------------------


def brickwall_neighbors(cell: Cell) -> list[Cell]:
    """The six neighbours of a brickwall cell with alternating row offsets.

    Odd rows are shifted right by half a chiplet width.  A cell in an even
    (non-shifted) row overlaps cells ``col-1`` and ``col`` of the shifted
    rows above and below; a cell in an odd (shifted) row overlaps cells
    ``col`` and ``col+1`` of the non-shifted rows above and below.
    """
    row, col = cell
    lateral = [(row, col - 1), (row, col + 1)]
    if row % 2 == 0:
        vertical = [
            (row - 1, col - 1),
            (row - 1, col),
            (row + 1, col - 1),
            (row + 1, col),
        ]
    else:
        vertical = [
            (row - 1, col),
            (row - 1, col + 1),
            (row + 1, col),
            (row + 1, col + 1),
        ]
    return lateral + vertical


def brickwall_arrangement(
    cells: Iterable[Cell], width: float, height: float
) -> tuple[ChipletPlacement, ChipGraph]:
    """Placement and graph of a patch of the brickwall lattice."""
    check_positive("width", width)
    check_positive("height", height)
    ordered = _sorted_cells(cells)
    positions = {
        (row, col): (col * width + (row % 2) * width / 2.0, row * height)
        for row, col in ordered
    }
    placement = _build_placement(ordered, positions, width, height)
    graph = _build_graph(ordered, brickwall_neighbors)
    return placement, graph


# ---------------------------------------------------------------------------
# Axial hexagon lattice (HexaMesh)
# ---------------------------------------------------------------------------

#: The six axial directions of the triangular lattice, ordered so that a
#: ring walk starting from ``ring_radius * AXIAL_DIRECTIONS[4]`` and moving
#: through the directions in order traverses the ring cell by cell.
AXIAL_DIRECTIONS: tuple[Cell, ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)


def axial_distance(first: Cell, second: Cell) -> int:
    """Hex (triangular-lattice) distance between two axial coordinates."""
    dq = first[0] - second[0]
    dr = first[1] - second[1]
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def axial_neighbors(cell: Cell) -> list[Cell]:
    """The six axial neighbours of a cell."""
    q, r = cell
    return [(q + dq, r + dr) for dq, dr in AXIAL_DIRECTIONS]


def axial_ring(radius: int, center: Cell = (0, 0)) -> list[Cell]:
    """Cells of the hexagonal ring at ``radius`` around ``center``.

    The walk starts at ``center + radius * AXIAL_DIRECTIONS[4]`` and visits
    the ``6 * radius`` ring cells in order; consecutive cells in the result
    are always lattice neighbours.  ``radius = 0`` returns the centre cell.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return [center]
    cells: list[Cell] = []
    q = center[0] + AXIAL_DIRECTIONS[4][0] * radius
    r = center[1] + AXIAL_DIRECTIONS[4][1] * radius
    for direction in AXIAL_DIRECTIONS:
        for _ in range(radius):
            cells.append((q, r))
            q += direction[0]
            r += direction[1]
    return cells


def axial_disk(radius: int, center: Cell = (0, 0)) -> list[Cell]:
    """All cells within hex distance ``radius`` of ``center`` (a filled hexagon)."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    cells: list[Cell] = []
    for ring_radius in range(radius + 1):
        cells.extend(axial_ring(ring_radius, center))
    return cells


def axial_arrangement(
    cells: Iterable[Cell], width: float, height: float
) -> tuple[ChipletPlacement, ChipGraph]:
    """Placement and graph of a patch of the axial (HexaMesh) lattice.

    Axial cell ``(q, r)`` is placed with its lower-left corner at
    ``((q + r/2) * W, r * H)``; neighbouring cells then share either a full
    vertical edge (same row) or half of a horizontal edge (adjacent rows).
    """
    check_positive("width", width)
    check_positive("height", height)
    ordered = _sorted_cells(cells)
    positions = {
        (q, r): ((q + r / 2.0) * width, r * height) for q, r in ordered
    }
    placement = _build_placement(ordered, positions, width, height)
    graph = _build_graph(ordered, axial_neighbors)
    return placement, graph
